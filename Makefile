# Local entry points mirroring what CI runs (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-json typecheck parallel-check cost-check bench-gate bench-smoke bench-parallel chaos chaos-crash check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis.lint src/repro

lint-json:
	$(PYTHON) -m repro.analysis.lint src/repro --format json

# Schema-flow typecheck + purity certification of every shipped example
# plan; exits 1 on any error-severity finding.
typecheck:
	$(PYTHON) -m repro.analysis.typecheck examples

# Parallel-safety certification of every shipped example plan (exits 1
# on any UNSAFE node), then the snapshot test pinning the expected
# node→level certification map and its byte-for-byte determinism.
parallel-check:
	$(PYTHON) -m repro.analysis.parallel examples
	$(PYTHON) -m pytest tests/analysis/test_parallel_snapshot.py -q -p no:cacheprovider

# Cost & cardinality certification of every shipped example plan (exits
# 1 on any error-severity CC finding — an over-budget or quadratic
# plan), then the snapshot test pinning the expected plan→cost map and
# its byte-for-byte determinism.
cost-check:
	$(PYTHON) -m repro.analysis.cost examples
	$(PYTHON) -m pytest tests/analysis/test_cost_snapshot.py -q -p no:cacheprovider

# The perf ratchet: copy the committed BENCH_* baselines aside (so the
# fresh run cannot overwrite what it is compared against), re-run the
# ratcheted benchmark, and fail on any lower-is-better metric
# regressing past the tolerance.  The live gate runs at 50% rather
# than the CLI's 15% default: wall-clock minima on a shared runner
# still swing ~30% run-to-run even best-of-3, while a real algorithmic
# regression (losing blocking, an accidental n² stage) is a multi-x
# blow-up that 50% still catches.  The strict 15% contract is pinned
# machine-independently by tests/analysis/test_cost_ratchet.py over
# the committed fixture pair.  --check-baselines fails the gate on any
# committed baseline no bench_*.py can regenerate.  REP015 keeps every
# benchmark on the shared telemetry helpers the ratchet and
# calibration feed from.
bench-gate:
	rm -rf benchmarks/.ratchet
	mkdir -p benchmarks/.ratchet
	cp benchmarks/results/BENCH_*.json benchmarks/.ratchet/
	$(PYTHON) -m pytest benchmarks/bench_parallel.py benchmarks/bench_er_scale.py benchmarks/bench_e14_velocity.py -q -p no:cacheprovider
	$(PYTHON) -m repro.analysis.cost --ratchet --baseline benchmarks/.ratchet --fresh benchmarks/results --tolerance 0.5 --check-baselines benchmarks
	$(PYTHON) -m repro.analysis.lint benchmarks --select REP015

# One small benchmark end to end, then schema-check the telemetry it
# emitted: catches drift between the benchmarks and the repro.obs schema.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e10_repair.py -q -p no:cacheprovider
	$(PYTHON) -m repro.obs.report benchmarks/results/E10-repair.telemetry.json --validate-only

# The parallel-executor baseline: sequential vs parallel=2/4 on the E7a
# workload through partitioned_resolve, emitting BENCH_parallel_er.json
# (speedup assertions are gated on the cores actually available; the
# determinism assertions — identical clusters and stable ids across
# backends — hold on any machine).
bench-parallel:
	$(PYTHON) -m pytest benchmarks/bench_parallel.py -q -p no:cacheprovider
	$(PYTHON) -m repro.obs.report benchmarks/results/BENCH_parallel_er.telemetry.json --validate-only

# The chaos harness end to end: the resilience benchmark (seeded fault
# injection through a full Wrangler.run), its telemetry schema-checked,
# then REP013 over sources and tests — nothing outside repro.resilience
# may sleep on the real clock.
chaos:
	$(PYTHON) -m pytest benchmarks/bench_e11_resilience.py -q -p no:cacheprovider
	$(PYTHON) -m repro.obs.report benchmarks/results/E11-resilience.telemetry.json --validate-only
	$(PYTHON) -m repro.analysis.lint src/repro tests benchmarks --select REP013

# Crash chaos: the kill-at-every-checkpoint matrix (every commit point,
# both sides of the journal write, byte-identical recovery with exact
# ledger accounting), then REP016 over the source tree — every
# durability-relevant write outside repro.io/repro.ingest must go
# through atomic_write_bytes.
chaos-crash:
	$(PYTHON) -m pytest tests/ingest -q -p no:cacheprovider
	$(PYTHON) -m repro.analysis.lint src/repro --select REP016

check: test lint typecheck parallel-check cost-check bench-smoke bench-parallel bench-gate chaos chaos-crash
