# Local entry points mirroring what CI runs (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-json check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis.lint src/repro

lint-json:
	$(PYTHON) -m repro.analysis.lint src/repro --format json

check: test lint
