# Local entry points mirroring what CI runs (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-json typecheck bench-smoke check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis.lint src/repro

lint-json:
	$(PYTHON) -m repro.analysis.lint src/repro --format json

# Schema-flow typecheck + purity certification of every shipped example
# plan; exits 1 on any error-severity finding.
typecheck:
	$(PYTHON) -m repro.analysis.typecheck examples

# One small benchmark end to end, then schema-check the telemetry it
# emitted: catches drift between the benchmarks and the repro.obs schema.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e10_repair.py -q -p no:cacheprovider
	$(PYTHON) -m repro.obs.report benchmarks/results/E10-repair.telemetry.json --validate-only

check: test lint typecheck bench-smoke
