"""The incremental dataflow engine behind pay-as-you-go recomputation.

Section 2.4: "It is of paramount importance that these feedback-induced
'reactions' do not trigger a re-processing of all datasets involved in the
computation but rather limit the processing to the strictly necessary
data."

The engine is a DAG of named nodes.  Each node's compute function reads
the values of its dependencies; results are memoised and only recomputed
when a dependency (or the node itself) has been invalidated.  Feedback
handlers invalidate exactly the nodes a feedback type touches, and the
next ``pull`` re-runs only the dirty cone — the recompute counter is what
experiment E6 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import networkx as nx

from repro.errors import DataflowError

__all__ = ["Dataflow"]


@dataclass
class _Node:
    name: str
    compute: Callable[[Mapping[str, Any]], Any]
    dependencies: tuple[str, ...]
    value: Any = None
    clean: bool = False
    runs: int = 0


class Dataflow:
    """A pull-based, memoising dataflow DAG."""

    def __init__(self) -> None:
        self._nodes: dict[str, _Node] = {}
        self._graph = nx.DiGraph()

    # -- construction -----------------------------------------------------

    def add(
        self,
        name: str,
        compute: Callable[[Mapping[str, Any]], Any],
        dependencies: tuple[str, ...] = (),
    ) -> str:
        """Add a node; dependencies must already exist (DAG by construction)."""
        if name in self._nodes:
            raise DataflowError(f"node {name!r} already defined")
        for dependency in dependencies:
            if dependency not in self._nodes:
                raise DataflowError(
                    f"node {name!r} depends on undefined node {dependency!r}"
                )
        self._nodes[name] = _Node(name, compute, tuple(dependencies))
        self._graph.add_node(name)
        for dependency in dependencies:
            self._graph.add_edge(dependency, name)
        return name

    def add_input(self, name: str, value: Any = None) -> str:
        """Add a leaf node holding an externally supplied value."""
        self.add(name, lambda inputs: None)
        node = self._nodes[name]
        node.value = value
        node.clean = True
        return name

    def set_input(self, name: str, value: Any) -> None:
        """Replace an input's value, dirtying everything downstream."""
        node = self._require(name)
        node.value = value
        node.clean = True
        self._dirty_descendants(name)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, name: str) -> None:
        """Mark a node (and its downstream cone) as needing recomputation."""
        self._require(name).clean = False
        self._dirty_descendants(name)

    def _dirty_descendants(self, name: str) -> None:
        for descendant in nx.descendants(self._graph, name):
            self._nodes[descendant].clean = False

    # -- evaluation ---------------------------------------------------------

    def pull(self, name: str) -> Any:
        """The node's current value, recomputing only the dirty cone."""
        node = self._require(name)
        if node.clean:
            return node.value
        order = [
            n
            for n in nx.topological_sort(self._graph)
            if n == name or n in nx.ancestors(self._graph, name)
        ]
        for node_name in order:
            current = self._nodes[node_name]
            if current.clean:
                continue
            inputs = {
                dependency: self._nodes[dependency].value
                for dependency in current.dependencies
            }
            current.value = current.compute(inputs)
            current.clean = True
            current.runs += 1
        return node.value

    def pull_all(self) -> None:
        """Bring every node up to date."""
        for name in nx.topological_sort(self._graph):
            self.pull(name)

    # -- introspection ----------------------------------------------------

    def _require(self, name: str) -> _Node:
        if name not in self._nodes:
            raise DataflowError(f"no node named {name!r}")
        return self._nodes[name]

    def value(self, name: str) -> Any:
        """The memoised value (may be stale; use ``pull`` to refresh)."""
        return self._require(name).value

    def is_clean(self, name: str) -> bool:
        """Whether the node is up to date."""
        return self._require(name).clean

    def runs(self, name: str) -> int:
        """How many times the node has been computed."""
        return self._require(name).runs

    def total_runs(self) -> int:
        """Total node computations across the graph's lifetime."""
        return sum(node.runs for node in self._nodes.values())

    def dirty_nodes(self) -> list[str]:
        """All currently stale nodes."""
        return sorted(
            name for name, node in self._nodes.items() if not node.clean
        )

    def nodes(self) -> list[str]:
        """All node names in topological order."""
        return list(nx.topological_sort(self._graph))

    def dependency_map(self) -> dict[str, tuple[str, ...]]:
        """Every node's declared dependencies — the static-analysis view.

        The plan validator consumes this to check the graph (dangling
        dependencies, cycles) without executing any node.
        """
        return {
            name: node.dependencies for name, node in self._nodes.items()
        }

    def invalidate_all(self) -> None:
        """Mark every non-input node stale (full recompute on next pull)."""
        for node in self._nodes.values():
            if node.dependencies:
                node.clean = False
