"""The incremental dataflow engine behind pay-as-you-go recomputation.

Section 2.4: "It is of paramount importance that these feedback-induced
'reactions' do not trigger a re-processing of all datasets involved in the
computation but rather limit the processing to the strictly necessary
data."

The engine is a DAG of named nodes.  Each node's compute function reads
the values of its dependencies; results are memoised and only recomputed
when a dependency (or the node itself) has been invalidated.  Feedback
handlers invalidate exactly the nodes a feedback type touches, and the
next ``pull`` re-runs only the dirty cone — the recompute counter is what
experiment E6 reports.

Every evaluation is observable: nodes carry hit/run/invalidation counters
and accumulated compute seconds, and a :class:`~repro.obs.Telemetry`
bundle (when attached) receives graph-wide counters, per-node timing
histograms, and one trace span per recomputation.  Reading a dirty node's
memoised value through :meth:`Dataflow.value` raises
:class:`~repro.errors.StaleValueError` unless staleness is explicitly
requested — silent stale reads were a bug, not a feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

import networkx as nx

from repro.errors import DataflowError, StaleValueError
from repro.obs import Telemetry

__all__ = ["Dataflow"]


@dataclass
class _Node:
    name: str
    compute: Callable[[Mapping[str, Any]], Any]
    dependencies: tuple[str, ...]
    stage: str | None = None
    value: Any = None
    clean: bool = False
    runs: int = 0
    hits: int = 0
    invalidations: int = 0
    seconds: float = 0.0
    #: Purity certificate for the compute callable ("pure" / "impure" /
    #: "unknown"), or ``None`` before :meth:`Dataflow.certify` has run.
    purity: str | None = None
    #: Parallel-safety level for the compute callable ("row_local" /
    #: "partition_local" / "global" / "unsafe"), or ``None`` before
    #: :meth:`Dataflow.certify_parallel` has run.
    parallel: str | None = None
    #: Predicted compute-seconds from the static cost model, or ``None``
    #: before :meth:`Dataflow.annotate_costs` has run.  A deterministic
    #: estimate (not a measurement), so telemetry scrubbing keeps it.
    cost: float | None = None


class Dataflow:
    """A pull-based, memoising dataflow DAG."""

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._nodes: dict[str, _Node] = {}
        self._graph = nx.DiGraph()
        #: Cached topological order; recomputed lazily after ``add``.
        self._order: list[str] | None = None
        #: How many times the topological order was derived (the
        #: regression guard for pull_all's single-sweep contract).
        self.topo_derivations = 0
        self.telemetry = telemetry
        #: When True, the engine refuses to replay memoised values of
        #: nodes not certified ``pure``: every pull recomputes them.
        #: Certify with :meth:`certify` before enabling.
        self.strict_purity = False
        #: Callbacks fired with ``(name, value)`` after a node's compute
        #: lands (inline or worker-absorbed) — the checkpoint layer's
        #: wave-commit hook.  Replays of memoised values do not fire.
        self._observers: list[Callable[[str, Any], None]] = []

    def on_node_computed(self, callback: Callable[[str, Any], None]) -> None:
        """Register a compute observer (idempotent per callback)."""
        if callback not in self._observers:
            self._observers.append(callback)

    # -- construction -----------------------------------------------------

    def add(
        self,
        name: str,
        compute: Callable[[Mapping[str, Any]], Any],
        dependencies: tuple[str, ...] = (),
        stage: str | None = None,
    ) -> str:
        """Add a node; dependencies must already exist (DAG by construction).

        ``stage`` is a free-form pipeline-stage label carried into spans
        and telemetry exports (e.g. ``"extraction"``, ``"fusion"``).
        """
        if name in self._nodes:
            raise DataflowError(f"node {name!r} already defined")
        for dependency in dependencies:
            if dependency not in self._nodes:
                raise DataflowError(
                    f"node {name!r} depends on undefined node {dependency!r}"
                )
        self._nodes[name] = _Node(name, compute, tuple(dependencies), stage)
        self._graph.add_node(name)
        for dependency in dependencies:
            self._graph.add_edge(dependency, name)
        self._order = None  # topology changed; re-derive on next sweep
        return name

    def add_input(self, name: str, value: Any = None) -> str:
        """Add a leaf node holding an externally supplied value."""
        self.add(name, lambda inputs: None, stage="input")
        node = self._nodes[name]
        node.value = value
        node.clean = True
        return name

    def set_input(self, name: str, value: Any) -> None:
        """Replace an input's value, dirtying everything downstream."""
        node = self._require(name)
        node.value = value
        node.clean = True
        self._dirty_descendants(name)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, name: str) -> None:
        """Mark a node (and its downstream cone) as needing recomputation."""
        node = self._require(name)
        if node.clean:
            node.clean = False
            node.invalidations += 1
            self._count("dataflow.invalidations")
        self._dirty_descendants(name)

    def _dirty_descendants(self, name: str) -> None:
        for descendant in nx.descendants(self._graph, name):
            node = self._nodes[descendant]
            if node.clean:
                node.clean = False
                node.invalidations += 1
                self._count("dataflow.invalidations")

    def invalidate_all(self) -> None:
        """Mark every non-input node stale (full recompute on next pull)."""
        for node in self._nodes.values():
            if node.dependencies and node.clean:
                node.clean = False
                node.invalidations += 1
                self._count("dataflow.invalidations")

    # -- evaluation ---------------------------------------------------------

    def _topo_order(self) -> list[str]:
        """The cached topological order (derived once per topology)."""
        if self._order is None:
            self._order = list(nx.topological_sort(self._graph))
            self.topo_derivations += 1
        return self._order

    def _recompute(self, node: _Node) -> None:
        """Run one dirty node's compute function, timed and counted."""
        inputs = {
            dependency: self._nodes[dependency].value
            for dependency in node.dependencies
        }
        if self.telemetry is not None:
            clock = self.telemetry.clock
            with self.telemetry.tracer.span(
                f"dataflow:{node.name}",
                node=node.name,
                stage=node.stage,
            ):
                started = clock.current_time()
                node.value = node.compute(inputs)
                elapsed = clock.current_time() - started
            self.telemetry.metrics.histogram(
                "dataflow.compute_seconds"
            ).observe(elapsed)
            self.telemetry.metrics.counter("dataflow.misses").increment()
        else:
            elapsed = 0.0
            node.value = node.compute(inputs)
        node.seconds += elapsed
        node.clean = True
        node.runs += 1
        for observer in self._observers:
            observer(node.name, node.value)

    def _sweep(self, names: Iterable[str]) -> None:
        """Recompute the dirty nodes among ``names`` (topological order)."""
        for name in names:
            node = self._nodes[name]
            if not (node.clean and self._replayable(node)):
                self._recompute(node)

    def _absorb(self, node: _Node, value: Any, elapsed: float) -> None:
        """Install one worker-computed result, mirroring ``_recompute``.

        Counters, the per-node span, the compute-seconds histogram, and
        the miss counter all behave exactly as an inline recomputation —
        the span is emitted on the coordinator (its own duration is ~0;
        the worker's measured ``elapsed`` lands in the histogram and the
        node's ``seconds``), so a fanned-out sweep exports the same
        telemetry shape as a sequential one.
        """
        if self.telemetry is not None:
            with self.telemetry.tracer.span(
                f"dataflow:{node.name}",
                node=node.name,
                stage=node.stage,
            ):
                pass
            self.telemetry.metrics.histogram(
                "dataflow.compute_seconds"
            ).observe(elapsed)
            self.telemetry.metrics.counter("dataflow.misses").increment()
        else:
            elapsed = 0.0
        node.value = value
        node.seconds += elapsed
        node.clean = True
        node.runs += 1
        for observer in self._observers:
            observer(node.name, node.value)

    def _parallel_sweep(self, names: Iterable[str], executor: Any) -> None:
        """Recompute dirty nodes in dependency waves, fanning out when safe.

        Each wave is the set of still-dirty nodes whose dependencies have
        all been computed.  Within a wave, nodes whose certificate is
        fan-out safe (ROW_LOCAL/PARTITION_LOCAL, recorded by
        :meth:`certify_parallel`) and whose ``(compute, inputs)`` payload
        pickles are shipped as one batch; everything else — GLOBAL,
        UNSAFE, uncertified, or unpicklable — falls back to an inline
        :meth:`_recompute` with a fallback note on the executor.  Results
        are absorbed in wave order, then inline nodes run in topological
        order, so counters and spans come out in a deterministic order
        for any worker count.
        """
        from repro.core.executor import FAN_OUT_LEVELS, _invoke_node

        pending = [
            name
            for name in names
            if not (
                self._nodes[name].clean
                and self._replayable(self._nodes[name])
            )
        ]
        pending_set = set(pending)
        while pending:
            wave = [
                name
                for name in pending
                if all(
                    dependency not in pending_set
                    for dependency in self._nodes[name].dependencies
                )
            ]
            shipped: list[tuple[_Node, Any]] = []
            inline: list[_Node] = []
            for name in wave:
                node = self._nodes[name]
                if node.parallel in FAN_OUT_LEVELS:
                    payload = (
                        node.compute,
                        {
                            dependency: self._nodes[dependency].value
                            for dependency in node.dependencies
                        },
                    )
                    if executor.ship_or_note(
                        f"dataflow:{name}", payload
                    ):
                        shipped.append((node, payload))
                        continue
                else:
                    executor.note_fallback(
                        f"dataflow:{name}",
                        f"certified {node.parallel or 'uncertified'}",
                    )
                inline.append(node)
            if shipped:
                for node, _payload in shipped:
                    executor.note_fan_out(f"dataflow:{node.name}")
                results = executor.map(
                    _invoke_node, [payload for _node, payload in shipped]
                )
                for (node, _payload), (value, elapsed) in zip(
                    shipped, results
                ):
                    self._absorb(node, value, elapsed)
            for node in inline:
                self._recompute(node)
            pending_set.difference_update(wave)
            pending = [name for name in pending if name in pending_set]

    def pull(self, name: str, executor: Any = None) -> Any:
        """The node's current value, recomputing only the dirty cone.

        A clean node is a cache hit and returns immediately.  A dirty
        node derives its ancestor cone **once** and sweeps it in the
        (cached) topological order — not once per ancestor, which is what
        made full refreshes quadratic before.

        With an ``executor`` (see :mod:`repro.core.executor`), the dirty
        cone is swept in dependency waves and independent fan-out-safe
        nodes are computed in worker processes — see
        :meth:`_parallel_sweep` for the gate and the fallback semantics.
        """
        node = self._require(name)
        if node.clean and self._replayable(node):
            node.hits += 1
            self._count("dataflow.hits")
            return node.value
        cone = nx.ancestors(self._graph, name)
        cone.add(name)
        ordered = (n for n in self._topo_order() if n in cone)
        if executor is None:
            self._sweep(ordered)
        else:
            self._parallel_sweep(ordered, executor)
        return node.value

    def pull_all(self, executor: Any = None) -> None:
        """Bring every node up to date in a single topological sweep.

        Equivalent to pulling each node in turn — the per-node ``runs``
        and ``hits`` counters come out identical — but does one pass over
        the cached order instead of re-deriving ancestors and a fresh
        topological sort per node.  ``executor`` fans out as in
        :meth:`pull`.
        """
        dirty: list[str] = []
        for name in self._topo_order():
            node = self._nodes[name]
            if node.clean and self._replayable(node):
                node.hits += 1
                self._count("dataflow.hits")
            else:
                dirty.append(name)
        if executor is None:
            self._sweep(dirty)
        else:
            self._parallel_sweep(dirty, executor)

    def _count(self, metric: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(metric).increment()

    def _replayable(self, node: _Node) -> bool:
        """Whether a clean node's memoised value may be handed out.

        Always, unless :attr:`strict_purity` is on — then only nodes
        certified ``pure`` replay; everything else recomputes on every
        pull.  Input nodes are exempt: they hold externally supplied
        state, there is no computation to re-run.
        """
        if not self.strict_purity or not node.dependencies:
            return True
        return node.purity == "pure"

    # -- purity certification ---------------------------------------------

    def certify(self, analyser: Any = None) -> dict[str, Any]:
        """Certify every node's compute callable and record the verdicts.

        Uses the AST-based
        :class:`~repro.analysis.typecheck.purity.PurityAnalyser` (an
        instance may be passed in to share its caches across dataflows).
        Each node's ``purity`` field is set to the verdict status, so
        :attr:`strict_purity` and telemetry exports can act on it.
        Returns ``{node name: PurityVerdict}``.
        """
        if analyser is None:
            from repro.analysis.typecheck.purity import PurityAnalyser

            analyser = PurityAnalyser()
        verdicts = {}
        for name, node in self._nodes.items():
            verdict = analyser.analyse(node.compute)
            node.purity = verdict.status
            verdicts[name] = verdict
        return verdicts

    def purity_map(self) -> dict[str, str | None]:
        """Every node's recorded purity verdict (``None`` = uncertified)."""
        return {name: node.purity for name, node in self._nodes.items()}

    # -- parallel-safety certification --------------------------------------

    def certify_parallel(self, analyser: Any = None) -> dict[str, Any]:
        """Certify every node's fan-out safety and record the levels.

        The parallel twin of :meth:`certify`: uses the AST-based
        :class:`~repro.analysis.parallel.ParallelAnalyser` (an instance
        may be passed in to share its caches across dataflows), sets each
        node's ``parallel`` field to the certified level, and returns
        ``{node name: ParallelCertificate}`` — the contract a
        partitioned scheduler fans out on.
        """
        if analyser is None:
            from repro.analysis.parallel import ParallelAnalyser

            analyser = ParallelAnalyser()
        certificates = {}
        for name, node in self._nodes.items():
            certificate = analyser.certify(node.compute, role="node")
            node.parallel = certificate.level.value
            certificates[name] = certificate
        return certificates

    def parallel_map(self) -> dict[str, str | None]:
        """Every node's recorded parallel-safety level (``None`` =
        uncertified)."""
        return {name: node.parallel for name, node in self._nodes.items()}

    # -- cost annotation ----------------------------------------------------

    def annotate_costs(self, costs: Mapping[str, float]) -> None:
        """Record predicted per-node compute-seconds from the cost model.

        The cost certifier (see :mod:`repro.analysis.cost`) calls this
        after propagating estimates through the topology, so telemetry
        exports carry the prediction next to the observed ``seconds``
        and the calibration loop can compare them.  Unknown names are
        ignored — a synthetic topology may estimate nodes this graph
        does not carry.
        """
        for name, predicted in costs.items():
            node = self._nodes.get(name)
            if node is not None:
                node.cost = float(predicted)

    def cost_map(self) -> dict[str, float | None]:
        """Every node's predicted seconds (``None`` = unannotated)."""
        return {name: node.cost for name, node in self._nodes.items()}

    def node_callables(self) -> list[tuple[str, Callable[..., Any]]]:
        """Every node's compute callable — the purity analyser's view."""
        return [
            (name, node.compute) for name, node in self._nodes.items()
        ]

    # -- introspection ----------------------------------------------------

    def _require(self, name: str) -> _Node:
        if name not in self._nodes:
            raise DataflowError(f"no node named {name!r}")
        return self._nodes[name]

    def value(self, name: str, allow_stale: bool = False) -> Any:
        """The memoised value; raises on a dirty node unless allowed.

        A dirty node's memoised value predates its latest invalidation:
        handing it out silently was the bug behind stale reads after
        feedback.  Pass ``allow_stale=True`` only where the previous
        run's value is genuinely what is wanted (e.g. "the plan the
        current outputs were computed with").
        """
        node = self._require(name)
        if not node.clean and not allow_stale:
            raise StaleValueError(
                f"node {name!r} is dirty: pull() it first, or pass "
                "allow_stale=True to read the previous run's value"
            )
        return node.value

    def is_clean(self, name: str) -> bool:
        """Whether the node is up to date."""
        return self._require(name).clean

    def runs(self, name: str) -> int:
        """How many times the node has been computed."""
        return self._require(name).runs

    def total_runs(self) -> int:
        """Total node computations across the graph's lifetime."""
        return sum(node.runs for node in self._nodes.values())

    def dirty_nodes(self) -> list[str]:
        """All currently stale nodes."""
        return sorted(
            name for name, node in self._nodes.items() if not node.clean
        )

    def nodes(self) -> list[str]:
        """All node names in topological order."""
        return list(self._topo_order())

    def node_stats(self) -> dict[str, dict[str, Any]]:
        """Per-node observability: the ``dataflow.nodes`` telemetry block."""
        return {
            name: {
                "runs": node.runs,
                "hits": node.hits,
                "invalidations": node.invalidations,
                "seconds": node.seconds,
                "stage": node.stage,
                "clean": node.clean,
                "purity": node.purity,
                "parallel": node.parallel,
                "cost": node.cost,
            }
            for name, node in self._nodes.items()
        }

    def dependency_map(self) -> dict[str, tuple[str, ...]]:
        """Every node's declared dependencies — the static-analysis view.

        The plan validator consumes this to check the graph (dangling
        dependencies, cycles) without executing any node.
        """
        return {
            name: node.dependencies for name, node in self._nodes.items()
        }
