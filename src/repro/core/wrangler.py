"""The Wrangler: the abstract architecture of Figure 1, made executable.

``Wrangler`` wires Data Sources → Data Extraction → Data Integration →
Wrangled Data as an **incremental dataflow**, with the Working Data
(tables, matches, mappings, wrappers, quality annotations, feedback) in
the middle and the user/data contexts informing every step:

* the autonomic planner composes the pipeline (no hand-wired workflow);
* every component reads and writes the shared working data;
* feedback propagates to all components and invalidates exactly the
  dataflow nodes it affects — re-running is cheap, as Section 2.4 demands.
"""

from __future__ import annotations

import datetime as _dt
from typing import Mapping, Sequence

from repro.context.data_context import DataContext
from repro.context.user_context import UserContext
from repro.core.dataflow import Dataflow
from repro.core.executor import Executor, ParallelExecutor, SequentialExecutor
from repro.core.planner import AutonomicPlanner, WranglePlan
from repro.core.result import WrangleResult
from repro.errors import (
    DataflowError,
    DegradedRunError,
    PlanningError,
    WranglingError,
)
from repro.model.annotations import Dimension, QualityAnnotation
from repro.extraction.induction import ExampleAnnotation, auto_induce, induce_wrapper
from repro.extraction.repair import WrapperRepairer
from repro.feedback.propagation import FeedbackPropagator
from repro.feedback.store import FeedbackStore
from repro.feedback.types import (
    DuplicateFeedback,
    ExtractionFeedback,
    Feedback,
    MatchFeedback,
    RelevanceFeedback,
    ValueFeedback,
)
from repro.fusion.fuse import EntityFuser
from repro.mapping.mapping import Mapping
from repro.mapping.selection import MappingSelector
from repro.matching.schema_matching import SchemaMatcher
from repro.model.records import Record, Table
from repro.model.schema import Schema
from repro.obs import Telemetry
from repro.quality.constraints import Constraint
from repro.quality.metrics import QualityAnalyser
from repro.quality.repair import repair_table
from repro.resilience import DegradationLedger, RetryPolicy, resilient
from repro.resilience.policy import Deadline
from repro.resilience.wrap import (
    ResilientDocumentSource,
    ResilientStructuredSource,
)
from repro.resolution.comparison import profiled_comparator
from repro.resolution.er import EntityResolver
from repro.resolution.rules import ThresholdRule, fit_threshold
from repro.sources.base import DataSource, DocumentSource, StructuredSource
from repro.sources.registry import SourceRegistry
from repro.model.workingdata import WorkingData

__all__ = ["Wrangler"]


class Wrangler:
    """Context-aware, pay-as-you-go wrangling over registered sources."""

    def __init__(
        self,
        user: UserContext,
        data: DataContext | None = None,
        constraints: Sequence[Constraint] = (),
        master_key: str | None = None,
        join_attribute: str | None = None,
        date_attribute: str | None = None,
        today: _dt.date | None = None,
        discover_constraints: bool = False,
        validate: bool = True,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.user = user
        self.data = data or DataContext()
        self.constraints = list(constraints)
        self.discover_constraints = discover_constraints
        #: Pre-flight static validation of every composed plan (see
        #: :mod:`repro.analysis.validator`).  ``validate=False`` is the
        #: escape hatch for deliberately running an unchecked pipeline.
        self.validate = validate
        self.master_key = master_key
        self.join_attribute = join_attribute
        if date_attribute is None and "updated" in user.target_schema:
            date_attribute = "updated"
        self.date_attribute = date_attribute
        self.registry = SourceRegistry()
        self.working = WorkingData()
        self.feedback = FeedbackStore()
        self.planner = AutonomicPlanner()
        #: Clock + metrics + tracer shared by every instrumented component
        #: of this wrangler; pass a manual-clock bundle for deterministic
        #: timings (see :mod:`repro.obs`).
        self.telemetry = telemetry or Telemetry()
        self.analyser = QualityAnalyser(
            self.data,
            self.working.annotations,
            today=today,
            clock=self.telemetry.clock,
        )
        self._examples: dict[str, list[ExampleAnnotation]] = {}
        #: Resilience configuration, set by :meth:`resilience`.  When a
        #: policy is present every registered source is (and every future
        #: source will be) wrapped, and the ledger records acquisition.
        self._resilience_policy: RetryPolicy | None = None
        self._quorum: float = 0.0
        #: Declared plan/tenant cost budget (in ``cost_per_access``
        #: units), set by :meth:`budget`.  ``None`` means unbounded: the
        #: cost certifier still estimates, but admission control cannot
        #: refuse the plan on spend.
        self._cost_budget: float | None = None
        self.degradation: DegradationLedger | None = None
        self._flow: Dataflow | None = None
        self._match_evidence: dict[tuple[str, str], list[bool]] = {}
        #: The executor driving the current run (None outside runs and
        #: for plain sequential runs); stage bodies pass it down to the
        #: resolver and fuser so certified inner loops can fan out.
        self._run_executor: Executor | None = None
        #: Acquisition results prefetched by the executor's thread pool,
        #: consumed (popped) by ``_acquire`` — errors are re-raised there
        #: so degraded-source handling stays on the coordinator.
        self._prefetched: dict[str, tuple[str, object]] = {}
        #: Durable-ingestion configuration, set by :meth:`checkpointing`.
        #: When a store is attached every probe and acquisition commits a
        #: checkpoint, stage nodes journal as they land, and an
        #: interrupted run resumes from the last committed step.
        self._checkpoints = None
        #: The open :class:`~repro.ingest.checkpoint.RunLog` while a
        #: checkpointed run executes (None otherwise).
        self._ingest_log = None
        from repro.core.history import SnapshotHistory

        self.history = SnapshotHistory()
        self._recorded_fuse_runs = -1

    # -- source management ------------------------------------------------

    def add_source(self, source: DataSource) -> "Wrangler":
        """Register a source (structured or document).

        Sources registered after :meth:`resilience` has been called are
        wrapped under the same policy and ledger as the rest.
        """
        if self._resilience_policy is not None:
            source = resilient(
                source,
                self._resilience_policy,
                telemetry=self.telemetry,
                ledger=self.degradation,
            )
        self.registry.register(source)
        self._flow = None  # topology changed; rebuild on next run
        return self

    def resilience(
        self, policy: RetryPolicy | None = None, *, quorum: float = 0.0
    ) -> "Wrangler":
        """Guard acquisition with retries, breakers, and deadlines.

        Wraps every registered (and future) source in a
        :func:`repro.resilience.resilient` wrapper driven by ``policy``
        (default :class:`RetryPolicy`).  Attempts and outcomes land in the
        degradation ledger, surfaced as ``WrangleResult.degradation``.

        ``quorum`` is how many sources must survive acquisition for a run
        to count as a success: a fraction of the registry when below 1, an
        absolute count otherwise.  A run falling short raises
        :class:`~repro.errors.DegradedRunError`; the default of 0 never
        raises — the paper's pay-as-you-go stance is to complete with
        downgraded quality annotations rather than fail.
        """
        self._resilience_policy = policy or RetryPolicy()
        self._quorum = quorum
        if self.degradation is None:
            self.degradation = DegradationLedger()
        for name in self.registry.names():
            self.registry.replace(
                resilient(
                    self.registry.get(name),
                    self._resilience_policy,
                    telemetry=self.telemetry,
                    ledger=self.degradation,
                )
            )
        self._flow = None  # node bodies close over the wrapped sources
        return self

    def add_sources(self, sources: Sequence[DataSource]) -> "Wrangler":
        """Register several sources."""
        for source in sources:
            self.add_source(source)
        return self

    def budget(self, total: float | None) -> "Wrangler":
        """Declare the plan/tenant cost budget for admission control.

        ``total`` is in ``cost_per_access`` units — the same currency as
        :attr:`~repro.sources.base.SourceMetadata.cost_per_access` and
        the planner's pay-as-you-go accounting.  The cost certifier (see
        :mod:`repro.analysis.cost`) estimates every composed plan's
        total access spend *statically* and the preflight gate refuses
        plans whose estimate exceeds this declaration (``CC005``).
        Pass ``None`` to clear the declaration.
        """
        if total is not None and total < 0:
            raise ValueError(f"budget must be non-negative, got {total}")
        self._cost_budget = None if total is None else float(total)
        return self

    def checkpointing(self, store) -> "Wrangler":
        """Journal run progress durably so an interrupted run resumes.

        ``store`` is a :class:`~repro.ingest.checkpoint.CheckpointStore`.
        With it attached, every probe and acquisition commits (payload
        snapshot + per-source watermark), sources with a declared delta
        cursor re-fetch only rows past the committed watermark, stage
        nodes journal as they compute, and the next run under the same
        plan signature resumes from the last committed checkpoint — no
        source access is ever paid for twice.  The run's summary lands on
        ``WrangleResult.ingest``; see ``docs/INCREMENTAL.md``.
        """
        self._checkpoints = store
        if store is not None and store.telemetry is None:
            store.telemetry = self.telemetry
        return self

    def _plan_signature(self) -> str:
        """The stable identity a resumable run is keyed on.

        Source set, target schema, and join configuration: a crashed
        run's checkpoints are only trusted by a successor asking for the
        same wrangle.
        """
        from repro.model.workingdata import content_digest

        return content_digest({
            "sources": sorted(self.registry.names()),
            "target": [a.name for a in self.user.target_schema],
            "master_key": self.master_key,
            "join_attribute": self.join_attribute,
        })

    def annotate_examples(
        self, source_name: str, examples: Sequence[ExampleAnnotation]
    ) -> "Wrangler":
        """Provide wrapper-induction examples for a document source."""
        self._examples.setdefault(source_name, []).extend(examples)
        if self._flow is not None and self._flow.nodes():
            try:
                self._flow.invalidate(f"acquire:{source_name}")
            except DataflowError:
                pass  # node not built yet; examples apply on first run
        return self

    # -- pipeline stages (dataflow node bodies) -----------------------------

    def _probe_all(self) -> dict[str, object]:
        """Cheaply sample every source and annotate what the sample shows.

        Section 2.3's "use all the available information": before spending
        budget, each source is probed (a fraction of a full access), the
        sample is bootstrap-matched and mapped, and its quality — accuracy
        against master data, timeliness, completeness — is written into
        the working data so that source selection is informed rather than
        cost-blind.
        """
        reports: dict[str, object] = {}
        matcher = SchemaMatcher(self.data, threshold=0.5)
        for name in self.registry.names():
            source = self.registry.get(name)
            try:
                if isinstance(source, StructuredSource):
                    sample = self._probed(source).infer_schema()
                elif isinstance(source, DocumentSource):
                    documents = self._probed(source)
                    # Probing must stay cheap: induce the bootstrap wrapper
                    # from the documents the probe already paid for, never
                    # from a full fetch.  Examples pointing at pages outside
                    # the sample simply don't constrain the bootstrap; the
                    # real acquisition pass uses them all.
                    probed_urls = {doc.url for doc in documents}
                    examples = [
                        example
                        for example in self._examples.get(name, [])
                        if example.url in probed_urls
                    ]
                    if examples:
                        wrapper = induce_wrapper(
                            documents, examples, source=name
                        )
                    else:
                        wrapper = auto_induce(documents, source=name)
                    sample = wrapper.extract(documents).infer_schema()
                else:
                    continue
                correspondences = matcher.match(sample, self.user.target_schema)
                mapping = Mapping.from_correspondences(
                    name, self.user.target_schema, correspondences
                )
                # File the statically usable probe artifacts: the schema
                # the sample exposed and the bootstrap mapping.  The
                # pre-execution type checker reads these to thread
                # schemas through the plan without touching any source.
                self.working.put("schema", f"probe/{name}", sample.schema)
                self.working.put("mapping", f"probe/{name}", mapping)
                mapped = Mapping(
                    sample.name, mapping.target_schema, mapping.attribute_maps
                ).apply(sample)
                reports[name] = self.analyser.analyse(
                    mapped,
                    user=self.user,
                    master_key=self.master_key,
                    join_attribute=self.join_attribute,
                    date_attribute=self.date_attribute,
                    annotate_as=f"source:{name}",
                )
                # Catalog coverage: the source's advertised size against the
                # master catalog, scaled by observed field completeness.
                if (
                    self.master_key is not None
                    and isinstance(source, StructuredSource)
                    and self.master_key in self.data.master_data
                ):
                    master_size = len(self.data.master(self.master_key))
                    coverage = min(
                        1.0, source.size_hint() / max(1, master_size)
                    ) * mapped.completeness()
                    self.working.annotations.add(
                        QualityAnnotation(
                            f"source:{name}",
                            Dimension.COMPLETENESS,
                            coverage,
                            confidence=1.0,
                            origin="probe-coverage",
                        )
                    )
            except WranglingError:
                # A source whose sample cannot even be parsed or matched is
                # itself a quality signal.
                self.working.annotations.add(
                    QualityAnnotation(
                        f"source:{name}",
                        Dimension.ACCURACY,
                        0.1,
                        confidence=0.5,
                        origin="probe-failure",
                    )
                )
        self.working.put("report", "probes", reports)
        return reports

    def _probed(self, source: DataSource):
        """This run's probe result for ``source`` — restored or live.

        Under checkpointing each probe commits as its own step, so a run
        killed mid-probe resumes past the sources already sampled without
        re-charging their probe fraction.
        """
        log = self._ingest_log
        if log is None:
            return source.probe()
        step = f"probe:{source.name}"
        restored = log.restored(step)
        if restored is not None:
            return restored
        from repro.sources.base import PROBE_COST_FRACTION

        value = source.probe()
        log.commit(
            step, data={"fraction": PROBE_COST_FRACTION}, payload=value
        )
        return value

    def _acquire(self, source: DataSource) -> Table:
        """Fetch one source, degrading gracefully when it breaks.

        "Veracity represents the uncertainty that is inevitable" — and
        with thousands of sources, some will be down, malformed, or
        unwrappable at any given time.  A failing source yields an empty
        table, a near-zero reliability annotation, and a failure record in
        the working data; the rest of the pipeline proceeds.
        """
        try:
            if isinstance(source, StructuredSource):
                table = self._fetched(source).infer_schema()
                self.working.put("table", f"raw/{source.name}", table)
                self._record_degradation(source.name)
                return table
            if isinstance(source, DocumentSource):
                documents = self._fetched(source)
                examples = self._examples.get(source.name)
                if examples:
                    wrapper = induce_wrapper(
                        documents, examples, source=source.name
                    )
                else:
                    wrapper = auto_induce(documents, source=source.name)
                repairer = WrapperRepairer(self.data)
                wrapper, table, report = repairer.repair(wrapper, documents)
                self.working.put("wrapper", source.name, wrapper)
                self.working.put(
                    "report", f"wrapper-repair/{source.name}", report
                )
                table = table.infer_schema()
                self.working.put("table", f"raw/{source.name}", table)
                self._record_degradation(source.name)
                return table
        except WranglingError as failure:
            self.working.put("failure", source.name, str(failure))
            self._record_degradation(source.name)
            self.working.annotations.add(
                QualityAnnotation(
                    f"source:{source.name}",
                    Dimension.ACCURACY,
                    0.05,
                    confidence=0.9,
                    origin="acquisition-failure",
                )
            )
            self.registry.observe(source.name, False, weight=2.0)
            empty = Table(source.name, Schema(()))
            self.working.put("table", f"raw/{source.name}", empty)
            return empty
        raise PlanningError(f"unsupported source type: {type(source).__name__}")

    def _fetched(self, source: DataSource):
        """This run's fetch result for ``source`` — prefetched or live.

        Consumes (pops) any result the acquisition prefetch produced, so
        a later re-acquisition (``refresh_source`` on a subsequent run)
        fetches fresh data.  A prefetched failure is re-raised here, on
        the coordinator, so ``_acquire``'s degraded-source handling is
        identical in sequential and parallel modes.

        Under checkpointing the fetch is durable: a checkpoint committed
        by a prior (killed) attempt is restored without touching the
        source, and a live fetch goes through
        :func:`~repro.ingest.incremental.acquire_durable` — delta when
        the committed watermark allows, committed before the value is
        handed to the pipeline.
        """
        outcome = self._prefetched.pop(source.name, None)
        if outcome is not None:
            status, value = outcome
            if status == "error":
                raise value  # type: ignore[misc]
            return value
        log = self._ingest_log
        if log is not None:
            restored = log.restored(f"acquire:{source.name}")
            if restored is not None:
                return restored
            from repro.ingest.incremental import acquire_durable

            return acquire_durable(source, log, self.telemetry)
        return source.fetch()

    def _record_degradation(self, source_name: str) -> None:
        """File one source's attempt/outcome ledger in the working data.

        Acquisition provenance, as Section 4.2 stores every intermediate:
        what it took (retries, backoff, breaker state) to get — or fail to
        get — each source's data this run.
        """
        if self.degradation is None:
            return
        entry = self.degradation.disposition(source_name)
        if entry is not None:
            self.working.put("resilience", source_name, entry.to_dict())

    def _match(self, table: Table, plan: WranglePlan) -> list:
        matcher = SchemaMatcher(
            self.data,
            channels=plan.matcher_channels,
            threshold=plan.match_threshold,
            feedback=self._match_evidence,
        )
        correspondences = matcher.match(table, self.user.target_schema)
        self.working.put("match", table.name, correspondences)
        return correspondences

    def _mapping(
        self, source_name: str, correspondences: list, table: Table
    ) -> Mapping:
        mapping = Mapping.from_correspondences(
            source_name, self.user.target_schema, correspondences,
            sample_table=table,
        )
        self.working.put("mapping", source_name, mapping)
        return mapping

    def _mapped(self, mapping: Mapping, table: Table) -> Table:
        mapped = mapping.apply(table)
        self.working.put("table", f"mapped/{mapping.source_name}", mapped)
        return mapped

    def _source_quality(self, source_name: str, mapped: Table) -> object:
        report = self.analyser.analyse(
            mapped,
            user=self.user,
            master_key=self.master_key,
            join_attribute=self.join_attribute,
            date_attribute=self.date_attribute,
            annotate_as=f"source:{source_name}",
        )
        self.working.put("report", f"source/{source_name}", report)
        return report

    def _select(self, plan: WranglePlan, mappings: Mapping | dict) -> list:
        selector = MappingSelector(self.registry, self.working.annotations)
        candidates = [
            mappings[name] for name in plan.sources if name in mappings
        ]
        # Acquisition already spent the budget; selection filters on
        # floors and ranks by the context's weights.
        unbounded = self.user.with_budget(float("inf"))
        selected = selector.select(candidates, unbounded)
        self.working.put("mapping", "selected", [s.mapping.mapping_id for s in selected])
        return selected

    def _translate(
        self, selected: list, mapped_tables: dict[str, Table]
    ) -> Table:
        translated = Table("translated", self.user.target_schema)
        for scored in selected:
            table = mapped_tables.get(scored.mapping.source_name)
            if table is None:
                continue
            for record in table:
                if self.user.in_scope(record):
                    translated.append(record)
        self.working.put("table", "translated", translated)
        return translated

    def _resolve(self, translated: Table, plan: WranglePlan):
        comparator = profiled_comparator(
            self.user.target_schema,
            translated,
            attributes=list(plan.er_attributes) or None,
        )
        rule = ThresholdRule(plan.er_threshold)
        similarities, vectors, labels = self._er_labelled_pairs(
            translated, comparator
        )
        if len(labels) >= 4:
            # Threshold fitting is monotone by construction, so judgments
            # collected on *borderline* pairs (where active acquisition
            # sends the crowd) generalise safely to the easy mass of
            # pairs.  A per-field logistic rule is strictly more
            # expressive but extrapolates disastrously from
            # borderline-only training data — measured, not speculated
            # (it drove pair precision to 0.02 on the jobs world).
            if len(set(labels)) == 2:
                rule = fit_threshold(similarities, labels)
            elif not any(labels):
                # Everything the crowd saw near the threshold was junk:
                # the cut belongs above the highest rejected pair.
                floor = min(0.99, max(similarities) + 0.01)
                rule = ThresholdRule(max(plan.er_threshold, floor))
            else:
                # Everything seen was a true duplicate: merging may relax
                # down to the lowest confirmed pair.
                ceiling = max(0.5, min(similarities) - 0.01)
                rule = ThresholdRule(min(plan.er_threshold, ceiling))
        resolver = EntityResolver(
            comparator=comparator,
            rule=rule,
            metrics=self.telemetry.metrics,
        )
        result = resolver.resolve(translated, executor=self._run_executor)
        self.working.put("entity", "clusters", result)
        return result

    def _er_labelled_pairs(self, translated: Table, comparator):
        """Labelled similarities + field vectors from duplicate feedback.

        The pooled similarity must be the same weighted score the resolver
        thresholds — fitting on any other scale would learn a threshold in
        the wrong units.
        """
        records = {record.rid: record for record in translated}
        similarities = []
        vectors = []
        labels = []
        for pair, items in self.feedback.duplicate_verdicts().items():
            left, right = records.get(pair[0]), records.get(pair[1])
            if left is None or right is None:
                continue
            votes = [item.is_duplicate for item in items]
            verdict = sum(votes) * 2 > len(votes)
            vector = comparator.vector(left, right)
            similarities.append(comparator.similarity_from_vector(vector))
            vectors.append(vector)
            labels.append(verdict)
        return similarities, vectors, labels

    def _source_reliabilities(self) -> dict[str, float]:
        """Per-source trust for fusion: the feedback-driven posterior
        blended with whatever the quality analyses (probes included) have
        annotated — all the available information, not just one channel."""
        scores = {}
        for name, posterior in self.registry.reliability_scores().items():
            annotated = self.working.annotations.score(
                f"source:{name}", Dimension.ACCURACY, default=posterior
            )
            scores[name] = 0.5 * posterior + 0.5 * annotated
        return scores

    def _fuse(self, resolution, plan: WranglePlan) -> Table:
        fuser = EntityFuser(
            self.user.target_schema,
            reliabilities=self._source_reliabilities(),
            default_strategy=plan.fusion_strategy,
            strategy_overrides=plan.fusion_overrides,
            recency_attribute=self.date_attribute,
        )
        fused = fuser.fuse(
            resolution.clusters, executor=self._run_executor
        )
        fused = self._apply_value_verdicts(fused, resolution)
        self.working.put("table", "wrangled", fused)
        return fused

    def _apply_value_verdicts(self, fused: Table, resolution) -> Table:
        """Fold consolidated value feedback into the fused data itself.

        A rejected cell takes the user's correction when one was supplied;
        otherwise the rejected value's candidates are excluded and the
        attribute is re-fused from the remaining claims.  (Cluster ids are
        stable under value feedback because it never invalidates the
        resolve node, so entity references stay valid.)
        """
        verdicts = self.feedback.value_verdicts()
        if not verdicts:
            return fused
        from collections import Counter

        from repro.fusion.strategies import Candidate, resolve as fuse_resolve
        from repro.model.provenance import Step

        clusters = {c.cluster_id: c for c in resolution.clusters}
        reliabilities = self._source_reliabilities()

        def fix(record: Record) -> Record:
            updates = {}
            for (entity, attribute), items in verdicts.items():
                if entity != record.rid or attribute not in record.cells:
                    continue
                votes = [item.is_correct for item in items]
                if 2 * sum(votes) >= len(votes):
                    continue  # not rejected
                current = record.get(attribute)
                if current.is_missing:
                    continue
                corrections = [
                    item.correction for item in items
                    if item.correction is not None
                ]
                if corrections:
                    best = Counter(corrections).most_common(1)[0][0]
                    updates[attribute] = current.with_raw(
                        best, Step.FEEDBACK, "user-correction"
                    )
                    continue
                cluster = clusters.get(record.rid)
                if cluster is None:
                    continue
                alternatives = [
                    Candidate(
                        value,
                        member.source,
                        reliabilities.get(member.source, 0.5),
                    )
                    for member in cluster.records
                    for value in (member.get(attribute),)
                    if not value.is_missing and value.raw != current.raw
                ]
                if alternatives:
                    choice = fuse_resolve("weighted", alternatives)
                    updates[attribute] = current.with_raw(
                        choice.value.raw, Step.FEEDBACK, "rejected-value"
                    )
            if updates:
                return record.with_cells(updates)
            return record

        return fused.map_records(fix)

    def _repair(self, fused: Table, plan: WranglePlan):
        constraints = list(self.constraints)
        if plan.run_repair and self.discover_constraints:
            # Hand-written constraints do not scale to many sources:
            # mine near-exact dependencies from the fused data itself and
            # repair their few violations (approximate FDs are exactly
            # what dirty-but-mostly-regular data exhibits).
            from repro.quality.discovery import discover_fds

            mined = discover_fds(fused, max_lhs=1, max_error=0.05)
            for discovered in mined:
                if not discovered.is_exact:
                    constraints.append(discovered.fd)
            self.working.put(
                "report", "discovered-constraints",
                [d.fd.name for d in mined],
            )
        if not plan.run_repair or not constraints:
            return None
        result = repair_table(fused, constraints)
        self.working.put("table", "wrangled", result.table)
        return result

    # -- dataflow assembly ----------------------------------------------------

    def _compose_plan(self) -> WranglePlan:
        """Run the planner, then statically gate its output.

        Every ``wrangle`` run gets a pre-execution check: structure
        validation (``PV0xx``), schema-flow type checking over the probe
        artifacts (``TC001``–``TC009``), and node purity certification
        (``TC010``) run as one gate — see
        :func:`repro.analysis.typecheck.run_preflight` — before any
        source is fully accessed.  Error-severity findings raise
        :class:`~repro.errors.PlanValidationError`; construct the
        Wrangler with ``validate=False`` to skip the gate.
        """
        plan = self.planner.plan(
            self.user, self.data, self.registry, self.working.annotations
        )
        if self.validate:
            self._gate(plan).raise_on_error()
        return plan

    def _gate(self, plan: WranglePlan):
        """The combined static gate for one composed plan."""
        from repro.analysis.typecheck import run_preflight

        return run_preflight(
            plan=plan,
            user=self.user,
            data=self.data,
            registry=self.registry,
            dataflow=self._flow,
            working=self.working,
            master_key=self.master_key,
            date_attribute=self.date_attribute,
            cost_budget=self._cost_budget,
            discover_constraints=self.discover_constraints,
        )

    def preflight(self):
        """The full static gate's report, without executing the pipeline.

        Probes the sources (the cheap sample pass) and composes a plan,
        then runs structure validation, schema-flow type checking, and
        purity certification over it.  Returns the
        :class:`~repro.analysis.validator.ValidationReport` instead of
        raising, so callers (e.g. ``python -m repro.analysis.typecheck``)
        can render every finding.
        """
        flow = self.flow
        flow.pull("probe")
        plan = self.planner.plan(
            self.user, self.data, self.registry, self.working.annotations
        )
        return self._gate(plan)

    def _build_flow(self) -> Dataflow:
        flow = Dataflow(telemetry=self.telemetry)
        flow.add("probe", lambda inputs: self._probe_all(), stage="probe")
        flow.add(
            "plan", lambda inputs: self._compose_plan(), ("probe",),
            stage="planning",
        )
        source_names = self.registry.names()
        for name in source_names:
            source = self.registry.get(name)
            flow.add(
                f"acquire:{name}",
                lambda inputs, s=source: (
                    self._acquire(s)
                    if s.name in inputs["plan"].sources
                    else Table(s.name, Schema(()))
                ),
                ("plan",),
                stage="extraction",
            )
            flow.add(
                f"match:{name}",
                lambda inputs, n=name: self._match(
                    inputs[f"acquire:{n}"], inputs["plan"]
                ),
                (f"acquire:{name}", "plan"),
                stage="matching",
            )
            flow.add(
                f"mapping:{name}",
                lambda inputs, n=name: self._mapping(
                    n, inputs[f"match:{n}"], inputs[f"acquire:{n}"]
                ),
                (f"match:{name}", f"acquire:{name}"),
                stage="mapping",
            )
            flow.add(
                f"mapped:{name}",
                lambda inputs, n=name: self._mapped(
                    inputs[f"mapping:{n}"], inputs[f"acquire:{n}"]
                ),
                (f"mapping:{name}", f"acquire:{name}"),
                stage="mapping",
            )
            flow.add(
                f"quality:{name}",
                lambda inputs, n=name: self._source_quality(
                    n, inputs[f"mapped:{n}"]
                ),
                (f"mapped:{name}",),
                stage="quality",
            )
        mapping_deps = tuple(f"mapping:{n}" for n in source_names)
        quality_deps = tuple(f"quality:{n}" for n in source_names)
        flow.add(
            "select",
            lambda inputs: self._select(
                inputs["plan"],
                {
                    name: inputs[f"mapping:{name}"]
                    for name in source_names
                },
            ),
            ("plan",) + mapping_deps + quality_deps,
            stage="selection",
        )
        flow.add(
            "translate",
            lambda inputs: self._translate(
                inputs["select"],
                {name: inputs[f"mapped:{name}"] for name in source_names},
            ),
            ("select",) + tuple(f"mapped:{n}" for n in source_names),
            stage="mapping",
        )
        flow.add(
            "resolve",
            lambda inputs: self._resolve(inputs["translate"], inputs["plan"]),
            ("translate", "plan"),
            stage="resolution",
        )
        flow.add(
            "fuse",
            lambda inputs: self._fuse(inputs["resolve"], inputs["plan"]),
            ("resolve", "plan"),
            stage="fusion",
        )
        flow.add(
            "repair",
            lambda inputs: self._repair(inputs["fuse"], inputs["plan"]),
            ("fuse", "plan"),
            stage="repair",
        )
        return flow

    @property
    def flow(self) -> Dataflow:
        """The pipeline dataflow (built on first use)."""
        if self._flow is None:
            if not len(self.registry):
                raise PlanningError("no sources registered")
            self._flow = self._build_flow()
        return self._flow

    # -- running ----------------------------------------------------------

    def run(
        self,
        validate: bool | None = None,
        parallel: int | None = None,
    ) -> WrangleResult:
        """Execute (or incrementally refresh) the pipeline.

        ``validate`` overrides the wrangler's standing :attr:`validate`
        flag for this run only.  ``run(validate=True)`` guarantees the
        full pre-execution gate — structure validation, schema-flow type
        checking, purity certification — runs against the plan this run
        executes, even when the plan node is already memoised (a fresh
        composition would be gated inside ``_compose_plan`` anyway).

        ``parallel`` selects the execution backend.  ``None`` (default)
        is the plain sequential path, untouched.  ``parallel=1`` runs the
        orchestrated path on a :class:`SequentialExecutor` (same work,
        inline); ``parallel=N`` fans PX-certified work out to ``N``
        worker processes — independent dirty dataflow nodes, the
        resolver's compare/decide shards, per-chunk fusion — and batches
        source acquisition on a bounded thread pool through the existing
        resilience wrappers.  Only callables whose
        :class:`~repro.analysis.parallel.ParallelCertificate` allows it
        fan out; everything else falls back to sequential with a
        telemetry note.  The result is equal to the sequential run's —
        clusters, stable entity ids, annotations, counters — modulo
        timing fields (see ``docs/PARALLEL.md``).
        """
        executor = self._executor_for(parallel)
        try:
            if validate is None:
                return self._run(executor)
            previous = self.validate
            self.validate = validate
            try:
                if validate:
                    flow = self.flow
                    if flow.is_clean("plan"):
                        self._gate(flow.value("plan")).raise_on_error()
                return self._run(executor)
            finally:
                self.validate = previous
        finally:
            if executor is not None:
                executor.shutdown()

    def _executor_for(self, parallel: int | None) -> Executor | None:
        if parallel is None:
            return None
        if parallel == 1:
            return SequentialExecutor()
        return ParallelExecutor(parallel)

    def _prefetch_sources(
        self, plan: WranglePlan, executor: Executor
    ) -> None:
        """Batch this run's pending source fetches on the thread pool.

        Only sources the plan selects *and* whose acquire node is dirty
        are fetched — a memoised acquisition must not pay for (or
        observe) a second fetch.  Each task runs the source's existing
        ``fetch`` — resilience wrappers, retries, ledger entries and all
        — on a pool thread, with its trace grafted under a per-source
        ``prefetch:<name>`` span the coordinator pre-creates in registry
        order, so the exported span tree is deterministic for any worker
        count.  The pool is bounded by the executor's ``max_workers``:
        that bound is the rate limit on concurrent source access.
        """
        pending = [
            name
            for name in self.registry.names()
            if name in plan.sources
            and not self.flow.is_clean(f"acquire:{name}")
        ]
        tracer = self.telemetry.tracer
        tasks = []
        spans = []
        names = []
        for name in pending:
            source = self.registry.get(name)
            if not executor.gate_thread(f"acquire:{name}", source.fetch):
                continue
            span = tracer.open(
                f"prefetch:{name}", source=name, stage="extraction"
            )

            def task(
                source: DataSource = source, span=span
            ) -> tuple[str, object]:
                with tracer.attach(span):
                    try:
                        return ("ok", source.fetch())
                    except WranglingError as failure:
                        return ("error", failure)

            tasks.append(task)
            spans.append(span)
            names.append(name)
        if not tasks:
            return
        executor.note_fan_out("acquire")
        try:
            outcomes = executor.map_local(tasks)
        finally:
            for span in spans:
                tracer.close(span)
        for name, span, outcome in zip(names, spans, outcomes):
            span.set_attribute("outcome", outcome[0])
            self._prefetched[name] = outcome

    #: Stage nodes journaled as waves under checkpointing.  Table-valued
    #: nodes snapshot their payload (replayable by id); the others commit
    #: as progress markers — resume recomputes them deterministically
    #: from the restored acquisitions without touching any source.
    _DURABLE_NODES = ("select", "translate", "resolve", "fuse", "repair")

    def _checkpoint_node(self, name: str, value) -> None:
        """Dataflow observer: journal one landed stage node."""
        log = self._ingest_log
        if log is None or name not in self._DURABLE_NODES:
            return
        payload = None
        if isinstance(value, Table):
            payload = value
        elif name == "repair" and value is not None:
            payload = value.table
        log.commit(f"node:{name}", data={"node": name}, payload=payload)

    def _run(self, executor: Executor | None = None) -> WrangleResult:
        flow = self.flow
        if executor is not None and None in flow.parallel_map().values():
            # The fan-out gate: nodes without a recorded certificate are
            # never shipped, so certify once per (re)built flow.
            flow.certify_parallel()
        runs_before = flow.total_runs()
        self._arm_run_deadline()
        ingest_log = None
        if self._checkpoints is not None:
            ingest_log = self._checkpoints.begin_run(self._plan_signature())
            self._ingest_log = ingest_log
            flow.on_node_computed(self._checkpoint_node)
        try:
            return self._run_body(
                flow, executor, runs_before, ingest_log
            )
        finally:
            self._ingest_log = None

    def _run_body(
        self,
        flow: Dataflow,
        executor: Executor | None,
        runs_before: int,
        ingest_log,
    ) -> WrangleResult:
        with self.telemetry.tracer.span("wrangle.run") as run_span:
            if executor is not None:
                flow.pull("plan", executor=executor)
                if ingest_log is None:
                    # Durable acquisition serialises its commits on the
                    # coordinator; the thread-pool prefetch would bypass
                    # the journal, so checkpointed runs fetch inline.
                    self._prefetch_sources(flow.value("plan"), executor)
            self._run_executor = executor
            try:
                repair_result = flow.pull("repair", executor=executor)
            finally:
                self._run_executor = None
                # Unconsumed prefetches (a replan dropped the source, or
                # acquisition failed upstream) must not leak into the
                # next run's acquisitions.
                self._prefetched.clear()
            fused = flow.value("fuse")
            wrangled = (
                repair_result.table if repair_result is not None else fused
            )
            plan = flow.value("plan")
            with self.telemetry.tracer.span(
                "quality:wrangled", stage="quality"
            ):
                quality = self.analyser.analyse(
                    wrangled,
                    user=self.user,
                    master_key=self.master_key,
                    join_attribute=self.join_attribute,
                    date_attribute=self.date_attribute,
                    constraints=self.constraints or None,
                    annotate_as="table:wrangled",
                )
            run_span.set_attribute(
                "nodes_recomputed", flow.total_runs() - runs_before
            )
            if executor is not None:
                # Record only worker-count-invariant facts: fan-out
                # *sites* and fallback notes are identical for any
                # parallel=N, so the scrubbed telemetry stays
                # byte-identical across worker counts.
                run_span.set_attribute("parallel", True)
                run_span.set_attribute(
                    "executor_fan_out_sites", executor.fan_out_sites()
                )
                run_span.set_attribute(
                    "executor_fallback_sites", executor.fallback_notes()
                )
                executor.publish(self.telemetry)
        source_reports = {
            name: flow.value(f"quality:{name}")
            for name in self.registry.names()
            if flow.is_clean(f"quality:{name}")
        }
        # Velocity monitoring: snapshot the wrangled data whenever it was
        # actually recomputed, so consecutive runs are diffable.
        produced = flow.runs("fuse") + flow.runs("repair")
        if produced != self._recorded_fuse_runs:
            self.history.record(wrangled)
            self._recorded_fuse_runs = produced
        self._enforce_quorum()
        ingest_export = None
        if ingest_log is not None:
            ingest_log.complete(payload=wrangled)
            ingest_export = ingest_log.export()
        return WrangleResult(
            table=wrangled,
            plan=plan,
            quality=quality,
            mappings=flow.value("select") or [],
            resolution=flow.value("resolve"),
            repair=repair_result,
            source_reports=source_reports,
            access_cost=self.registry.total_cost(),
            feedback_cost=self.feedback.total_cost(),
            telemetry=self.telemetry.snapshot(dataflow=flow.node_stats()),
            degradation=(
                self.degradation.export()
                if self.degradation is not None
                else None
            ),
            ingest=ingest_export,
        )

    def _arm_run_deadline(self) -> None:
        """Start the per-run time budget on every resilient source."""
        policy = self._resilience_policy
        if policy is None or policy.run_deadline is None:
            return
        deadline = Deadline(
            self.telemetry.clock, policy.run_deadline, label="wrangle run"
        )
        for name in self.registry.names():
            source = self.registry.get(name)
            if isinstance(
                source, (ResilientStructuredSource, ResilientDocumentSource)
            ):
                source.engine.run_deadline = deadline

    def _enforce_quorum(self) -> None:
        """Raise :class:`DegradedRunError` when too few sources survived."""
        if self.degradation is None or self._quorum <= 0:
            return
        names = self.registry.names()
        survivors = self.degradation.survivors(names)
        required = (
            self._quorum
            if self._quorum >= 1
            else self._quorum * len(names)
        )
        if len(survivors) < required:
            dead = self.degradation.dead(names)
            raise DegradedRunError(
                f"only {len(survivors)}/{len(names)} sources survived "
                f"acquisition (quorum {self._quorum:g}); dead: "
                f"{', '.join(dead)}",
                dead=tuple(dead),
            )

    # -- pay-as-you-go --------------------------------------------------------

    def apply_feedback(self, items: Sequence[Feedback]) -> None:
        """Record feedback, propagate it everywhere, invalidate precisely.

        Each feedback type dirties only the dataflow nodes it can affect;
        the next :meth:`run` recomputes just that cone (experiment E6
        measures the savings).
        """
        flow = self.flow
        self.feedback.extend(list(items))
        self.telemetry.metrics.counter("feedback.items").increment(len(items))
        wrangled = self.working.get("table", "wrangled")
        propagator = FeedbackPropagator(
            self.feedback,
            self.registry,
            self.working.annotations,
            metrics=self.telemetry.metrics,
        )
        with self.telemetry.tracer.span(
            "feedback.apply", items=len(items)
        ) as feedback_span:
            report = propagator.propagate(wrangled=wrangled)
        self._match_evidence = dict(report.match_evidence)

        invalidated: set[str] = set()
        for item in items:
            if isinstance(item, ValueFeedback):
                # Reliabilities moved: fusion weights and source scores.
                invalidated.update(("fuse", "select"))
            elif isinstance(item, MatchFeedback):
                if item.source_name and item.source_name in self.registry:
                    invalidated.add(f"match:{item.source_name}")
                else:
                    for name in self.registry.names():
                        invalidated.add(f"match:{name}")
            elif isinstance(item, DuplicateFeedback):
                invalidated.add("resolve")
            elif isinstance(item, RelevanceFeedback):
                invalidated.add("select")
            elif isinstance(item, ExtractionFeedback):
                for name in self.registry.names():
                    if isinstance(self.registry.get(name), DocumentSource):
                        invalidated.add(f"acquire:{name}")
        # Feedback also informs *source selection* (Section 2.4): if the
        # shifted beliefs say a materially better source set exists,
        # replan — acquisition of newly selected sources is then a
        # legitimate, paid-for recomputation.  The 10% profit hysteresis
        # keeps near-tie oscillations from thrashing the pipeline.
        # The previous run's plan is genuinely what is wanted here: the
        # comparison asks whether feedback moved the beliefs enough to
        # beat the plan the current outputs were computed with.
        current_plan = flow.value("plan", allow_stale=True)
        if current_plan is not None:
            fresh_plan = self.planner.plan(
                self.user, self.data, self.registry, self.working.annotations
            )
            if set(fresh_plan.sources) != set(current_plan.sources):
                from repro.selection.source_selection import SourceSelector

                profiles = {
                    p.name: p
                    for p in SourceSelector.profiles_from_registry(
                        self.registry, self.working.annotations
                    )
                }
                selector = self.planner.selector

                def profit(names: Sequence[str]) -> float:
                    chosen = [profiles[n] for n in names if n in profiles]
                    return selector.gain(chosen) - sum(p.cost for p in chosen)

                if profit(fresh_plan.sources) > 1.1 * profit(
                    current_plan.sources
                ) + 1.0:
                    invalidated.add("plan")

        for node in sorted(invalidated):
            flow.invalidate(node)
        feedback_span.set_attribute("invalidated", sorted(invalidated))
        self.telemetry.metrics.counter(
            "feedback.nodes_invalidated"
        ).increment(len(invalidated))

    def refresh_source(self, source_name: str) -> None:
        """Re-acquire one (volatile) source on the next run — Velocity.

        Only that source's acquisition cone recomputes; the other sources'
        extractions, matches, and mappings stay memoised.
        """
        if source_name not in self.registry:
            raise PlanningError(f"no source registered under {source_name!r}")
        self.flow.invalidate(f"acquire:{source_name}")

    def relations(self) -> dict[str, Table]:
        """The queryable relations of the working data (dataspace view).

        ``wrangled`` plus every raw and mapped source table, addressable
        as ``raw/<source>`` and ``mapped/<source>`` — "storing intermediate
        results of the ETL process for on-demand recombination"
        (Section 4.2).
        """
        return {key: table for key, table in self.working.items("table")}

    def query(self, cq) -> list[dict[str, object]]:
        """Run a conjunctive query over the working-data relations.

        Relations resolve by the names :meth:`relations` exposes; the
        wrangled data is the relation ``"wrangled"``.
        """
        return cq.evaluate(self.relations())

    def changes_since_last_run(self):
        """Typed diff between the two most recent wrangled snapshots.

        The payoff of Velocity handling: after :meth:`refresh_source` (or
        feedback) and a re-run, this reports exactly which entities
        appeared, disappeared, or changed value — price moves included.
        """
        return self.history.diff_latest()

    def recompute_count(self) -> int:
        """Total node computations so far (the incrementality metric)."""
        return self.flow.total_runs()
