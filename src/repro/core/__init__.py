"""The autonomic core: incremental dataflow, planner, and the Wrangler."""

from repro.core.dataflow import Dataflow
from repro.core.executor import Executor, ParallelExecutor, SequentialExecutor
from repro.core.history import Change, ChangeReport, SnapshotHistory
from repro.core.planner import AutonomicPlanner, WranglePlan
from repro.core.result import WrangleResult
from repro.core.wrangler import Wrangler

__all__ = [
    "AutonomicPlanner",
    "Change",
    "ChangeReport",
    "SnapshotHistory",
    "Dataflow",
    "Executor",
    "ParallelExecutor",
    "SequentialExecutor",
    "WranglePlan",
    "WrangleResult",
    "Wrangler",
]
