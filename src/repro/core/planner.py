"""The autonomic planner: composing the pipeline from the contexts.

Section 4.2: "the requirements of automation, refined on a pay-as-you-go
basis taking into account the user context, is at odds with a hard-wired,
user-specified data manipulation workflow ... Such an approach requires an
autonomic approach to data wrangling, in which self-configuration is more
central to the architecture than in self-managing databases."

Nothing in the wrangler is hand-wired: the planner reads the user context
(weights, floors, budget), the data context (is there an ontology?
reference data? master data?), and the current working-data beliefs
(source annotations, reliabilities) and decides

* which sources to access (budgeted marginal-gain selection),
* which matching evidence channels to enable,
* the ER match threshold (precision- vs recall-leaning),
* the fusion strategy per quality emphasis,
* whether to run constraint repair.

Every decision carries a human-readable rationale — autonomic must not
mean inscrutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.context.data_context import DataContext
from repro.context.user_context import UserContext
from repro.model.annotations import AnnotationStore, Dimension
from repro.resolution.comparison import TRANSIENT_DTYPES
from repro.selection.source_selection import SourceSelector
from repro.sources.registry import SourceRegistry

__all__ = ["WranglePlan", "AutonomicPlanner"]


@dataclass
class WranglePlan:
    """Everything the pipeline needs to configure itself."""

    sources: list[str]
    matcher_channels: tuple[str, ...]
    match_threshold: float
    er_threshold: float
    fusion_strategy: str
    fusion_overrides: dict[str, str] = field(default_factory=dict)
    #: Target attributes entity resolution compares on; empty means "let
    #: the comparator derive its own set from the schema".
    er_attributes: tuple[str, ...] = ()
    run_repair: bool = True
    rationale: list[str] = field(default_factory=list)

    def explain(self) -> str:
        """The plan's decisions with their reasons, one per line."""
        return "\n".join(self.rationale)


class AutonomicPlanner:
    """Derives a :class:`WranglePlan` from contexts and working data."""

    def __init__(self, selector: SourceSelector | None = None) -> None:
        self.selector = selector or SourceSelector()

    def plan(
        self,
        user: UserContext,
        data: DataContext,
        registry: SourceRegistry,
        annotations: AnnotationStore,
    ) -> WranglePlan:
        """Compose the pipeline configuration for this user, now."""
        rationale: list[str] = [f"planning for {user.describe()}"]

        # 1. Sources: budgeted marginal-gain selection over current beliefs.
        # An accuracy-leaning context values redundancy — agreement between
        # independent sources is how fused accuracy is bought — so the
        # per-item gain is scaled up with the accuracy weight, letting the
        # greedy selection keep cross-checking sources it would otherwise
        # judge unprofitable on coverage alone.
        profiles = SourceSelector.profiles_from_registry(registry, annotations)
        redundancy_bonus = 1.0 + 2.0 * user.weight(Dimension.ACCURACY)
        self.selector.gain_per_item = redundancy_bonus
        if user.budget != float("inf"):
            selection = self.selector.select(profiles, budget=user.budget)
            sources = selection.selected
            rationale.append(
                f"selected {len(sources)}/{len(profiles)} sources by marginal "
                f"gain under budget {user.budget:.1f} "
                f"(gain {selection.final_gain:.1f}, cost {selection.total_cost:.1f}); "
                f"rejected: {', '.join(selection.rejected) or 'none'}"
            )
        else:
            completeness_leaning = user.weight(Dimension.COMPLETENESS) >= 0.3
            if completeness_leaning:
                sources = [profile.name for profile in profiles]
                rationale.append(
                    "no budget and completeness-leaning context: using all sources"
                )
            else:
                selection = self.selector.select(profiles)
                sources = selection.selected or [
                    profile.name for profile in profiles
                ]
                rationale.append(
                    "no budget: marginal-gain selection dropped sources whose "
                    f"noise outweighs their coverage; kept {len(sources)}/{len(profiles)}"
                )

        # 2. Matching evidence: use everything the data context can feed.
        channels = ["name", "instance"]
        if data.ontology is not None:
            channels.append("ontology")
            rationale.append(
                f"ontology {data.ontology.name!r} present: semantic matching on"
            )
        else:
            rationale.append("no ontology: syntactic + instance matching only")
        channels.append("feedback")
        match_threshold = 0.5 + 0.2 * user.weight(Dimension.ACCURACY)
        rationale.append(
            f"match threshold {match_threshold:.2f} from accuracy weight "
            f"{user.weight(Dimension.ACCURACY):.2f}"
        )

        # 3. ER threshold: precision-leaning contexts merge conservatively;
        # completeness-leaning contexts merge eagerly (recall).
        accuracy_lean = user.weight(Dimension.ACCURACY) - user.weight(
            Dimension.COMPLETENESS
        )
        er_threshold = min(0.95, max(0.75, 0.8 + 0.3 * accuracy_lean))
        rationale.append(
            f"ER threshold {er_threshold:.2f} "
            f"({'precision' if accuracy_lean >= 0 else 'recall'}-leaning)"
        )

        # 4. Fusion strategy from the dominant quality emphasis.
        timeliness = user.weight(Dimension.TIMELINESS)
        accuracy = user.weight(Dimension.ACCURACY)
        if timeliness > accuracy and timeliness > 0.2:
            strategy = "recent"
            rationale.append(
                "timeliness dominates: fusing by most recent observation"
            )
        else:
            strategy = "weighted"
            rationale.append(
                "accuracy dominates: fusing by reliability-weighted vote"
            )
        overrides: dict[str, str] = {}
        # The robust median only pays off when the evidence says sources
        # actually make magnitude errors; against mostly-clean sources it
        # discards reliability information for nothing.
        source_accuracies = [
            annotations.score(f"source:{name}", Dimension.ACCURACY, default=0.7)
            for name in sources
        ]
        mean_accuracy = (
            sum(source_accuracies) / len(source_accuracies)
            if source_accuracies
            else 0.7
        )
        if mean_accuracy < 0.65 and strategy != "recent":
            for attribute in user.target_schema:
                if attribute.dtype.is_numeric():
                    overrides[attribute.name] = "median"
        if overrides:
            rationale.append(
                f"noisy sources (mean accuracy {mean_accuracy:.2f}): numeric "
                "attributes fused by weighted median (robust to magnitude "
                f"errors): {', '.join(sorted(overrides))}"
            )

        # ER comparison keys, declared explicitly so the static type
        # checker can certify them against the translated schema: every
        # non-lineage, non-transient target attribute (URL/DATE/CURRENCY
        # name the observation, not the entity).
        er_attributes = tuple(
            attribute.name
            for attribute in user.target_schema
            if not attribute.name.startswith("_")
            and attribute.dtype not in TRANSIENT_DTYPES
        )

        # 5. Repair: on unless the user explicitly discounts consistency.
        run_repair = user.weight(Dimension.CONSISTENCY) > 0.0 or bool(user.floors)
        rationale.append(
            "constraint repair on" if run_repair else "constraint repair off "
            "(consistency carries no weight in this context)"
        )

        return WranglePlan(
            sources=sources,
            matcher_channels=tuple(channels),
            match_threshold=match_threshold,
            er_threshold=er_threshold,
            fusion_strategy=strategy,
            fusion_overrides=overrides,
            er_attributes=er_attributes,
            run_repair=run_repair,
            rationale=rationale,
        )
