"""Snapshot history and change detection over wrangled data.

Velocity is not just a nuisance to tolerate — it is the *product* in the
paper's running example: price intelligence exists to notice price moves.
The :class:`SnapshotHistory` keeps successive wrangled tables (keyed by
the stable entity ids) and diffs consecutive runs into typed
:class:`Change` events: new entities, disappeared entities, and per-cell
value changes with both provenances attached, so every alert is
explainable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.model.records import Table

__all__ = ["Change", "ChangeReport", "SnapshotHistory"]

_snapshot_counter = itertools.count(1)


@dataclass(frozen=True)
class Change:
    """One observed difference between consecutive snapshots."""

    kind: str  # "appeared" | "disappeared" | "changed"
    entity: str
    attribute: str | None = None
    old_value: object | None = None
    new_value: object | None = None

    def describe(self) -> str:
        """A one-line human-readable account."""
        if self.kind == "appeared":
            return f"entity {self.entity} appeared"
        if self.kind == "disappeared":
            return f"entity {self.entity} disappeared"
        return (
            f"entity {self.entity}: {self.attribute} "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


@dataclass
class ChangeReport:
    """All changes between two snapshots."""

    from_snapshot: int
    to_snapshot: int
    changes: list[Change] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def of_kind(self, kind: str) -> list[Change]:
        """Changes of one kind (``appeared``/``disappeared``/``changed``)."""
        return [change for change in self.changes if change.kind == kind]

    def for_attribute(self, attribute: str) -> list[Change]:
        """Value changes on one attribute — e.g. every price move."""
        return [
            change
            for change in self.changes
            if change.kind == "changed" and change.attribute == attribute
        ]

    def numeric_moves(self, attribute: str) -> list[tuple[str, float]]:
        """(entity, relative change) for numeric moves of ``attribute``."""
        moves = []
        for change in self.for_attribute(attribute):
            try:
                old = float(change.old_value)  # type: ignore[arg-type]
                new = float(change.new_value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            if old == 0:
                continue
            moves.append((change.entity, (new - old) / old))
        return moves

    def summary(self) -> str:
        """Counts per change kind."""
        return (
            f"{len(self.of_kind('appeared'))} appeared, "
            f"{len(self.of_kind('disappeared'))} disappeared, "
            f"{len(self.of_kind('changed'))} cell changes"
        )


class SnapshotHistory:
    """Keeps wrangled snapshots and diffs consecutive ones."""

    def __init__(self, max_snapshots: int = 50) -> None:
        if max_snapshots < 2:
            raise ValueError("history needs room for at least two snapshots")
        self.max_snapshots = max_snapshots
        self._snapshots: list[tuple[int, Table]] = []

    def __len__(self) -> int:
        return len(self._snapshots)

    def record(self, table: Table) -> int:
        """Store a snapshot; returns its id."""
        snapshot_id = next(_snapshot_counter)
        self._snapshots.append((snapshot_id, table))
        if len(self._snapshots) > self.max_snapshots:
            self._snapshots.pop(0)
        return snapshot_id

    def latest(self) -> Table | None:
        """The most recent snapshot, if any."""
        return self._snapshots[-1][1] if self._snapshots else None

    def diff_latest(self) -> ChangeReport:
        """Changes between the two most recent snapshots."""
        if len(self._snapshots) < 2:
            raise ValueError("need two snapshots to diff")
        (old_id, old), (new_id, new) = self._snapshots[-2], self._snapshots[-1]
        return self.diff(old, new, old_id, new_id)

    @staticmethod
    def diff(
        old: Table, new: Table, old_id: int = 0, new_id: int = 0
    ) -> ChangeReport:
        """Typed differences between two wrangled tables.

        Entities align by record id (stable, content-derived); cells
        compare by raw value over the shared schema.
        """
        report = ChangeReport(old_id, new_id)
        old_by_id = {record.rid: record for record in old}
        new_by_id = {record.rid: record for record in new}
        shared_attributes = [
            name for name in new.schema.names
            if name in old.schema and not name.startswith("_")
        ]
        for rid in sorted(new_by_id.keys() - old_by_id.keys()):
            report.changes.append(Change("appeared", rid))
        for rid in sorted(old_by_id.keys() - new_by_id.keys()):
            report.changes.append(Change("disappeared", rid))
        for rid in sorted(old_by_id.keys() & new_by_id.keys()):
            old_record, new_record = old_by_id[rid], new_by_id[rid]
            for name in shared_attributes:
                old_value = old_record.get(name)
                new_value = new_record.get(name)
                if old_value.is_missing and new_value.is_missing:
                    continue
                if old_value.raw != new_value.raw:
                    report.changes.append(
                        Change("changed", rid, name, old_value.raw, new_value.raw)
                    )
        return report
