"""Pluggable execution backends: the engine side of PX-gated fan-out.

Section 4.3 asks for extraction, integration and querying to "be executed
using such platforms" as map/reduce.  PR 5 built the gate — the
PX001–PX008 parallel-safety certifier — and this module is the engine
that fans out under it:

* :class:`SequentialExecutor` — the default backend.  Runs every batch
  inline, in submission order, so ``Wrangler.run(parallel=1)`` is
  byte-identical to today's sequential path while exercising the same
  orchestration (gating, chunking, merge) as the parallel backend.
* :class:`ParallelExecutor` — a ``concurrent.futures``-backed pool.
  ``map`` ships picklable payloads to worker *processes*;
  ``map_local`` runs coordinator-state-touching thunks on a bounded
  *thread* pool (the acquisition batcher: the pool size is the rate
  limit on concurrent source access).

The safety policy mirrors the strict fan-out contract of
:func:`repro.analysis.parallel.ensure_certified`:

* **process fan-out** (``gate_process``) requires every gated callable to
  certify ROW_LOCAL or PARTITION_LOCAL — a GLOBAL callable closes over
  coordinator state a forked worker would silently diverge from;
* **thread fan-out** (``gate_thread``) refuses only UNSAFE — the work
  still runs in the coordinator process, where the shared state a GLOBAL
  certificate points at actually lives, so only certified races are
  grounds for refusal.

A refused (or unpicklable) batch *falls back to sequential* and the
refusal is noted: ``note_fallback`` feeds both the ``executor.fallbacks``
counter and the run span's ``executor_fallback_sites`` attribute, so a
run that silently did less fanning out than asked is visible in
telemetry.  All merge points are order-preserving — ``map``/``map_local``
return results in submission order — which is what makes a parallel
``WrangleResult`` equal to the sequential one modulo timing fields.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import WranglingError
from repro.obs import SystemClock, Telemetry

__all__ = [
    "FAN_OUT_LEVELS",
    "Executor",
    "ParallelExecutor",
    "SequentialExecutor",
]

T = TypeVar("T")

#: Certificate levels the engine may ship to another process — the same
#: set :meth:`repro.analysis.parallel.ParallelSafety.fan_out_safe` accepts.
FAN_OUT_LEVELS = frozenset({"row_local", "partition_local"})


def _invoke_node(payload: tuple[Callable[..., Any], dict[str, Any]]):
    """Worker body for one shipped dataflow node: compute(inputs), timed.

    The elapsed seconds come back with the value so the coordinator can
    keep the node's ``seconds`` counter and the ``dataflow.compute_seconds``
    histogram honest about where compute time was really spent.
    """
    compute, inputs = payload
    clock = SystemClock()
    started = clock.current_time()
    value = compute(inputs)
    return value, clock.current_time() - started


def _describe(fn: Callable[..., Any]) -> str:
    return getattr(fn, "__qualname__", None) or getattr(
        fn, "__name__", None
    ) or repr(fn)


class Executor:
    """The execution backend contract plus shared gating and accounting.

    The base class *is* the sequential backend: ``map`` and ``map_local``
    run inline in submission order.  Subclasses override only the
    execution methods; gating, chunking, fallback notes, and telemetry
    publication are identical across backends — which is why the
    ``executor.*`` counters come out byte-identical across
    ``parallel=1/2/4``.
    """

    kind = "sequential"

    def __init__(self, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise WranglingError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = int(max_workers)
        #: One entry per fan-out decision (a *site*, not a chunk count —
        #: chunking varies with max_workers, decisions do not).
        self.fan_outs: list[str] = []
        #: Every refusal to fan out: ``(site, reason)``.
        self.fallbacks: list[tuple[str, str]] = []
        self._analyser: Any = None

    # -- PX gating ---------------------------------------------------------

    def _certificate(self, fn: Callable[..., Any]):
        # core (rank 7) sits above analysis (rank 6): the executor is the
        # one engine component allowed to consult the certifier directly.
        from repro.analysis.parallel import ParallelAnalyser

        if self._analyser is None:
            self._analyser = ParallelAnalyser()
        return self._analyser.certify(fn, role="map")

    def gate_process(self, site: str, *callables: Callable[..., Any]) -> bool:
        """Whether every callable may run in a forked worker process.

        Requires ROW_LOCAL or PARTITION_LOCAL; a refusal notes the site
        and the offending certificate, and the caller runs sequentially.
        """
        for fn in callables:
            certificate = self._certificate(fn)
            if not certificate.level.fan_out_safe:
                self.note_fallback(
                    site,
                    f"{_describe(fn)} certified "
                    f"{certificate.level.value}",
                )
                return False
        return True

    def gate_thread(self, site: str, *callables: Callable[..., Any]) -> bool:
        """Whether every callable may run on a coordinator thread.

        Threads share the coordinator's memory, so GLOBAL state is where
        it always was — only an UNSAFE certificate (a certified race) is
        grounds for refusal, mirroring the reduce-side policy of
        :func:`repro.analysis.parallel.ensure_certified`.
        """
        from repro.analysis.parallel import ParallelSafety

        for fn in callables:
            certificate = self._certificate(fn)
            if certificate.level is ParallelSafety.UNSAFE:
                self.note_fallback(
                    site, f"{_describe(fn)} certified unsafe"
                )
                return False
        return True

    # -- shipping ----------------------------------------------------------

    def can_ship(self, payload: Any) -> bool:
        """Whether a payload crosses the process boundary (pickles)."""
        try:
            pickle.dumps(payload)
        except (pickle.PicklingError, TypeError, AttributeError):
            # PicklingError for unregistered types, TypeError for
            # unpicklable builtins (locks, generators), AttributeError
            # for closures and local classes.
            return False
        return True

    def ship_or_note(self, site: str, payload: Any) -> bool:
        """``can_ship``, noting the fallback when the answer is no."""
        if self.can_ship(payload):
            return True
        self.note_fallback(site, "payload not picklable")
        return False

    def chunk(self, items: Sequence[T]) -> list[list[T]]:
        """Contiguous, near-equal chunks sized to the worker count.

        Contiguity is what makes the merge deterministic: concatenating
        per-chunk results in chunk order reproduces the input order
        exactly, whatever ``max_workers`` is.
        """
        items = list(items)
        if not items:
            return []
        n_chunks = max(1, min(len(items), self.max_workers * 4))
        size, extra = divmod(len(items), n_chunks)
        chunks: list[list[T]] = []
        start = 0
        for index in range(n_chunks):
            end = start + size + (1 if index < extra else 0)
            chunks.append(items[start:end])
            start = end
        return chunks

    # -- accounting --------------------------------------------------------

    def note_fan_out(self, site: str) -> None:
        """Record one fan-out decision at ``site``."""
        self.fan_outs.append(site)

    def note_fallback(self, site: str, reason: str) -> None:
        """Record one refusal to fan out at ``site``."""
        self.fallbacks.append((site, reason))

    def fan_out_sites(self) -> list[str]:
        """The distinct sites that fanned out, sorted."""
        return sorted(set(self.fan_outs))

    def fallback_notes(self) -> list[str]:
        """The distinct ``site: reason`` refusals, sorted."""
        return sorted({f"{site}: {reason}" for site, reason in self.fallbacks})

    def publish(self, telemetry: Telemetry) -> None:
        """Emit the run's fan-out accounting as ``executor.*`` counters."""
        if self.fan_outs:
            telemetry.metrics.counter("executor.fan_outs").increment(
                len(self.fan_outs)
            )
        if self.fallbacks:
            telemetry.metrics.counter("executor.fallbacks").increment(
                len(self.fallbacks)
            )

    # -- execution ---------------------------------------------------------

    def map(
        self, fn: Callable[[Any], T], payloads: Iterable[Any]
    ) -> list[T]:
        """Apply ``fn`` to each payload; results in submission order."""
        return [fn(payload) for payload in payloads]

    def map_local(self, thunks: Sequence[Callable[[], T]]) -> list[T]:
        """Run zero-argument thunks in-process; results in submission
        order."""
        return [thunk() for thunk in thunks]

    def shutdown(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class SequentialExecutor(Executor):
    """The default backend: everything inline, nothing shipped.

    Exists as a named class (rather than using :class:`Executor` bare) so
    call sites and telemetry can say which backend ran.
    """

    kind = "sequential"


class ParallelExecutor(Executor):
    """Process fan-out for certified work, bounded threads for the rest.

    The process pool is created lazily (first ``map`` with more than one
    payload) and forked workers are reused across batches; ``shutdown``
    (or exiting the context manager) releases them.  Thread pools for
    ``map_local`` are per-batch — acquisition happens once per run, and a
    bounded pool doubles as the rate limit on concurrent source access.
    """

    kind = "process"

    def __init__(self, max_workers: int) -> None:
        super().__init__(max_workers)
        self._pool: _ProcessPool | None = None

    def _ensure_pool(self) -> _ProcessPool:
        if self._pool is None:
            self._pool = _ProcessPool(max_workers=self.max_workers)
        return self._pool

    def map(
        self, fn: Callable[[Any], T], payloads: Iterable[Any]
    ) -> list[T]:
        batch = list(payloads)
        if len(batch) <= 1:
            return [fn(payload) for payload in batch]
        return list(self._ensure_pool().map(fn, batch))

    def map_local(self, thunks: Sequence[Callable[[], T]]) -> list[T]:
        batch = list(thunks)
        if len(batch) <= 1:
            return [thunk() for thunk in batch]
        with _ThreadPool(
            max_workers=min(self.max_workers, len(batch))
        ) as pool:
            futures = [pool.submit(thunk) for thunk in batch]
            return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
