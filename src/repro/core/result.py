"""The outcome of a wrangling run: data plus everything behind it."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.planner import WranglePlan
from repro.mapping.selection import ScoredMapping
from repro.model.records import Table
from repro.quality.metrics import QualityReport
from repro.quality.repair import RepairResult
from repro.resolution.er import ResolutionResult

__all__ = ["WrangleResult"]


@dataclass
class WrangleResult:
    """Wrangled data with its plan, quality report, and lineage access.

    The paper's architecture stores all intermediate results; this object
    is the user-facing view of them for one run.
    """

    table: Table
    plan: WranglePlan
    quality: QualityReport
    mappings: list[ScoredMapping] = field(default_factory=list)
    resolution: ResolutionResult | None = None
    repair: RepairResult | None = None
    source_reports: dict[str, QualityReport] = field(default_factory=dict)
    access_cost: float = 0.0
    feedback_cost: float = 0.0
    #: The run's telemetry snapshot (schema of :mod:`repro.obs.telemetry`):
    #: per-stage spans, dataflow hit/miss/timing stats, and every metric
    #: the components recorded.  ``None`` only when constructed by hand.
    telemetry: dict | None = None
    #: The degradation ledger's export (see
    #: :mod:`repro.resilience.ledger`): per-source physical attempts,
    #: outcomes, breaker state, and final disposition.  ``None`` when the
    #: wrangler runs without :meth:`~repro.core.wrangler.Wrangler.resilience`.
    degradation: dict | None = None
    #: The run's durable-ingestion summary (see
    #: :meth:`repro.ingest.checkpoint.RunLog.export`): run id, whether it
    #: resumed and from which checkpoint, committed steps, per-source
    #: delta/full acquisition modes and watermarks, and the output
    #: snapshot id the run replays from.  ``None`` when the wrangler runs
    #: without :meth:`~repro.core.wrangler.Wrangler.checkpointing`.
    ingest: dict | None = None

    def degraded_sources(self) -> list[str]:
        """Sources that did not deliver data this run (ledger verdicts)."""
        if not self.degradation:
            return []
        return sorted(
            name
            for name, entry in self.degradation.items()
            if not entry.get("survived", True)
        )

    @property
    def total_cost(self) -> float:
        """Everything this result has cost: source access plus feedback."""
        return self.access_cost + self.feedback_cost

    def why(self, entity: str, attribute: str) -> str:
        """The full lineage explanation of one wrangled cell."""
        for record in self.table:
            if record.rid == entity:
                return record.get(attribute).provenance.why()
        raise KeyError(f"no entity {entity!r} in the wrangled data")

    def explain(self) -> str:
        """A readable account of the run: plan, shape, quality, cost."""
        lines = [
            "=== wrangle plan ===",
            self.plan.explain(),
            "=== result ===",
            self.table.describe(),
        ]
        if self.resolution is not None:
            merged = sum(
                len(c) for c in self.resolution.non_singleton()
            )
            lines.append(
                f"entity resolution: {len(self.resolution)} entities from "
                f"{merged} merged records "
                f"({self.resolution.compared} comparisons over "
                f"{self.resolution.candidate_pairs} candidate pairs)"
            )
        if self.repair is not None and self.repair.repairs:
            lines.append(
                f"constraint repair: {len(self.repair.repairs)} cells modified "
                f"at cost {self.repair.total_cost:.2f}"
            )
        if self.degradation:
            degraded = self.degraded_sources()
            attempts = sum(
                len(entry.get("attempts", ()))
                for entry in self.degradation.values()
            )
            lines.append(
                f"resilience: {attempts} physical attempts over "
                f"{len(self.degradation)} sources; "
                + (
                    f"degraded: {', '.join(degraded)}"
                    if degraded
                    else "all sources survived"
                )
            )
        if self.ingest:
            modes = {
                name: entry.get("mode", "?")
                for name, entry in self.ingest.get("acquisitions", {}).items()
            }
            resumed = (
                f"resumed from {self.ingest.get('resumed_from')!r}"
                if self.ingest.get("resumed")
                else "fresh"
            )
            lines.append(
                f"ingest: {self.ingest.get('run_id')} ({resumed}); "
                + (
                    "acquisitions: "
                    + ", ".join(f"{n}={m}" for n, m in sorted(modes.items()))
                    if modes
                    else "no acquisitions this run"
                )
                + f"; snapshot {self.ingest.get('output_snapshot')}"
            )
        lines.append(f"quality: {self.quality.summary()}")
        lines.append(
            f"cost: {self.access_cost:.1f} source access + "
            f"{self.feedback_cost:.1f} feedback = {self.total_cost:.1f}"
        )
        return "\n".join(lines)
