"""Partitioned (map/reduce-style) execution of wrangling tasks.

Section 4.3: "ETL vendors have responded to this challenge by compiling
ETL workflows into big data platforms, such as map/reduce.  In the
architecture of Figure 1, it will be necessary for extraction, integration
and data querying tasks to be able to be executed using such platforms."

This module provides the execution shape — hash partitioning, a per-
partition map, a cross-partition reduce — as plain deterministic Python,
plus the two instantiations the benchmarks exercise: partitioned profiling
and partitioned entity resolution (partition-local ER with a merge step,
the standard blocking-respecting parallelisation).

Both entry points accept ``strict=True``, the fan-out contract the
parallel-safety certifier (:mod:`repro.analysis.parallel`) enforces: the
map-side callables must certify ROW_LOCAL or PARTITION_LOCAL and the
reduce-side callable must not certify UNSAFE, or the call is refused
with :class:`~repro.errors.ParallelSafetyError` before any work starts.
A future partitioned scheduler fans out *only* under this contract.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

import networkx as nx

from repro.errors import WranglingError
from repro.model.records import Record, Table
from repro.resolution.er import EntityCluster, EntityResolver, ResolutionResult

if TYPE_CHECKING:  # typing only: scale must not import core at runtime
    from repro.core.executor import Executor

__all__ = ["hash_partition", "map_reduce", "partitioned_resolve", "stable_digest"]

M = TypeVar("M")
R = TypeVar("R")


def stable_digest(key: object) -> int:
    """A process-stable 32-bit digest of ``key``'s string form.

    ``hash()`` is salted per process for str, so partition assignment
    would differ between coordinator and workers; CRC-32 over the
    UTF-8 encoding is deterministic everywhere and mixes every byte
    (the previous hand-rolled ``digest*131 + ord(char)`` loop let the
    last character dominate the low bits — pathological skew whenever
    ``n_partitions`` divided the multiplier's cycle).
    """
    return zlib.crc32(str(key).encode("utf-8"))


def _ensure_strict(
    map_fn: Callable[..., object] | None,
    reduce_fn: Callable[..., object] | None,
    key: Callable[..., object] | None,
) -> None:
    """Certify the callables a strict fan-out will run, or refuse.

    The analysis layer sits above the scale layer, so the certifier is
    imported lazily and only when strict mode is requested — the default
    (non-strict) path never touches it.
    """
    # Deliberate, gated inversion: certification is optional policy, the
    # default (non-strict) path never touches the analysis layer.
    from repro.analysis.parallel import (  # repro: noqa[REP007]
        ParallelAnalyser,
        ensure_certified,
    )

    analyser = ParallelAnalyser()
    if key is not None:
        ensure_certified(key, role="map", analyser=analyser, name="key")
    if map_fn is not None:
        ensure_certified(map_fn, role="map", analyser=analyser, name="map_fn")
    if reduce_fn is not None:
        ensure_certified(
            reduce_fn, role="reduce", analyser=analyser, name="reduce_fn"
        )


def hash_partition(
    table: Table, n_partitions: int, key: Callable[[Record], object] | None = None
) -> list[Table]:
    """Split ``table`` into ``n_partitions`` by a stable hash of ``key``.

    The default key is the record id; ER callers pass a blocking key so
    that likely duplicates land in the same partition.  Assignment uses
    :func:`stable_digest`, so the same record lands in the same
    partition in every process.
    """
    if n_partitions <= 0:
        raise WranglingError("n_partitions must be positive")
    key = key or (lambda record: record.rid)
    partitions: list[list[Record]] = [[] for __ in range(n_partitions)]
    for record in table.records:
        partitions[stable_digest(key(record)) % n_partitions].append(record)
    return [
        Table(f"{table.name}/part-{index}", table.schema, records)
        for index, records in enumerate(partitions)
    ]


def map_reduce(
    table: Table,
    n_partitions: int,
    map_fn: Callable[[Table], M],
    reduce_fn: Callable[[Sequence[M]], R],
    key: Callable[[Record], object] | None = None,
    strict: bool = False,
) -> R:
    """Hash-partition, map each partition, reduce the partials.

    With ``strict=True``, ``map_fn`` (and ``key``) must certify fan-out
    safe and ``reduce_fn`` must not certify UNSAFE — see
    :mod:`repro.analysis.parallel` — before anything runs.
    """
    if strict:
        _ensure_strict(map_fn, reduce_fn, key)
    partials = [
        map_fn(partition)
        for partition in hash_partition(table, n_partitions, key)
    ]
    return reduce_fn(partials)


def _resolve_partition(payload: tuple[EntityResolver, Table]) -> ResolutionResult:
    """Worker body for one shipped partition."""
    resolver, partition = payload
    return resolver.resolve(partition)


def partitioned_resolve(
    table: Table,
    resolver: EntityResolver,
    n_partitions: int,
    blocking_key: Callable[[Record], object],
    strict: bool = False,
    executor: "Executor | None" = None,
) -> ResolutionResult:
    """Entity resolution as partition-local ER plus a union of results.

    Records are partitioned by ``blocking_key`` (e.g. the first title
    token), so duplicates co-locate; each partition is resolved
    independently and the clusters are merged.  Pairs split across
    partitions are missed — that recall loss versus single-node ER is
    precisely what experiment E7 measures.

    Merged clusters carry the same content-derived
    :func:`~repro.resolution.er.stable_cluster_id` single-node ER mints
    (they used to get positional ``entity-{number}`` ids, which silently
    mis-bound feedback the moment execution mode changed), and the merged
    cluster list is sorted by id exactly as ``EntityResolver.resolve``
    sorts its own output.

    With ``strict=True`` the blocking key and the resolver's ``resolve``
    method must certify fan-out safe (ROW_LOCAL or PARTITION_LOCAL)
    before any partition is resolved.  With an ``executor``, non-empty
    partitions are shipped to workers under the same certificate gate
    (refusals fall back to the sequential loop, with a telemetry note);
    partitioning and the merge stay on the coordinator, so the blocking
    key itself never crosses the process boundary.
    """
    if strict:
        _ensure_strict(resolver.resolve, None, blocking_key)
    partitions = hash_partition(table, n_partitions, blocking_key)
    populated = [partition for partition in partitions if len(partition)]
    results = _resolve_partitions(populated, resolver, executor)
    graph = nx.Graph()
    matched: dict[tuple[str, str], float] = {}
    compared = 0
    candidate_pairs = 0
    rid_to_record: dict[str, Record] = {}
    for result in results:
        compared += result.compared
        candidate_pairs += result.candidate_pairs
        matched.update(result.matched_pairs)
        for cluster in result.clusters:
            rids = [record.rid for record in cluster.records]
            for record in cluster.records:
                rid_to_record[record.rid] = record
                graph.add_node(record.rid)
            for left, right in zip(rids, rids[1:]):
                graph.add_edge(left, right)
    clusters = []
    for component in nx.connected_components(graph):
        records = [rid_to_record[rid] for rid in sorted(component)]
        clusters.append(EntityCluster.from_records(records))
    clusters.sort(key=lambda c: c.cluster_id)
    return ResolutionResult(
        clusters,
        matched_pairs=matched,
        compared=compared,
        candidate_pairs=candidate_pairs,
    )


def _resolve_partitions(
    populated: list[Table],
    resolver: EntityResolver,
    executor: "Executor | None",
) -> list[ResolutionResult]:
    """Resolve each partition, shipping to workers when certified safe."""
    if executor is not None and len(populated) > 1:
        if executor.gate_process("partitioned_resolve", resolver.resolve):
            payloads = [(resolver, partition) for partition in populated]
            if executor.ship_or_note("partitioned_resolve", payloads[0]):
                executor.note_fan_out("partitioned_resolve")
                return executor.map(_resolve_partition, payloads)
    return [resolver.resolve(partition) for partition in populated]
