"""Partitioned (map/reduce-style) execution of wrangling tasks.

Section 4.3: "ETL vendors have responded to this challenge by compiling
ETL workflows into big data platforms, such as map/reduce.  In the
architecture of Figure 1, it will be necessary for extraction, integration
and data querying tasks to be able to be executed using such platforms."

This module provides the execution shape — hash partitioning, a per-
partition map, a cross-partition reduce — as plain deterministic Python,
plus the two instantiations the benchmarks exercise: partitioned profiling
and partitioned entity resolution (partition-local ER with a merge step,
the standard blocking-respecting parallelisation).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import networkx as nx

from repro.errors import WranglingError
from repro.model.records import Record, Table
from repro.resolution.er import EntityCluster, EntityResolver, ResolutionResult

__all__ = ["hash_partition", "map_reduce", "partitioned_resolve"]

M = TypeVar("M")
R = TypeVar("R")


def hash_partition(
    table: Table, n_partitions: int, key: Callable[[Record], object] | None = None
) -> list[Table]:
    """Split ``table`` into ``n_partitions`` by a stable hash of ``key``.

    The default key is the record id; ER callers pass a blocking key so
    that likely duplicates land in the same partition.
    """
    if n_partitions <= 0:
        raise WranglingError("n_partitions must be positive")
    key = key or (lambda record: record.rid)
    partitions: list[list[Record]] = [[] for __ in range(n_partitions)]
    for record in table.records:
        # hash() is salted per process for str; use a stable digest instead.
        digest = 0
        for char in str(key(record)):
            digest = (digest * 131 + ord(char)) % (2**31)
        partitions[digest % n_partitions].append(record)
    return [
        Table(f"{table.name}/part-{index}", table.schema, records)
        for index, records in enumerate(partitions)
    ]


def map_reduce(
    table: Table,
    n_partitions: int,
    map_fn: Callable[[Table], M],
    reduce_fn: Callable[[Sequence[M]], R],
    key: Callable[[Record], object] | None = None,
) -> R:
    """Hash-partition, map each partition, reduce the partials."""
    partials = [
        map_fn(partition)
        for partition in hash_partition(table, n_partitions, key)
    ]
    return reduce_fn(partials)


def partitioned_resolve(
    table: Table,
    resolver: EntityResolver,
    n_partitions: int,
    blocking_key: Callable[[Record], object],
) -> ResolutionResult:
    """Entity resolution as partition-local ER plus a union of results.

    Records are partitioned by ``blocking_key`` (e.g. the first title
    token), so duplicates co-locate; each partition is resolved
    independently and the clusters are concatenated.  Pairs split across
    partitions are missed — that recall loss versus single-node ER is
    precisely what experiment E7 measures.
    """
    partitions = hash_partition(table, n_partitions, blocking_key)
    graph = nx.Graph()
    matched: dict[tuple[str, str], float] = {}
    compared = 0
    candidate_pairs = 0
    rid_to_record: dict[str, Record] = {}
    for partition in partitions:
        result = resolver.resolve(partition)
        compared += result.compared
        candidate_pairs += result.candidate_pairs
        matched.update(result.matched_pairs)
        for cluster in result.clusters:
            rids = [record.rid for record in cluster.records]
            for record in cluster.records:
                rid_to_record[record.rid] = record
                graph.add_node(record.rid)
            for left, right in zip(rids, rids[1:]):
                graph.add_edge(left, right)
    clusters = []
    for number, component in enumerate(nx.connected_components(graph)):
        records = [rid_to_record[rid] for rid in sorted(component)]
        clusters.append(EntityCluster(f"entity-{number}", records))
    return ResolutionResult(
        clusters,
        matched_pairs=matched,
        compared=compared,
        candidate_pairs=candidate_pairs,
    )
