"""Access-bounded (scale-independent) query evaluation.

After Fan, Geerts & Libkin, "On Scale Independence for Querying Big Data"
(PODS 2014, [17] in the paper): a query is boundedly evaluable when it can
be answered by fetching at most M tuples regardless of the database size,
given access constraints (indexes with output bounds).  The evaluator here
enforces a hard tuple-access budget: atoms are evaluated through declared
index accesses, every fetched tuple is counted, and exceeding the budget
raises rather than silently scanning — which is exactly the discipline the
paper says big-data wrangling queries need.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from repro.errors import QueryError
from repro.model.records import Table
from repro.obs.metrics import MetricsRegistry
from repro.scale.queries import Atom, ConjunctiveQuery, Variable

__all__ = ["AccessConstraint", "BoundedEvaluator", "AccessBudgetExceeded"]


class AccessBudgetExceeded(QueryError):
    """The query needed more tuple accesses than the declared budget."""


@dataclass(frozen=True)
class AccessConstraint:
    """An index on ``relation(key_attributes)`` returning <= ``bound`` rows
    per lookup (the access schema of scale-independent evaluation)."""

    relation: str
    key_attributes: tuple[str, ...]
    bound: int

    def __post_init__(self) -> None:
        if self.bound <= 0:
            raise QueryError("access bound must be positive")


class BoundedEvaluator:
    """Evaluates CQs under a total tuple-access budget via index lookups."""

    def __init__(
        self,
        constraints: list[AccessConstraint],
        budget: int,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if budget <= 0:
            raise QueryError("access budget must be positive")
        self.constraints = constraints
        self.budget = budget
        self.accesses = 0
        #: When given, every evaluation reports its tuple accesses against
        #: the budget — bounded evaluation ([17]) is only meaningful when
        #: accesses are actually counted and surfaced.
        self.metrics = metrics

    def _report(self) -> None:
        if self.metrics is None:
            return
        self.metrics.counter("bounded.queries").increment()
        self.metrics.counter("bounded.accesses").increment(self.accesses)
        self.metrics.gauge("bounded.budget").set(self.budget)
        self.metrics.gauge(
            "bounded.budget_remaining"
        ).set(max(0, self.budget - self.accesses))
        self.metrics.histogram(
            "bounded.accesses_per_query"
        ).observe(self.accesses)

    def _index_for(
        self, atom: Atom, bound_variables: set[str]
    ) -> AccessConstraint | None:
        """An access constraint usable given the currently bound variables."""
        for constraint in self.constraints:
            if constraint.relation != atom.relation:
                continue
            usable = True
            for key in constraint.key_attributes:
                term = atom.bindings.get(key)
                if term is None:
                    usable = False
                    break
                if isinstance(term, Variable) and term.name not in bound_variables:
                    usable = False
                    break
            if usable:
                return constraint
        return None

    def _lookup(
        self,
        table: Table,
        atom: Atom,
        binding: Mapping[str, object],
        constraint: AccessConstraint,
    ) -> list[dict[str, object]]:
        wanted: dict[str, object] = {}
        for key in constraint.key_attributes:
            term = atom.bindings[key]
            wanted[key] = (
                binding[term.name] if isinstance(term, Variable) else term
            )
        matches = []
        for record in table:
            if all(record.raw(k) == v for k, v in wanted.items()):
                matches.append(record)
                self.accesses += 1
                if self.accesses > self.budget:
                    raise AccessBudgetExceeded(
                        f"exceeded access budget of {self.budget} tuples"
                    )
                if len(matches) > constraint.bound:
                    raise QueryError(
                        f"access constraint {constraint} violated by the data: "
                        f"lookup returned more than {constraint.bound} rows"
                    )
        extended = []
        for record in matches:
            candidate = dict(binding)
            ok = True
            for attribute, term in atom.bindings.items():
                value = record.raw(attribute)
                if isinstance(term, Variable):
                    if term.name in candidate and candidate[term.name] != value:
                        ok = False
                        break
                    candidate[term.name] = value
                elif value != term:
                    ok = False
                    break
            if ok:
                extended.append(candidate)
        return extended

    def evaluate(
        self, query: ConjunctiveQuery, relations: Mapping[str, Table]
    ) -> list[dict[str, object]]:
        """Answer ``query`` using only index accesses within the budget.

        Atoms are ordered greedily so each has a usable access constraint
        when it runs; a query with no such ordering is not boundedly
        evaluable under the declared access schema and is rejected up
        front (statically — before any data is read).
        """
        self.accesses = 0
        try:
            return self._evaluate(query, relations)
        finally:
            # Accesses are reported even when the budget blows: the
            # over-budget query is precisely the one worth seeing.
            self._report()

    def _evaluate(
        self, query: ConjunctiveQuery, relations: Mapping[str, Table]
    ) -> list[dict[str, object]]:
        remaining = list(query.atoms)
        ordered: list[Atom] = []
        bound: set[str] = set()
        while remaining:
            progressed = False
            for atom in list(remaining):
                if self._index_for(atom, bound) is not None:
                    ordered.append(atom)
                    remaining.remove(atom)
                    bound |= atom.variables()
                    progressed = True
                    break
            if not progressed:
                raise QueryError(
                    "query is not boundedly evaluable under the declared "
                    f"access constraints (stuck at atoms {[a.relation for a in remaining]})"
                )

        bindings: list[dict[str, object]] = [{}]
        bound = set()
        for atom in ordered:
            table = relations.get(atom.relation)
            if table is None:
                raise QueryError(f"unknown relation {atom.relation!r}")
            constraint = self._index_for(atom, bound)
            if constraint is None:
                # The ordering phase proved an index exists for every atom;
                # reaching here means the plan and execution disagree.
                raise QueryError(
                    f"no access index for atom {atom.relation!r} at "
                    "execution time despite a feasible ordering"
                )
            next_bindings: list[dict[str, object]] = []
            for binding in bindings:
                next_bindings.extend(
                    self._lookup(table, atom, binding, constraint)
                )
            bindings = next_bindings
            bound |= atom.variables()
            if not bindings:
                break

        seen: set[tuple[object, ...]] = set()
        results = []
        for binding in bindings:
            row = {v: binding.get(v) for v in query.head}
            key = tuple(str(row[v]) for v in query.head)
            if key not in seen:
                seen.add(key)
                results.append(row)
        return results
