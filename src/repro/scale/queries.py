"""Conjunctive queries over working-data tables.

Section 4.3: "evaluating even standard queries of the sort used in
mappings may require substantial changes to classical assumptions when
faced with huge data sets".  This module supplies the classical part — a
conjunctive query (select-project-join) evaluator over tables — on which
the approximation and access-bounded evaluators build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import QueryError
from repro.model.records import Table

__all__ = ["Variable", "Atom", "ConjunctiveQuery"]


@dataclass(frozen=True)
class Variable:
    """A query variable, compared by name."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Variable | object


@dataclass(frozen=True)
class Atom:
    """One relational atom: ``relation(attribute=term, ...)``."""

    relation: str
    bindings: Mapping[str, Term]

    def variables(self) -> set[str]:
        """Variable names used by this atom."""
        return {
            term.name
            for term in self.bindings.values()
            if isinstance(term, Variable)
        }


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``head(x, y) :- atom1, atom2, ...`` over named tables.

    ``head`` lists the variables to project; every head variable must
    occur in some atom (safety).
    """

    head: tuple[str, ...]
    atoms: tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError("a conjunctive query needs at least one atom")
        body_variables = set().union(*(atom.variables() for atom in self.atoms))
        unsafe = [v for v in self.head if v not in body_variables]
        if unsafe:
            raise QueryError(f"unsafe head variables: {unsafe}")

    def evaluate(self, relations: Mapping[str, Table]) -> list[dict[str, object]]:
        """All head-variable bindings satisfying the body.

        Left-to-right nested evaluation with early pruning: each atom
        either filters on already-bound variables or extends the binding.
        Results are deduplicated (set semantics, as usual for CQs).
        """
        for atom in self.atoms:
            if atom.relation not in relations:
                raise QueryError(f"unknown relation {atom.relation!r}")

        bindings: list[dict[str, object]] = [{}]
        for atom in self.atoms:
            table = relations[atom.relation]
            extended: list[dict[str, object]] = []
            for binding in bindings:
                for record in table:
                    candidate = dict(binding)
                    ok = True
                    for attribute, term in atom.bindings.items():
                        value = record.raw(attribute)
                        if isinstance(term, Variable):
                            if term.name in candidate:
                                if candidate[term.name] != value:
                                    ok = False
                                    break
                            else:
                                candidate[term.name] = value
                        elif value != term:
                            ok = False
                            break
                    if ok:
                        extended.append(candidate)
            bindings = extended
            if not bindings:
                break

        seen: set[tuple[object, ...]] = set()
        results = []
        for binding in bindings:
            row = {v: binding.get(v) for v in self.head}
            key = tuple(str(row[v]) for v in self.head)
            if key not in seen:
                seen.add(key)
                results.append(row)
        return results

    def count(self, relations: Mapping[str, Table]) -> int:
        """The number of distinct answers."""
        return len(self.evaluate(relations))
