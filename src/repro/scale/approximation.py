"""Sampling-based approximate query answering.

Section 4.3 calls for "static techniques for query approximation (i.e.,
without looking at the data)" citing Barceló, Libkin & Romero [4].  The
static part here is the *plan*: given only the query shape and a sampling
rate, the approximator decides the per-relation Bernoulli rates and the
count-correction factor before touching any rows; evaluation then runs on
the samples.  Benchmarks report the speedup/error trade-off (experiment
E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.errors import QueryError
from repro.model.records import Table
from repro.scale.queries import ConjunctiveQuery

__all__ = ["ApproximateAnswer", "approximate_count", "sample_table"]


@dataclass(frozen=True)
class ApproximateAnswer:
    """An estimated count with the work actually done."""

    estimate: float
    sampled_rows: int
    total_rows: int

    @property
    def work_fraction(self) -> float:
        """Share of the data actually touched."""
        if self.total_rows == 0:
            return 1.0
        return self.sampled_rows / self.total_rows


def sample_table(table: Table, rate: float, rng: random.Random) -> Table:
    """A Bernoulli sample of ``table`` at ``rate``."""
    if not 0.0 < rate <= 1.0:
        raise QueryError("sampling rate must be in (0,1]")
    return Table(
        table.name,
        table.schema,
        [record for record in table.records if rng.random() < rate],
    )


def approximate_count(
    query: ConjunctiveQuery,
    relations: Mapping[str, Table],
    rate: float = 0.1,
    seed: int = 23,
) -> ApproximateAnswer:
    """Estimate the answer count from Bernoulli samples.

    Each of the k distinct relations in the query is sampled at
    ``rate**(1/k)`` so the join survives with probability ``rate`` per
    answer; the observed count is scaled back by ``1/rate``.  The plan —
    rates and scale factor — depends only on the query, never the data
    (the "static" discipline of [4]).

    The estimate is unbiased when each answer tuple is witnessed by one
    row per relation (e.g. the head projects a row-distinct attribute).
    Queries whose answers collapse many rows (low-cardinality projections)
    are over-estimated — distinct-count estimation needs different
    machinery (e.g. sketches) and is out of scope here.
    """
    distinct_relations = sorted({atom.relation for atom in query.atoms})
    k = len(distinct_relations)
    per_relation_rate = rate ** (1.0 / k)
    rng = random.Random(seed)
    sampled: dict[str, Table] = dict(relations)
    sampled_rows = 0
    total_rows = 0
    for name in distinct_relations:
        table = relations[name]
        sample = sample_table(table, per_relation_rate, rng)
        sampled[name] = sample
        sampled_rows += len(sample)
        total_rows += len(table)
    observed = query.count(sampled)
    # Each answer tuple needs all its (multiset of) contributing rows to
    # survive; with one row per relation that is rate overall.
    estimate = observed / rate
    return ApproximateAnswer(estimate, sampled_rows, total_rows)
