"""Scalability substrate: conjunctive queries, sampling approximation,
access-bounded evaluation, partitioned execution (paper Section 4.3)."""

from repro.scale.access import (
    AccessBudgetExceeded,
    AccessConstraint,
    BoundedEvaluator,
)
from repro.scale.approximation import (
    ApproximateAnswer,
    approximate_count,
    sample_table,
)
from repro.scale.partition import hash_partition, map_reduce, partitioned_resolve
from repro.scale.queries import Atom, ConjunctiveQuery, Variable

__all__ = [
    "AccessBudgetExceeded",
    "AccessConstraint",
    "ApproximateAnswer",
    "Atom",
    "BoundedEvaluator",
    "ConjunctiveQuery",
    "Variable",
    "approximate_count",
    "hash_partition",
    "map_reduce",
    "partitioned_resolve",
    "sample_table",
]
