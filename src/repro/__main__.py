"""Command-line demo runner: ``python -m repro [products|locations]``.

Runs the corresponding synthetic world through the autonomic Wrangler and
prints the plan, the wrangled data, and the ground-truth scorecard — the
fastest way to see the whole architecture move.
"""

from __future__ import annotations

import argparse
import datetime
import sys

from repro import DataContext, MemorySource, UserContext, Wrangler
from repro.datagen import (
    LOCATION_SCHEMA,
    TARGET_SCHEMA,
    generate_location_world,
    generate_world,
    location_ontology,
    product_ontology,
)
from repro.evaluation import wrangle_scorecard
from repro.model.annotations import Dimension

TODAY = datetime.date(2016, 3, 15)


def run_products(args: argparse.Namespace) -> int:
    world = generate_world(
        n_products=args.entities, n_sources=args.sources, seed=args.seed
    )
    user = UserContext.precision_first(
        "cli", TARGET_SCHEMA, budget=args.budget
    )
    data = (
        DataContext("products")
        .with_ontology(product_ontology())
        .add_master("catalog", world.ground_truth)
    )
    wrangler = Wrangler(user, data, master_key="catalog",
                        join_attribute="product", today=TODAY)
    for name, rows in world.source_rows.items():
        wrangler.add_source(
            MemorySource(name, rows,
                         cost_per_access=world.specs[name].cost)
        )
    result = wrangler.run()
    print(result.explain())
    print()
    print(result.table.head(args.show).render())
    print()
    scorecard = wrangle_scorecard(result.table, world)
    print("scorecard:", {k: round(v, 3) for k, v in scorecard.items()})
    return 0


def run_locations(args: argparse.Namespace) -> int:
    world = generate_location_world(n_businesses=args.entities, seed=args.seed)
    user = UserContext(
        "cli",
        LOCATION_SCHEMA,
        weights={
            Dimension.ACCURACY: 0.4,
            Dimension.COMPLETENESS: 0.4,
            Dimension.COST: 0.2,
        },
    )
    data = DataContext("locations").with_ontology(location_ontology())
    wrangler = Wrangler(user, data)
    wrangler.add_source(MemorySource("checkins", world.checkin_rows,
                                     cost_per_access=0.5))
    wrangler.add_source(MemorySource("directory", world.directory_rows,
                                     cost_per_access=6.0))
    wrangler.add_source(MemorySource("websites", world.website_rows,
                                     cost_per_access=2.0))
    result = wrangler.run()
    print(result.explain())
    print()
    print(
        result.table.project(
            ["business", "category", "city", "postcode"]
        ).head(args.show).render()
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-aware, pay-as-you-go data wrangling demo "
                    "(Furche et al., EDBT 2016).",
    )
    parser.add_argument("world", choices=("products", "locations"),
                        nargs="?", default="products",
                        help="which synthetic world to wrangle")
    parser.add_argument("--entities", type=int, default=50,
                        help="ground-truth entities to generate")
    parser.add_argument("--sources", type=int, default=6,
                        help="number of sources (products world)")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--budget", type=float, default=60.0,
                        help="access budget (products world)")
    parser.add_argument("--show", type=int, default=8,
                        help="rows of wrangled data to print")
    args = parser.parse_args(argv)
    if args.world == "products":
        return run_products(args)
    return run_locations(args)


if __name__ == "__main__":
    sys.exit(main())
