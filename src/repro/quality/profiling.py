"""Data profiling: per-column statistics feeding the quality analyses."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.model.records import Table
from repro.model.schema import DataType, infer_type

__all__ = ["ColumnProfile", "TableProfile", "profile_table", "profile_column"]


@dataclass(frozen=True)
class ColumnProfile:
    """Descriptive statistics of one column."""

    attribute: str
    total: int
    nulls: int
    distinct: int
    type_counts: dict[DataType, int]
    most_common: tuple[tuple[object, int], ...]
    min_value: object | None
    max_value: object | None
    mean: float | None

    @property
    def null_ratio(self) -> float:
        """Fraction of missing cells."""
        return self.nulls / self.total if self.total else 0.0

    @property
    def distinctness(self) -> float:
        """Distinct values over non-null cells (1.0 = key-like)."""
        populated = self.total - self.nulls
        return self.distinct / populated if populated else 0.0

    @property
    def dominant_type(self) -> DataType:
        """The most frequent inferred type among non-null cells."""
        if not self.type_counts:
            return DataType.STRING
        return max(self.type_counts, key=lambda t: self.type_counts[t])

    @property
    def type_consistency(self) -> float:
        """Share of non-null cells agreeing with the dominant type."""
        populated = sum(self.type_counts.values())
        if populated == 0:
            return 1.0
        return self.type_counts[self.dominant_type] / populated


@dataclass(frozen=True)
class TableProfile:
    """Profiles for every column of a table."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnProfile]

    def column(self, attribute: str) -> ColumnProfile:
        """The profile of one column."""
        return self.columns[attribute]

    def candidate_keys(self, min_distinctness: float = 1.0) -> list[str]:
        """Columns whose distinctness qualifies them as candidate keys."""
        return [
            name
            for name, profile in self.columns.items()
            if profile.nulls == 0
            and profile.total > 0
            and profile.distinctness >= min_distinctness
        ]


def profile_column(table: Table, attribute: str) -> ColumnProfile:
    """Profile one column of ``table``."""
    values = table.column(attribute)
    raws = [v.raw for v in values if not v.is_missing]
    nulls = len(values) - len(raws)
    type_counts: Counter[DataType] = Counter(infer_type(raw) for raw in raws)
    counts = Counter(raws)
    numeric = []
    for raw in raws:
        try:
            if not isinstance(raw, bool):
                numeric.append(float(raw))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
    comparable = [raw for raw in raws if isinstance(raw, (int, float, str))]
    try:
        min_value = min(comparable) if comparable else None
        max_value = max(comparable) if comparable else None
    except TypeError:
        min_value = max_value = None
    return ColumnProfile(
        attribute=attribute,
        total=len(values),
        nulls=nulls,
        distinct=len(counts),
        type_counts=dict(type_counts),
        most_common=tuple(counts.most_common(5)),
        min_value=min_value,
        max_value=max_value,
        mean=(sum(numeric) / len(numeric)) if numeric else None,
    )


def profile_table(table: Table) -> TableProfile:
    """Profile every (non-evaluation) column of ``table``."""
    return TableProfile(
        table.name,
        len(table),
        {
            name: profile_column(table, name)
            for name in table.schema.names
            if not name.startswith("_")
        },
    )
