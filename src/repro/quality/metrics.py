"""Quality metrics: scoring tables on the user context's dimensions.

The Quality box of Figure 1: analyses "may apply to individual data
sources, the results of different extractions and components of relevance
to integration".  :class:`QualityAnalyser` measures a table on the shared
dimensions — completeness, accuracy against master data, timeliness from a
date column, consistency from type agreement and constraint violations,
relevance against the user scope — and writes the findings into the
annotation store so downstream decisions (mapping selection, source
selection, fusion reliabilities) can use them.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.context.data_context import DataContext
from repro.context.user_context import UserContext
from repro.matching.similarity import name_similarity
from repro.model.annotations import AnnotationStore, Dimension, QualityAnnotation
from repro.model.records import Table
from repro.obs.clock import Clock, system_clock
from repro.quality.constraints import Constraint, violations as constraint_violations
from repro.quality.profiling import profile_table

__all__ = ["QualityReport", "QualityAnalyser"]


@dataclass
class QualityReport:
    """Scores per dimension for one table, with supporting detail."""

    target: str
    scores: dict[Dimension, float]
    details: dict[str, object] = field(default_factory=dict)

    def score(self, dimension: Dimension, default: float = 0.5) -> float:
        """The table's score on one dimension."""
        return self.scores.get(dimension, default)

    def summary(self) -> str:
        """One line per dimension."""
        return ", ".join(
            f"{dim.value}={score:.2f}"
            for dim, score in sorted(self.scores.items(), key=lambda kv: kv[0].value)
        )


class QualityAnalyser:
    """Measures tables and records the findings as annotations."""

    def __init__(
        self,
        context: DataContext | None = None,
        annotations: AnnotationStore | None = None,
        today: _dt.date | None = None,
        staleness_horizon_days: int = 30,
        clock: Clock | None = None,
    ) -> None:
        self.context = context
        self.annotations = annotations if annotations is not None else AnnotationStore()
        # Time enters through an explicit, injectable clock: pin `today`
        # directly, or hand in a ManualClock, and every timeliness score
        # is reproducible.  The clock is read once, at the construction
        # boundary.
        self.today = today or (clock or system_clock).current_date()
        self.staleness_horizon_days = staleness_horizon_days

    # -- dimension measurements -----------------------------------------

    def completeness(self, table: Table) -> float:
        """Populated share of schema cells."""
        return table.completeness()

    def accuracy_against_master(
        self, table: Table, master_key: str, join_attribute: str
    ) -> float | None:
        """Exact-match accuracy of overlapping cells against master data.

        Joins on ``join_attribute`` and compares every attribute the two
        schemas share.  Returns ``None`` when the join is empty (no
        evidence, not zero accuracy).
        """
        if self.context is None or master_key not in self.context.master_data:
            return None
        master = self.context.master(master_key)
        if join_attribute not in master.schema or join_attribute not in table.schema:
            return None
        master_by_key = {
            record.raw(join_attribute): record for record in master
        }
        from repro.model.schema import DataType

        shared = [
            name
            for name in table.schema.names
            if name in master.schema and name != join_attribute
            and not name.startswith("_")
            # URLs are per-source addresses, not facts: every honest source
            # "disagrees" with the master on them.
            and table.schema[name].dtype is not DataType.URL
        ]
        checked = 0.0
        correct = 0.0
        for record in table:
            key = record.raw(join_attribute)
            if key not in master_by_key:
                continue
            trusted = master_by_key[key]
            for name in shared:
                value = record.get(name)
                expected = trusted.get(name)
                if value.is_missing or expected.is_missing:
                    continue
                # Required attributes are the payload the user came for
                # (the price, in price intelligence): weight them double.
                attribute = table.schema[name]
                weight = 2.0 if attribute.required else 1.0
                checked += weight
                if str(value.raw) == str(expected.raw):
                    correct += weight
        if checked == 0:
            return None
        return correct / checked

    def timeliness(self, table: Table, date_attribute: str) -> float | None:
        """Freshness of the table from a last-updated column.

        Each record scores ``max(0, 1 - age/horizon)``; records without a
        parsable date score 0.5 (unknown age).  Returns ``None`` when the
        attribute is absent.
        """
        if date_attribute not in table.schema:
            return None
        if not len(table):
            return 1.0
        scores = []
        for value in table.column(date_attribute):
            raw = value.raw
            if isinstance(raw, _dt.datetime):
                raw = raw.date()
            if isinstance(raw, _dt.date):
                age = (self.today - raw).days
                scores.append(max(0.0, 1.0 - age / self.staleness_horizon_days))
            else:
                scores.append(0.5)
        return sum(scores) / len(scores)

    def consistency(
        self, table: Table, constraints: list[Constraint] | None = None
    ) -> float:
        """Type agreement blended with constraint satisfaction."""
        profile = profile_table(table)
        if profile.columns:
            type_score = sum(
                column.type_consistency for column in profile.columns.values()
            ) / len(profile.columns)
        else:
            type_score = 1.0
        if not constraints or not len(table):
            return type_score
        violating = constraint_violations(table, constraints)
        violating_records = {
            record.rid for violation in violating for record in violation.records
        }
        constraint_score = 1.0 - len(violating_records) / len(table)
        return 0.5 * type_score + 0.5 * constraint_score

    def relevance(self, table: Table, user: UserContext) -> float:
        """Share of records inside the user's scope, times schema fit."""
        if len(table):
            in_scope = sum(1 for record in table if user.in_scope(record))
            scope_score = in_scope / len(table)
        else:
            scope_score = 1.0
        target_names = user.target_schema.names
        if target_names:
            fit = sum(
                max(
                    (name_similarity(a, b) for b in table.schema.names),
                    default=0.0,
                )
                for a in target_names
            ) / len(target_names)
        else:
            fit = 1.0
        return 0.7 * scope_score + 0.3 * fit

    # -- the full report -----------------------------------------------------

    def analyse(
        self,
        table: Table,
        user: UserContext | None = None,
        master_key: str | None = None,
        join_attribute: str | None = None,
        date_attribute: str | None = None,
        constraints: list[Constraint] | None = None,
        annotate_as: str | None = None,
    ) -> QualityReport:
        """Measure every applicable dimension and annotate the findings."""
        scores: dict[Dimension, float] = {}
        details: dict[str, object] = {}

        scores[Dimension.COMPLETENESS] = self.completeness(table)
        scores[Dimension.CONSISTENCY] = self.consistency(table, constraints)

        if master_key is not None and join_attribute is not None:
            accuracy = self.accuracy_against_master(
                table, master_key, join_attribute
            )
            if accuracy is not None:
                scores[Dimension.ACCURACY] = accuracy
                details["accuracy_basis"] = f"master:{master_key}"
        if date_attribute is not None:
            timeliness = self.timeliness(table, date_attribute)
            if timeliness is not None:
                scores[Dimension.TIMELINESS] = timeliness
        if user is not None:
            scores[Dimension.RELEVANCE] = self.relevance(table, user)

        target = annotate_as or f"table:{table.name}"
        for dimension, score in scores.items():
            self.annotations.add(
                QualityAnnotation(
                    target, dimension, max(0.0, min(1.0, score)),
                    confidence=0.8, origin="quality-analysis",
                )
            )
        return QualityReport(target, scores, details)
