"""Functional-dependency discovery from data.

Hand-written constraints do not scale to "thousands of sources"
(Section 1); the quality component should *mine* the dependencies the
data already obeys and feed them to violation detection and repair.  This
is a TANE-style level-1/2 discovery: exact and approximate FDs with one-
or two-attribute left-hand sides, scored by the g3 error measure (the
minimum fraction of rows to remove for the FD to hold exactly).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.model.records import Table
from repro.quality.constraints import FunctionalDependency

__all__ = ["DiscoveredFD", "discover_fds"]


@dataclass(frozen=True)
class DiscoveredFD:
    """A mined dependency with its support and error."""

    fd: FunctionalDependency
    support: int  # rows with a fully populated LHS and RHS
    error: float  # g3: min fraction of violating rows

    @property
    def is_exact(self) -> bool:
        """Whether the FD holds with no violations at all."""
        return self.error == 0.0


def _g3_error(
    groups: dict[tuple[object, ...], dict[object, int]], support: int
) -> float:
    """The g3 measure: rows to delete so every group agrees, normalised."""
    if support == 0:
        return 0.0
    keep = sum(max(counts.values()) for counts in groups.values())
    return (support - keep) / support


def discover_fds(
    table: Table,
    max_lhs: int = 2,
    max_error: float = 0.05,
    min_support: int = 5,
    max_distinct_ratio: float = 0.9,
) -> list[DiscoveredFD]:
    """Mine (approximate) FDs with small left-hand sides.

    ``max_error`` admits approximate dependencies (g3 <= max_error), which
    is what dirty data exhibits — an exact-only miner would find nothing
    precisely where repair is needed.  Near-key attributes (distinctness
    above ``max_distinct_ratio``) are skipped as LHS candidates: a key
    trivially determines everything, which is true but useless for repair.
    Trivial, redundant (superset-LHS of an already-found FD with equal or
    worse error) and reverse-of-key dependencies are pruned.
    """
    names = [
        name for name in table.schema.names if not name.startswith("_")
    ]
    if len(table) == 0 or len(names) < 2:
        return []

    columns = {name: table.raw_column(name) for name in names}
    populated = {
        name: sum(1 for value in columns[name] if value is not None)
        for name in names
    }
    distinct = {
        name: len({value for value in columns[name] if value is not None})
        for name in names
    }

    lhs_candidates: list[tuple[str, ...]] = []
    for name in names:
        if populated[name] == 0:
            continue
        if distinct[name] / populated[name] > max_distinct_ratio:
            continue  # near-key: determines everything trivially
        lhs_candidates.append((name,))
    if max_lhs >= 2:
        singles = [lhs[0] for lhs in lhs_candidates]
        for left, right in itertools.combinations(singles, 2):
            lhs_candidates.append((left, right))

    found: list[DiscoveredFD] = []
    exact_pairs: set[tuple[str, str]] = set()
    for lhs in lhs_candidates:
        for rhs in names:
            if rhs in lhs:
                continue
            if len(lhs) == 2 and (
                (lhs[0], rhs) in exact_pairs or (lhs[1], rhs) in exact_pairs
            ):
                # a superset of an exact LHS adds nothing for this RHS
                continue
            groups: dict[tuple[object, ...], dict[object, int]] = defaultdict(
                lambda: defaultdict(int)
            )
            support = 0
            for index in range(len(table)):
                key = tuple(columns[name][index] for name in lhs)
                value = columns[rhs][index]
                if any(part is None for part in key) or value is None:
                    continue
                groups[key][value] += 1
                support += 1
            if support < min_support:
                continue
            error = _g3_error(groups, support)
            if error <= max_error:
                fd = FunctionalDependency(lhs, rhs)
                found.append(DiscoveredFD(fd, support, error))
                if error == 0.0 and len(lhs) == 1:
                    exact_pairs.add((lhs[0], rhs))
    found.sort(key=lambda d: (d.error, -d.support, d.fd.name))
    return found
