"""Cost-based constraint repair by value modification.

After Bohannon, Fan, Flaster & Rastogi (SIGMOD 2005), which the paper cites
as the canonical example of a quality analysis that is "intractable" in
general (Section 4.3): finding a minimum-cost repair is NP-hard, so this is
the standard equivalence-class heuristic — for each violating group, keep
the right-hand-side value with the greatest confidence-weighted support and
modify the rest, iterating to a fixpoint.  The cost of a repair is the sum
of the confidences of the cells it changes (changing a value the system is
sure about is expensive; changing a dubious one is cheap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import RepairError
from repro.model.provenance import Step
from repro.model.records import Table
from repro.quality.constraints import Constraint, violations

__all__ = ["CellRepair", "RepairResult", "repair_table"]


@dataclass(frozen=True)
class CellRepair:
    """One value modification performed by the repair."""

    rid: str
    attribute: str
    old_value: object
    new_value: object
    cost: float


@dataclass
class RepairResult:
    """The repaired table plus the changes and their total cost."""

    table: Table
    repairs: list[CellRepair] = field(default_factory=list)
    rounds: int = 0

    @property
    def total_cost(self) -> float:
        """Confidence-weighted cost of all modifications."""
        return sum(repair.cost for repair in self.repairs)

    @property
    def is_consistent(self) -> bool:
        """Set by :func:`repair_table` when no violations remain."""
        return getattr(self, "_consistent", False)


def repair_table(
    table: Table,
    constraints: Sequence[Constraint],
    max_rounds: int = 10,
) -> RepairResult:
    """Repair ``table`` until ``constraints`` hold (or rounds run out).

    Each round resolves every violating equivalence class independently:
    the surviving right-hand-side value is the one whose supporting cells
    carry the greatest total confidence, and every dissenting cell is
    modified to it (cost = its confidence).  Because later constraints can
    re-violate earlier ones, rounds repeat to a fixpoint; failure to reach
    one within ``max_rounds`` raises — a repair that silently leaves
    violations would poison downstream trust.
    """
    current = Table(table.name, table.schema, list(table.records))
    repairs: list[CellRepair] = []
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        found = violations(current, constraints)
        if not found:
            result = RepairResult(current, repairs, rounds - 1)
            result._consistent = True  # type: ignore[attr-defined]
            return result
        records_by_rid = {record.rid: record for record in current.records}
        for violation in found:
            constraint = violation.constraint
            rhs = constraint.rhs
            target_value = getattr(constraint, "rhs_value", None)
            if target_value is None:
                # Confidence-weighted support per candidate RHS value.
                support: dict[object, float] = {}
                for record in violation.records:
                    record = records_by_rid[record.rid]
                    value = record.get(rhs)
                    if value.is_missing:
                        continue
                    support[value.raw] = support.get(value.raw, 0.0) + value.confidence
                if not support:
                    continue
                target_value = max(support, key=lambda v: support[v])
            for record in violation.records:
                record = records_by_rid[record.rid]
                value = record.get(rhs)
                if value.is_missing or value.raw == target_value:
                    continue
                repaired_value = value.with_raw(
                    target_value, Step.REPAIR, constraint.name
                ).with_confidence(min(value.confidence, 0.7))
                repairs.append(
                    CellRepair(
                        record.rid, rhs, value.raw, target_value, value.confidence
                    )
                )
                records_by_rid[record.rid] = record.with_cell(rhs, repaired_value)
        current = Table(
            current.name,
            current.schema,
            [records_by_rid[record.rid] for record in current.records],
        )
    if violations(current, constraints):
        raise RepairError(
            f"no consistent repair found within {max_rounds} rounds"
        )
    result = RepairResult(current, repairs, rounds)
    result._consistent = True  # type: ignore[attr-defined]
    return result
