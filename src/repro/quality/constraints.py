"""Integrity constraints: functional and conditional functional dependencies.

Section 4.3 points at Bohannon et al.'s cost-based repair of constraint
violations [7]; this module supplies the constraints themselves — FDs
(``postcode -> city``) and CFDs (FDs with a pattern tableau, e.g.
``country='UK' and postcode -> city``) — and the violation detector the
repair module and the consistency metric share.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import RepairError
from repro.model.records import Record, Table

__all__ = ["Constraint", "FunctionalDependency", "ConditionalFD", "Violation", "violations"]


@dataclass(frozen=True)
class Violation:
    """A group of records jointly violating one constraint."""

    constraint: "Constraint"
    records: tuple[Record, ...]
    detail: str


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs``: equal left-hand sides force equal right-hand sides."""

    lhs: tuple[str, ...]
    rhs: str
    name: str = ""

    def __post_init__(self) -> None:
        if not self.lhs:
            raise RepairError("FD left-hand side must be non-empty")
        if self.rhs in self.lhs:
            raise RepairError("FD right-hand side cannot appear on the left")
        if not self.name:
            object.__setattr__(
                self, "name", f"{','.join(self.lhs)}->{self.rhs}"
            )

    def applies_to(self, record: Record) -> bool:
        """FDs apply to every record with a fully populated LHS."""
        return all(not record.get(a).is_missing for a in self.lhs)

    def key_of(self, record: Record) -> tuple[object, ...]:
        """The LHS value tuple of a record."""
        return tuple(record.raw(a) for a in self.lhs)

    def check(self, table: Table) -> list[Violation]:
        """All violating record groups in ``table``."""
        groups: dict[tuple[object, ...], list[Record]] = defaultdict(list)
        for record in table:
            if self.applies_to(record) and not record.get(self.rhs).is_missing:
                groups[self.key_of(record)].append(record)
        found = []
        for key, records in groups.items():
            rhs_values = {record.raw(self.rhs) for record in records}
            if len(rhs_values) > 1:
                found.append(
                    Violation(
                        self,
                        tuple(records),
                        f"{self.name}: lhs={key} has rhs values {sorted(map(str, rhs_values))}",
                    )
                )
        return found


@dataclass(frozen=True)
class ConditionalFD:
    """An FD that holds only where the pattern tableau matches.

    ``pattern`` maps attributes to required constants; records not matching
    the pattern are exempt.  ``rhs_value`` optionally forces a constant on
    the right-hand side (a constant CFD).
    """

    lhs: tuple[str, ...]
    rhs: str
    pattern: Mapping[str, object] = field(default_factory=dict)
    rhs_value: object | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.lhs and not self.pattern:
            raise RepairError("CFD needs a left-hand side or a pattern")
        if not self.name:
            condition = ",".join(f"{k}={v}" for k, v in self.pattern.items())
            object.__setattr__(
                self,
                "name",
                f"[{condition}] {','.join(self.lhs)}->{self.rhs}",
            )

    def applies_to(self, record: Record) -> bool:
        """Whether the pattern tableau matches the record."""
        for attribute, constant in self.pattern.items():
            if record.raw(attribute) != constant:
                return False
        return all(not record.get(a).is_missing for a in self.lhs)

    def key_of(self, record: Record) -> tuple[object, ...]:
        """The LHS value tuple of a record."""
        return tuple(record.raw(a) for a in self.lhs)

    def check(self, table: Table) -> list[Violation]:
        """All violating record groups in ``table``."""
        found: list[Violation] = []
        applicable = [r for r in table if self.applies_to(r)]
        if self.rhs_value is not None:
            bad = tuple(
                record
                for record in applicable
                if not record.get(self.rhs).is_missing
                and record.raw(self.rhs) != self.rhs_value
            )
            if bad:
                found.append(
                    Violation(
                        self,
                        bad,
                        f"{self.name}: expected {self.rhs}={self.rhs_value!r}",
                    )
                )
            return found
        groups: dict[tuple[object, ...], list[Record]] = defaultdict(list)
        for record in applicable:
            if not record.get(self.rhs).is_missing:
                groups[self.key_of(record)].append(record)
        for key, records in groups.items():
            rhs_values = {record.raw(self.rhs) for record in records}
            if len(rhs_values) > 1:
                found.append(
                    Violation(
                        self,
                        tuple(records),
                        f"{self.name}: lhs={key} has rhs values {sorted(map(str, rhs_values))}",
                    )
                )
        return found


Constraint = FunctionalDependency | ConditionalFD


def violations(table: Table, constraints: Sequence[Constraint]) -> list[Violation]:
    """All violations of all constraints in ``table``."""
    found: list[Violation] = []
    for constraint in constraints:
        found.extend(constraint.check(table))
    return found
