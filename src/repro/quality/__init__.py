"""Quality analyses: profiling, dimension metrics, constraints, repair."""

from repro.quality.constraints import (
    ConditionalFD,
    Constraint,
    FunctionalDependency,
    Violation,
    violations,
)
from repro.quality.discovery import DiscoveredFD, discover_fds
from repro.quality.metrics import QualityAnalyser, QualityReport
from repro.quality.profiling import ColumnProfile, TableProfile, profile_table
from repro.quality.repair import CellRepair, RepairResult, repair_table

__all__ = [
    "CellRepair",
    "ColumnProfile",
    "ConditionalFD",
    "DiscoveredFD",
    "Constraint",
    "FunctionalDependency",
    "QualityAnalyser",
    "QualityReport",
    "RepairResult",
    "TableProfile",
    "Violation",
    "discover_fds",
    "profile_table",
    "repair_table",
    "violations",
]
