"""In-memory sources, used by tests, examples, and the synthetic worlds."""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.model.records import Table
from repro.sources.base import Document, DocumentSource, SourceMetadata, StructuredSource

__all__ = ["MemorySource", "MemoryDocumentSource", "VolatileSource"]


class MemorySource(StructuredSource):
    """A structured source backed by rows held in memory."""

    def __init__(
        self,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        cost_per_access: float = 1.0,
        change_rate: float = 0.0,
        domain: str = "",
        cursor: str | None = None,
    ) -> None:
        super().__init__(
            SourceMetadata(
                name,
                kind="memory",
                cost_per_access=cost_per_access,
                change_rate=change_rate,
                domain=domain,
            )
        )
        self._rows = [dict(row) for row in rows]
        self._cursor_attribute = cursor
        self._generation = 0

    def _load(self) -> Table:
        return Table.from_rows(self.name, self._rows, source=self.name)

    def _content_token(self) -> object:
        return self._generation

    def replace_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Swap the backing rows (models source-side updates / Velocity)."""
        self._rows = [dict(row) for row in rows]
        self._generation += 1


class VolatileSource(StructuredSource):
    """A structured source whose contents are produced by a callable on
    every fetch — models high-Velocity sources whose content drifts."""

    def __init__(
        self,
        name: str,
        producer: Callable[[int], Sequence[Mapping[str, Any]]],
        cost_per_access: float = 1.0,
        change_rate: float = 10.0,
        domain: str = "",
    ) -> None:
        super().__init__(
            SourceMetadata(
                name,
                kind="volatile",
                cost_per_access=cost_per_access,
                change_rate=change_rate,
                domain=domain,
            )
        )
        self._producer = producer
        self._fetch_index = 0

    def _load(self) -> Table:
        rows = self._producer(self._fetch_index)
        self._fetch_index += 1
        return Table.from_rows(self.name, [dict(r) for r in rows], source=self.name)


class MemoryDocumentSource(DocumentSource):
    """A document source backed by HTML strings held in memory."""

    def __init__(
        self,
        name: str,
        pages: Sequence[tuple[str, str]],
        cost_per_access: float = 1.0,
        change_rate: float = 0.0,
        domain: str = "",
    ) -> None:
        super().__init__(
            SourceMetadata(
                name,
                kind="web",
                cost_per_access=cost_per_access,
                change_rate=change_rate,
                domain=domain,
            )
        )
        self._pages = list(pages)

    def _load(self) -> list[Document]:
        return [
            Document(url=url, html=html, source=self.name)
            for url, html in self._pages
        ]
