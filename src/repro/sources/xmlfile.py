"""XML feed sources — another face of Variety.

Retailer product feeds are commonly XML (RSS-ish catalog exports); this
source flattens a repeated record element into rows, with nested elements
becoming dotted paths like the JSON source.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any

from repro.errors import SourceError
from repro.model.records import Table
from repro.sources.base import SourceMetadata, StructuredSource
from repro.sources.files import file_token

__all__ = ["XMLSource"]


def _flatten_element(element: ET.Element, prefix: str = "") -> dict[str, Any]:
    row: dict[str, Any] = {}
    for key, value in element.attrib.items():
        row[f"{prefix}@{key}" if prefix else f"@{key}"] = value
    children = list(element)
    if not children:
        text = (element.text or "").strip()
        if prefix:
            row[prefix] = text or None
        return row
    seen: dict[str, int] = {}
    for child in children:
        tag = child.tag
        count = seen.get(tag, 0)
        seen[tag] = count + 1
        path = f"{prefix}.{tag}" if prefix else tag
        if count:
            path = f"{path}.{count}"
        row.update(_flatten_element(child, path))
    return row


class XMLSource(StructuredSource):
    """A structured source reading repeated elements from an XML file.

    ``record_tag`` names the element that delimits one record; every
    occurrence anywhere in the document becomes a row.
    """

    def __init__(
        self,
        name: str,
        path: str | Path,
        record_tag: str,
        cost_per_access: float = 1.0,
        change_rate: float = 0.0,
        domain: str = "",
    ) -> None:
        super().__init__(
            SourceMetadata(
                name,
                kind="xml",
                cost_per_access=cost_per_access,
                change_rate=change_rate,
                domain=domain,
                url=str(path),
            )
        )
        self._path = Path(path)
        self._record_tag = record_tag

    def _content_token(self) -> object:
        return file_token(self._path)

    def _load(self) -> Table:
        if not self._path.exists():
            raise SourceError(f"XML file not found: {self._path}")
        try:
            tree = ET.parse(self._path)
        except ET.ParseError as exc:
            raise SourceError(
                f"XML source {self.name!r} is not well-formed: {exc}"
            ) from exc
        except (OSError, UnicodeDecodeError) as exc:
            raise SourceError(
                f"XML source {self.name!r} could not be read: {exc}"
            ) from exc
        rows = [
            _flatten_element(element)
            for element in tree.getroot().iter(self._record_tag)
        ]
        if not rows:
            raise SourceError(
                f"XML source {self.name!r} has no <{self._record_tag}> records"
            )
        return Table.from_rows(self.name, rows, source=self.name)
