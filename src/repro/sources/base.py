"""Data source abstractions: the left edge of the paper's Figure 1.

Sources are "potentially heterogeneous ... files, databases, documents, web
pages".  Two abstract shapes cover them all:

* :class:`StructuredSource` — yields a :class:`~repro.model.records.Table`
  directly (CSV, JSON, databases, APIs);
* :class:`DocumentSource` — yields :class:`Document` objects (web pages)
  that must pass through the extraction component first.

Every source carries :class:`SourceMetadata` (access cost, change rate,
declared domain) used by source selection, and an access counter so cost
accounting is exact.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SourceError
from repro.model.records import Table

__all__ = ["SourceMetadata", "Document", "DataSource", "StructuredSource", "DocumentSource"]


@dataclass(frozen=True)
class SourceMetadata:
    """Static facts about a source, known before any access.

    ``cost_per_access`` is in the same cost units as the user context's
    budget; ``change_rate`` in expected content changes per day (the
    Velocity knob); ``domain`` is a free-text hint matched against the
    ontology for relevance scoring.
    """

    name: str
    kind: str = "structured"
    cost_per_access: float = 1.0
    change_rate: float = 0.0
    domain: str = ""
    url: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SourceError("source name must be non-empty")
        if self.cost_per_access < 0:
            raise SourceError("cost_per_access must be non-negative")
        if self.change_rate < 0:
            raise SourceError("change_rate must be non-negative")


@dataclass(frozen=True)
class Document:
    """One fetched document (web page) awaiting extraction."""

    url: str
    html: str
    source: str


#: A probe (sample fetch) costs this fraction of a full access.
PROBE_COST_FRACTION = 0.2


class DataSource(abc.ABC):
    """Common behaviour of all sources: metadata plus access accounting."""

    def __init__(self, metadata: SourceMetadata) -> None:
        self.metadata = metadata
        self._accesses = 0.0

    @property
    def name(self) -> str:
        """The source's unique name."""
        return self.metadata.name

    @property
    def accesses(self) -> float:
        """Accumulated accesses (a probe counts fractionally)."""
        return self._accesses

    @property
    def total_cost(self) -> float:
        """Total access cost spent on this source so far."""
        return self._accesses * self.metadata.cost_per_access

    def _record_access(self, fraction: float = 1.0) -> None:
        self._accesses += fraction


class StructuredSource(DataSource):
    """A source that yields relational data directly."""

    def __init__(self, metadata: SourceMetadata) -> None:
        super().__init__(metadata)
        self._size_hint: int | None = None

    @abc.abstractmethod
    def _load(self) -> Table:
        """Produce the source's current table (subclass hook)."""

    def fetch(self) -> Table:
        """Fetch the source's current contents, recording the access."""
        self._record_access()
        table = self._load()
        self._size_hint = len(table)
        if table.name != self.name:
            table = Table(self.name, table.schema, list(table.records))
        return table

    def probe(self, limit: int = 25) -> Table:
        """Fetch a cheap sample (``PROBE_COST_FRACTION`` of a full access).

        Probes are how the planner learns what a source is worth *before*
        committing budget to it — the "Less is More" bootstrap.
        """
        self._record_access(PROBE_COST_FRACTION)
        table = self._load()
        self._size_hint = len(table)
        return Table(self.name, table.schema, list(table.records[:limit]))

    def size_hint(self) -> int:
        """The source's advertised record count (catalogs publish item
        counts; no access cost is charged for reading the banner).

        Memoised per fetch/probe: repeated probes must not silently
        re-read the entire source just to report its size.
        """
        if self._size_hint is None:
            self._size_hint = len(self._load())
        return self._size_hint


class DocumentSource(DataSource):
    """A source that yields documents requiring extraction."""

    @abc.abstractmethod
    def _load(self) -> Sequence[Document]:
        """Produce the source's current documents (subclass hook)."""

    def fetch(self) -> list[Document]:
        """Fetch the source's current documents, recording the access."""
        self._record_access()
        return list(self._load())

    def probe(self, limit: int = 2) -> list[Document]:
        """Fetch a few pages cheaply (see :meth:`StructuredSource.probe`)."""
        self._record_access(PROBE_COST_FRACTION)
        return list(self._load())[:limit]
