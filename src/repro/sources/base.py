"""Data source abstractions: the left edge of the paper's Figure 1.

Sources are "potentially heterogeneous ... files, databases, documents, web
pages".  Two abstract shapes cover them all:

* :class:`StructuredSource` — yields a :class:`~repro.model.records.Table`
  directly (CSV, JSON, databases, APIs);
* :class:`DocumentSource` — yields :class:`Document` objects (web pages)
  that must pass through the extraction component first.

Every source carries :class:`SourceMetadata` (access cost, change rate,
declared domain) used by source selection, and an access counter so cost
accounting is exact.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SourceError
from repro.model.records import Table

__all__ = ["SourceMetadata", "Document", "DataSource", "StructuredSource", "DocumentSource"]


@dataclass(frozen=True)
class SourceMetadata:
    """Static facts about a source, known before any access.

    ``cost_per_access`` is in the same cost units as the user context's
    budget; ``change_rate`` in expected content changes per day (the
    Velocity knob); ``domain`` is a free-text hint matched against the
    ontology for relevance scoring.
    """

    name: str
    kind: str = "structured"
    cost_per_access: float = 1.0
    change_rate: float = 0.0
    domain: str = ""
    url: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SourceError("source name must be non-empty")
        if self.cost_per_access < 0:
            raise SourceError("cost_per_access must be non-negative")
        if self.change_rate < 0:
            raise SourceError("change_rate must be non-negative")


@dataclass(frozen=True)
class Document:
    """One fetched document (web page) awaiting extraction."""

    url: str
    html: str
    source: str


#: A probe (sample fetch) costs this fraction of a full access.
PROBE_COST_FRACTION = 0.2


class DataSource(abc.ABC):
    """Common behaviour of all sources: metadata plus access accounting."""

    def __init__(self, metadata: SourceMetadata) -> None:
        self.metadata = metadata
        self._accesses = 0.0

    @property
    def name(self) -> str:
        """The source's unique name."""
        return self.metadata.name

    @property
    def accesses(self) -> float:
        """Accumulated accesses (a probe counts fractionally)."""
        return self._accesses

    @property
    def total_cost(self) -> float:
        """Total access cost spent on this source so far."""
        return self._accesses * self.metadata.cost_per_access

    def _record_access(self, fraction: float = 1.0) -> None:
        self._accesses += fraction


class StructuredSource(DataSource):
    """A source that yields relational data directly."""

    def __init__(self, metadata: SourceMetadata) -> None:
        super().__init__(metadata)
        self._size_hint: int | None = None
        self._size_token: object = None
        self._cursor_attribute: str | None = None

    @abc.abstractmethod
    def _load(self) -> Table:
        """Produce the source's current table (subclass hook)."""

    def _content_token(self) -> object:
        """A cheap token that changes whenever the backing content may
        have changed (file sources return mtime+size); ``None`` means
        the source cannot tell, and memoised state is kept."""
        return None

    def with_cursor(self, attribute: str) -> "StructuredSource":
        """Declare the monotone cursor attribute enabling delta fetches.

        The attribute's values must only ever grow for rows the source
        appends (sequence numbers, updated-at timestamps); rows edited
        *behind* the cursor are still caught by the watermark
        fingerprint and degrade the next fetch to a full refetch.
        """
        self._cursor_attribute = attribute
        return self

    def delta_cursor(self) -> str | None:
        """The declared cursor attribute, or ``None`` (no delta support)."""
        return self._cursor_attribute

    def supports_delta(self) -> bool:
        """Whether :meth:`fetch_delta` can do better than a full fetch."""
        return self.delta_cursor() is not None

    def _memoise_size(self, count: int) -> None:
        self._size_hint = count
        self._size_token = self._content_token()

    def fetch(self) -> Table:
        """Fetch the source's current contents, recording the access."""
        self._record_access()
        table = self._load()
        self._memoise_size(len(table))
        if table.name != self.name:
            table = Table(self.name, table.schema, list(table.records))
        return table

    def fetch_delta(self, watermark=None):
        """Fetch only what changed since ``watermark``.

        Returns a :class:`~repro.ingest.cursor.DeltaBatch`.  Without a
        watermark or a declared cursor this is a full fetch (full access
        charged, ``table`` populated).  With both, the source is read
        locally and only rows past the watermark cursor are returned,
        charged pro rata with a :data:`~repro.ingest.cursor.
        DELTA_COST_FLOOR` floor; a matching content fingerprint short-
        circuits to ``"unchanged"`` at the floor price.
        """
        from repro.ingest.cursor import (
            DELTA_COST_FLOOR,
            DeltaBatch,
            cursor_after,
            watermark_for,
        )
        from repro.model.workingdata import row_digest

        cursor_attribute = self.delta_cursor()
        if watermark is None or cursor_attribute is None:
            table = self.fetch()
            rows = table.to_rows()
            return DeltaBatch(
                source=self.name,
                mode="full",
                rows=tuple(rows),
                order=tuple(row_digest(row) for row in rows),
                watermark=watermark_for(self.name, rows, cursor_attribute),
                fraction=1.0,
                table=table,
            )
        current = self._load()
        rows = current.to_rows()
        order = tuple(row_digest(row) for row in rows)
        advanced = watermark_for(
            self.name, rows, cursor_attribute, previous=watermark
        )
        if advanced.fingerprint == watermark.fingerprint:
            mode = "unchanged"
            delta_rows: tuple[dict, ...] = ()
            fraction = DELTA_COST_FLOOR
        else:
            mode = "delta"
            delta_rows = tuple(
                row
                for row in rows
                if cursor_after(row.get(cursor_attribute), watermark.cursor)
            )
            fraction = max(
                DELTA_COST_FLOOR, len(delta_rows) / max(1, len(rows))
            )
        self._record_access(fraction)
        self._memoise_size(len(rows))
        return DeltaBatch(
            source=self.name,
            mode=mode,
            rows=delta_rows,
            order=order,
            watermark=advanced,
            fraction=fraction,
        )

    def probe(self, limit: int = 25) -> Table:
        """Fetch a cheap sample (``PROBE_COST_FRACTION`` of a full access).

        Probes are how the planner learns what a source is worth *before*
        committing budget to it — the "Less is More" bootstrap.
        """
        self._record_access(PROBE_COST_FRACTION)
        table = self._load()
        self._memoise_size(len(table))
        return Table(self.name, table.schema, list(table.records[:limit]))

    def size_hint(self) -> int:
        """The source's advertised record count (catalogs publish item
        counts; no access cost is charged for reading the banner).

        Memoised per fetch/probe — repeated probes must not silently
        re-read the entire source just to report its size — but the memo
        is invalidated when :meth:`_content_token` says the backing
        content changed (a stale hint would leak into cost estimates
        across checkpointed runs).
        """
        token = self._content_token()
        if self._size_hint is None or token != self._size_token:
            self._size_hint = len(self._load())
            self._size_token = token
        return self._size_hint


class DocumentSource(DataSource):
    """A source that yields documents requiring extraction."""

    @abc.abstractmethod
    def _load(self) -> Sequence[Document]:
        """Produce the source's current documents (subclass hook)."""

    def fetch(self) -> list[Document]:
        """Fetch the source's current documents, recording the access."""
        self._record_access()
        return list(self._load())

    def probe(self, limit: int = 2) -> list[Document]:
        """Fetch a few pages cheaply (see :meth:`StructuredSource.probe`)."""
        self._record_access(PROBE_COST_FRACTION)
        return list(self._load())[:limit]
