"""File-backed sources: CSV and JSON (the "files" of Figure 1)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import SourceError
from repro.model.records import Table
from repro.sources.base import SourceMetadata, StructuredSource

__all__ = ["CSVSource", "JSONSource", "file_token", "flatten_object"]


def file_token(path: Path) -> tuple[int, int] | None:
    """mtime+size of a backing file; changes when the content may have.

    ``None`` for a missing file — the next ``_load`` raises the real
    :class:`SourceError`, so the token never has to.
    """
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


class CSVSource(StructuredSource):
    """A structured source reading a delimited text file on every fetch."""

    def __init__(
        self,
        name: str,
        path: str | Path,
        delimiter: str = ",",
        cost_per_access: float = 1.0,
        change_rate: float = 0.0,
        domain: str = "",
        cursor: str | None = None,
    ) -> None:
        super().__init__(
            SourceMetadata(
                name,
                kind="csv",
                cost_per_access=cost_per_access,
                change_rate=change_rate,
                domain=domain,
                url=str(path),
            )
        )
        self._path = Path(path)
        self._delimiter = delimiter
        self._cursor_attribute = cursor

    def _content_token(self) -> object:
        return file_token(self._path)

    def _load(self) -> Table:
        if not self._path.exists():
            raise SourceError(f"CSV file not found: {self._path}")
        try:
            with self._path.open(newline="", encoding="utf-8") as handle:
                reader = csv.DictReader(handle, delimiter=self._delimiter)
                rows = [
                    {key: (value if value != "" else None) for key, value in row.items()}
                    for row in reader
                ]
        except UnicodeDecodeError as failure:
            raise SourceError(
                f"CSV source {self.name!r} is not valid UTF-8: {failure}"
            ) from failure
        except OSError as failure:
            raise SourceError(
                f"CSV source {self.name!r} could not be read: {failure}"
            ) from failure
        return Table.from_rows(self.name, rows, source=self.name)


def flatten_object(obj: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten a nested JSON object into dotted-path keys.

    Lists of scalars are joined with ``"; "``; lists of objects are indexed
    (``items.0.price``).  This gives deep-web API payloads a relational
    shape without losing information.
    """
    flat: dict[str, Any] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_object(value, path))
    elif isinstance(obj, list):
        if all(not isinstance(item, (dict, list)) for item in obj):
            flat[prefix] = "; ".join(str(item) for item in obj)
        else:
            for index, item in enumerate(obj):
                flat.update(flatten_object(item, f"{prefix}.{index}"))
    else:
        flat[prefix or "value"] = obj
    return flat


class JSONSource(StructuredSource):
    """A structured source reading a JSON file holding a list of objects."""

    def __init__(
        self,
        name: str,
        path: str | Path,
        records_key: str | None = None,
        cost_per_access: float = 1.0,
        change_rate: float = 0.0,
        domain: str = "",
        cursor: str | None = None,
    ) -> None:
        super().__init__(
            SourceMetadata(
                name,
                kind="json",
                cost_per_access=cost_per_access,
                change_rate=change_rate,
                domain=domain,
                url=str(path),
            )
        )
        self._path = Path(path)
        self._records_key = records_key
        self._cursor_attribute = cursor

    def _content_token(self) -> object:
        return file_token(self._path)

    def _load(self) -> Table:
        if not self._path.exists():
            raise SourceError(f"JSON file not found: {self._path}")
        try:
            with self._path.open(encoding="utf-8") as handle:
                payload = json.load(handle)
        except UnicodeDecodeError as failure:
            raise SourceError(
                f"JSON source {self.name!r} is not valid UTF-8: {failure}"
            ) from failure
        except json.JSONDecodeError as failure:
            raise SourceError(
                f"JSON source {self.name!r} is malformed: {failure}"
            ) from failure
        except OSError as failure:
            raise SourceError(
                f"JSON source {self.name!r} could not be read: {failure}"
            ) from failure
        if self._records_key is not None:
            if not isinstance(payload, dict) or self._records_key not in payload:
                raise SourceError(
                    f"JSON file {self._path} has no key {self._records_key!r}"
                )
            payload = payload[self._records_key]
        if not isinstance(payload, list):
            raise SourceError(
                f"JSON source {self.name!r} expects a list of objects"
            )
        rows = [flatten_object(item) for item in payload]
        return Table.from_rows(self.name, rows, source=self.name)
