"""Data sources: files, in-memory tables, and document (web) sources."""

from repro.sources.base import (
    DataSource,
    Document,
    DocumentSource,
    SourceMetadata,
    StructuredSource,
)
from repro.sources.files import CSVSource, JSONSource, flatten_object
from repro.sources.memory import MemoryDocumentSource, MemorySource, VolatileSource
from repro.sources.registry import SourceRegistry
from repro.sources.xmlfile import XMLSource

__all__ = [
    "CSVSource",
    "DataSource",
    "Document",
    "DocumentSource",
    "JSONSource",
    "MemoryDocumentSource",
    "MemorySource",
    "SourceMetadata",
    "SourceRegistry",
    "StructuredSource",
    "VolatileSource",
    "XMLSource",
    "flatten_object",
]
