"""The source registry: the wrangler's catalog of available sources.

Volume, in this paper, is "scale either in terms of the size or number of
data sources" — so sources are first-class citizens with per-source
reliability posteriors (updated by feedback and quality analyses) and cost
accounting against the user context's budget.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SourceError
from repro.model.uncertainty import BetaReliability
from repro.sources.base import DataSource, DocumentSource, StructuredSource

__all__ = ["SourceRegistry"]


class SourceRegistry:
    """A named collection of sources with reliability and cost tracking."""

    def __init__(self) -> None:
        self._sources: dict[str, DataSource] = {}
        self._reliability: dict[str, BetaReliability] = {}

    def register(self, source: DataSource) -> DataSource:
        """Add a source; names must be unique across the registry."""
        if source.name in self._sources:
            raise SourceError(f"source {source.name!r} already registered")
        self._sources[source.name] = source
        self._reliability[source.name] = BetaReliability(2.0, 1.0)
        return source

    def replace(self, source: DataSource) -> DataSource:
        """Swap the source registered under ``source.name`` for ``source``.

        The reliability posterior carries over — wrapping a source (e.g.
        in a resilient wrapper) must not reset what feedback has learned
        about it.
        """
        if source.name not in self._sources:
            raise SourceError(f"no source registered under {source.name!r}")
        self._sources[source.name] = source
        return source

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, name: object) -> bool:
        return name in self._sources

    def __iter__(self) -> Iterator[DataSource]:
        return iter(self._sources.values())

    def get(self, name: str) -> DataSource:
        """The source registered under ``name``."""
        if name not in self._sources:
            raise SourceError(f"no source registered under {name!r}")
        return self._sources[name]

    def names(self) -> list[str]:
        """All registered source names, sorted."""
        return sorted(self._sources)

    def structured(self) -> list[StructuredSource]:
        """All registered structured sources."""
        return [
            source
            for source in self._sources.values()
            if isinstance(source, StructuredSource)
        ]

    def documents(self) -> list[DocumentSource]:
        """All registered document sources."""
        return [
            source
            for source in self._sources.values()
            if isinstance(source, DocumentSource)
        ]

    # -- reliability -------------------------------------------------------

    def reliability(self, name: str) -> BetaReliability:
        """The Beta-posterior reliability of source ``name``."""
        if name not in self._reliability:
            raise SourceError(f"no source registered under {name!r}")
        return self._reliability[name]

    def observe(self, name: str, success: bool, weight: float = 1.0) -> None:
        """Fold one correctness observation into a source's reliability."""
        self.reliability(name).update(success, weight)

    def reliability_scores(self) -> dict[str, float]:
        """Point reliability estimates for every source."""
        return {
            name: posterior.mean
            for name, posterior in self._reliability.items()
        }

    # -- accounting ---------------------------------------------------------

    def total_cost(self) -> float:
        """Total access cost spent across all sources."""
        return sum(source.total_cost for source in self._sources.values())

    def cost_of(self, names: list[str]) -> float:
        """Projected cost of accessing each of ``names`` once."""
        return sum(self.get(name).metadata.cost_per_access for name in names)
