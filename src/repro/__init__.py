"""repro — context-aware, pay-as-you-go data wrangling.

A full reproduction of the system envisioned in:

    Furche, Gottlob, Libkin, Orsi, Paton.
    *Data Wrangling for Big Data: Challenges and Opportunities.*
    EDBT 2016.

The public API is re-exported here; see ``examples/quickstart.py`` for a
guided tour and ``DESIGN.md`` for the architecture.
"""

from repro.baselines import StaticETL
from repro.context import AHPComparison, DataContext, Ontology, UserContext
from repro.core import AutonomicPlanner, Dataflow, WranglePlan, WrangleResult, Wrangler
from repro.feedback import (
    DuplicateFeedback,
    ExtractionFeedback,
    FeedbackStore,
    MatchFeedback,
    RelevanceFeedback,
    ValueFeedback,
)
from repro.model import (
    DataType,
    Dimension,
    Provenance,
    Record,
    Schema,
    Table,
    Value,
    WorkingData,
)
from repro.resilience import (
    ChaosSource,
    FaultPlan,
    RetryPolicy,
    resilient,
)
from repro.sources import (
    CSVSource,
    JSONSource,
    MemoryDocumentSource,
    MemorySource,
    SourceRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "AHPComparison",
    "AutonomicPlanner",
    "CSVSource",
    "ChaosSource",
    "DataContext",
    "DataType",
    "Dataflow",
    "Dimension",
    "DuplicateFeedback",
    "ExtractionFeedback",
    "FaultPlan",
    "FeedbackStore",
    "JSONSource",
    "MatchFeedback",
    "MemoryDocumentSource",
    "MemorySource",
    "Ontology",
    "Provenance",
    "Record",
    "RelevanceFeedback",
    "RetryPolicy",
    "Schema",
    "SourceRegistry",
    "StaticETL",
    "Table",
    "UserContext",
    "Value",
    "ValueFeedback",
    "WorkingData",
    "WranglePlan",
    "WrangleResult",
    "Wrangler",
    "__version__",
    "resilient",
]
