"""Exception hierarchy for the :mod:`repro` data wrangling framework.

Every error raised by the library derives from :class:`WranglingError`, so
callers can catch a single base class at pipeline boundaries while the
library itself raises precise subclasses.
"""

from __future__ import annotations


class WranglingError(Exception):
    """Base class for all errors raised by the repro framework."""


class SchemaError(WranglingError):
    """A schema is malformed, or an attribute reference does not resolve."""


class TypeInferenceError(WranglingError):
    """A value could not be coerced to its declared data type."""


class SourceError(WranglingError):
    """A data source could not be read, parsed, or registered.

    Base of the acquisition failure taxonomy: a plain ``SourceError`` is
    *permanent* (retrying the same call cannot help — missing file,
    malformed payload, bad configuration); :class:`TransientSourceError`
    marks the retryable subset.
    """


class TransientSourceError(SourceError):
    """A source failed in a way that may succeed on retry.

    Timeouts, dropped connections, rate limits, momentary outages: the
    resilience layer (:mod:`repro.resilience`) retries these under its
    policy, while permanent :class:`SourceError` failures fail fast.
    """


class CircuitOpenError(TransientSourceError):
    """A source's circuit breaker is open: the call was never attempted.

    Transient by nature — the breaker re-admits traffic (half-open) after
    its clock-based cooldown elapses.
    """


class DeadlineExceededError(WranglingError):
    """A per-fetch or per-run time budget ran out before the work finished."""


class DegradedRunError(WranglingError):
    """Too few sources survived acquisition to honour the configured quorum.

    Carries the names of the sources that did not survive, so callers can
    report exactly what was lost.
    """

    def __init__(self, message: str, dead: tuple = ()) -> None:
        super().__init__(message)
        self.dead = tuple(dead)


class ExtractionError(WranglingError):
    """Wrapper induction or application failed on a document."""


class MatchingError(WranglingError):
    """Schema matching was asked to relate incompatible inputs."""


class MappingError(WranglingError):
    """A mapping is inapplicable to the table it was asked to transform."""


class ResolutionError(WranglingError):
    """Entity resolution received inconsistent configuration or input."""


class FusionError(WranglingError):
    """Data fusion could not reconcile conflicting values."""


class FeedbackError(WranglingError):
    """A feedback item is malformed or targets an unknown artifact."""


class ContextError(WranglingError):
    """The user or data context is inconsistent (e.g. bad AHP matrix)."""


class PlanningError(WranglingError):
    """The autonomic planner could not compose a pipeline."""


class DataflowError(WranglingError):
    """The incremental dataflow graph is malformed (cycles, missing nodes)."""


class QueryError(WranglingError):
    """A conjunctive query is malformed or references unknown relations."""


class AnalysisError(WranglingError):
    """The static-analysis tooling was misused (bad path, unknown rule)."""


class TelemetryError(WranglingError):
    """The observability layer was misused (bad metric kind, clock abuse)."""


class StaleValueError(DataflowError):
    """A dataflow node's memoised value was read while the node is dirty."""


class PlanValidationError(PlanningError):
    """Static plan validation found error-severity defects before execution.

    Subclasses :class:`PlanningError` so existing callers that guard the
    planning boundary keep working; carries the offending diagnostics.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class RepairError(WranglingError):
    """Constraint repair could not produce a consistent instance."""


class CheckpointError(WranglingError):
    """Durable ingestion state could not be written, read, or verified.

    Raised by :mod:`repro.ingest` when a journal or snapshot fails its
    integrity check (checksum mismatch, truncated JSON) or when a
    snapshot id resolves to nothing.  Corrupted files are quarantined
    rather than trusted — see ``docs/INCREMENTAL.md``.
    """


class InjectedCrashError(Exception):
    """A scripted process death from the chaos harness.

    Deliberately **not** a :class:`WranglingError`: a crash must escape
    every graceful-degradation handler (``_acquire`` catches
    ``WranglingError``, the resilience engine retries ``WranglingError``
    and ``OSError``) exactly as ``kill -9`` would.  Only the chaos test
    harness raises and catches this.
    """


class ParallelSafetyError(WranglingError):
    """A strict consumer refused to fan out an uncertified callable.

    Raised by ``map_reduce(strict=True)`` / ``partitioned_resolve(
    strict=True)`` when a map- or reduce-side callable's
    :class:`~repro.analysis.parallel.ParallelCertificate` says fanning it
    out would race (see rules ``PX001``–``PX008``).  Carries the
    certificate so callers can report the exact evidence.
    """

    def __init__(self, message: str, certificate=None) -> None:
        super().__init__(message)
        self.certificate = certificate
