"""Reporters shared by the plan validator and the framework linter.

Two formats: a human text report (one diagnostic per line plus a summary)
and a machine JSON report (what CI consumes).  Reporters are pure
functions from diagnostics to a string — callers own all I/O.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    sort_diagnostics,
)

__all__ = ["render_text", "render_json", "render"]


def render_text(
    diagnostics: Sequence[Diagnostic], checked_files: int = 0
) -> str:
    """The human-readable report: findings then a severity summary."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diagnostic.render() for diagnostic in ordered]
    counts = count_by_severity(ordered)
    summary = ", ".join(
        f"{counts[severity]} {severity.value}"
        for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)
    )
    scope = f" across {checked_files} files" if checked_files else ""
    if not ordered:
        lines.append(f"clean: no findings{scope}")
    else:
        lines.append(f"found {len(ordered)} ({summary}){scope}")
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic], checked_files: int = 0
) -> str:
    """The machine-readable report (stable key order, sorted findings)."""
    ordered = sort_diagnostics(diagnostics)
    counts = count_by_severity(ordered)
    payload = {
        "diagnostics": [diagnostic.to_dict() for diagnostic in ordered],
        "summary": {
            "total": len(ordered),
            "errors": counts[Severity.ERROR],
            "warnings": counts[Severity.WARNING],
            "infos": counts[Severity.INFO],
            "checked_files": checked_files,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_FORMATS = {"text": render_text, "json": render_json}


def render(
    diagnostics: Sequence[Diagnostic],
    fmt: str = "text",
    checked_files: int = 0,
) -> str:
    """Render with the named format (``"text"`` or ``"json"``)."""
    if fmt not in _FORMATS:
        raise ValueError(
            f"unknown report format {fmt!r}; expected one of {sorted(_FORMATS)}"
        )
    return _FORMATS[fmt](diagnostics, checked_files=checked_files)
