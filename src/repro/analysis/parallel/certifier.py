"""Static partitionability and race certification for node callables.

The purity analyser answers "may the engine replay a memoised value?";
this module answers the second half of the fan-out contract: "may the
scheduler run this callable concurrently, and at what granularity?".
Every verdict is a :class:`ParallelCertificate` carrying one of four
levels, ordered from most to least parallelisable:

* **ROW_LOCAL** — each row (or argument) can be processed independently
  by any worker in any order: free fan-out.
* **PARTITION_LOCAL** — invocations are independent, but one invocation
  must see its whole partition in order (cross-row accumulators,
  order-sensitive iteration): fan out per partition, never per row.
* **GLOBAL** — must run in the single coordinating process (reads
  shared mutable state, writes sanctioned wrangler state through
  ``self``, or shows non-associativity as a reducer).
* **UNSAFE** — races with itself or the coordinator (captured-state
  mutation, module-global writes, shared RNG, unpicklable captures):
  never fan out; strict consumers refuse it outright.

Like the purity analyser it subclasses, the certifier never executes
the callable: it parses the defining source (cached per path), locates
the function's AST via its code object, resolves ``self`` from the
closure, and follows ``self.<method>`` calls one hop.  The only runtime
inspection is of closure *cells* — their contents are type-checked for
process-pool shippability (PX007) without being invoked.

Mutation of the wrangler's own state through ``self`` is sanctioned
exactly as in the purity analyser — the blackboard is the coordinator's
versioned state — but it pins the callable to **GLOBAL**: the node is
correct, it just runs where that state lives.
"""

from __future__ import annotations

import ast
import enum
import inspect
import io
import itertools
import random
import re
import threading
import types
from dataclasses import dataclass, field
from types import CodeType, FunctionType, ModuleType
from typing import Any, Callable, Iterable, Mapping

from repro.analysis.diagnostics import Severity
from repro.analysis.parallel.rules import PARALLEL_RULES
from repro.analysis.typecheck.purity import PurityAnalyser
from repro.errors import ParallelSafetyError

__all__ = [
    "ParallelSafety",
    "ParallelFinding",
    "ParallelCertificate",
    "ParallelAnalyser",
    "certify_parallel",
    "certify_dataflow_parallel",
    "ensure_certified",
]


class ParallelSafety(enum.Enum):
    """How far a callable may be fanned out (higher rank = further)."""

    ROW_LOCAL = "row_local"
    PARTITION_LOCAL = "partition_local"
    GLOBAL = "global"
    UNSAFE = "unsafe"

    @property
    def rank(self) -> int:
        """Numeric parallelisability (higher is safer to fan out)."""
        return {
            "unsafe": 0, "global": 1, "partition_local": 2, "row_local": 3,
        }[self.value]

    @property
    def fan_out_safe(self) -> bool:
        """Whether per-partition fan-out is sound at this level."""
        return self.rank >= ParallelSafety.PARTITION_LOCAL.rank


def _worse(a: ParallelSafety, b: ParallelSafety) -> ParallelSafety:
    return a if a.rank <= b.rank else b


#: The level each rule demotes a callable to when it fires.
_DEMOTION: Mapping[str, ParallelSafety] = {
    "PX001": ParallelSafety.UNSAFE,
    "PX002": ParallelSafety.UNSAFE,
    "PX003": ParallelSafety.GLOBAL,
    "PX004": ParallelSafety.PARTITION_LOCAL,
    "PX005": ParallelSafety.PARTITION_LOCAL,
    "PX006": ParallelSafety.UNSAFE,
    "PX007": ParallelSafety.UNSAFE,
    "PX008": ParallelSafety.GLOBAL,
}


@dataclass(frozen=True)
class ParallelFinding:
    """One rule hit inside a certified callable."""

    rule: str
    message: str
    severity: Severity

    def render(self) -> str:
        return f"{self.rule}: {self.message}"


@dataclass(frozen=True)
class ParallelCertificate:
    """The fan-out verdict (and its evidence) for one callable."""

    level: ParallelSafety
    findings: tuple[ParallelFinding, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def fan_out_safe(self) -> bool:
        return self.level.fan_out_safe

    def render(self) -> str:
        details = [f.render() for f in self.findings] + list(self.notes)
        if not details:
            return self.level.value
        return f"{self.level.value}: " + "; ".join(details)

    def to_dict(self) -> dict[str, object]:
        return {
            "level": self.level.value,
            "fan_out_safe": self.fan_out_safe,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity.value,
                    "message": f.message,
                }
                for f in self.findings
            ],
            "notes": list(self.notes),
        }


_ROW_LOCAL = ParallelCertificate(ParallelSafety.ROW_LOCAL)

#: Builtins known pure and picklable-by-reference: certified ROW_LOCAL so
#: ``map_reduce(table, n, len, sum)`` keeps working under strict mode.
_SAFE_BUILTINS = frozenset(
    {len, sum, min, max, sorted, any, all, abs, round, repr,
     tuple, list, set, dict, frozenset, str, int, float, bool}
)

#: Captured values a process pool cannot ship to a worker.
_UNPICKLABLE_TYPES: tuple[type, ...] = (
    types.GeneratorType,
    types.CoroutineType,
    types.AsyncGeneratorType,
    types.FrameType,
    types.TracebackType,
    io.IOBase,
    type(threading.Lock()),
    type(threading.RLock()),
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "clear", "pop", "popitem",
     "update", "add", "discard", "setdefault", "sort", "reverse", "put",
     "write", "writelines", "push", "send", "seed", "shuffle"}
)

#: Module-level container types whose ambient read pins a node GLOBAL.
_MUTABLE_CONTAINERS = (list, dict, set, bytearray)

#: ALL_CAPS module globals are constants by convention (lookup tables,
#: registries frozen at import time): reading one is not a PX003 race.
#: Writing one still is — PX002 checks values, not names.
_CONSTANT_NAME_RE = re.compile(r"_*[A-Z][A-Z0-9_]*\Z")

#: Operators whose reduce-side use hints non-associativity.
_NON_ASSOCIATIVE_OPS: Mapping[type, str] = {
    ast.Sub: "-", ast.Div: "/", ast.FloorDiv: "//", ast.Pow: "**",
}

_SANCTIONED_SELF_NOTE = (
    "writes wrangler state through self (sanctioned: the blackboard is "
    "coordinator state, so the node runs where that state lives)"
)


def _finding(rule: str, message: str, severity: Severity | None = None
             ) -> ParallelFinding:
    return ParallelFinding(
        rule, message, severity or PARALLEL_RULES[rule].severity
    )


@dataclass
class _CertScan:
    """Mutable state for one certification walk."""

    findings: list[ParallelFinding] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    self_write: bool = False
    visited: set[CodeType] = field(default_factory=set)

    def hit(self, rule: str, message: str,
            severity: Severity | None = None) -> None:
        self.findings.append(_finding(rule, message, severity))


def _param_names(args: ast.arguments) -> set[str]:
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` a ``a.b[c].d`` access chain hangs off, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class ParallelAnalyser(PurityAnalyser):
    """Issue :class:`ParallelCertificate`\\ s without executing callables.

    Shares the purity analyser's AST cache, source location, ``self``
    resolution, and unwrap machinery; adds its own certificate cache
    keyed ``(code, self type, role)``.  The ``role`` distinguishes how
    the callable will be fanned out:

    * ``"node"`` / ``"map"`` — runs per row or per partition; must be at
      least PARTITION_LOCAL for strict consumers;
    * ``"reduce"`` — runs once over the partials in the coordinator;
      additionally screened for non-associativity hints (PX008), and
      strict consumers refuse only UNSAFE.
    """

    def __init__(self) -> None:
        super().__init__()
        self._certificates: dict[
            tuple[CodeType, type | None, str], ParallelCertificate
        ] = {}

    # -- entry point -----------------------------------------------------

    def certify(
        self, fn: Callable[..., Any], role: str = "node"
    ) -> ParallelCertificate:
        """The parallel-safety certificate for ``fn`` in ``role``."""
        fn = self._unwrap(fn)
        code = getattr(fn, "__code__", None)
        if not isinstance(code, CodeType):
            if fn in _SAFE_BUILTINS:
                return ParallelCertificate(
                    ParallelSafety.ROW_LOCAL,
                    notes=("known-pure builtin: fans out freely",),
                )
            name = getattr(fn, "__name__", None) or repr(type(fn).__name__)
            return ParallelCertificate(
                ParallelSafety.UNSAFE,
                (_finding(
                    "PX007",
                    f"no Python code object for {name!r} (builtin or C "
                    "callable): no certificate can be issued",
                    Severity.WARNING,
                ),),
            )
        self_obj = self._resolve_self(fn)
        key = (code, type(self_obj) if self_obj is not None else None, role)
        cached = self._certificates.get(key)
        if cached is not None:
            return cached
        certificate = self._certify_code(fn, code, self_obj, role)
        self._certificates[key] = certificate
        return certificate

    # -- certification ---------------------------------------------------

    def _certify_code(
        self,
        fn: Callable[..., Any],
        code: CodeType,
        self_obj: Any,
        role: str,
    ) -> ParallelCertificate:
        node = self._locate(code)
        if node is None:
            return ParallelCertificate(
                ParallelSafety.UNSAFE,
                (_finding(
                    "PX007",
                    f"cannot locate source of {code.co_name!r}: no "
                    "certificate can be issued",
                    Severity.WARNING,
                ),),
            )
        scan = _CertScan()
        scan.visited.add(code)
        self._check_closure(fn, code, scan)
        fn_globals = getattr(fn, "__globals__", {}) or {}
        freevars = frozenset(code.co_freevars) - {"self"}
        self._scan_function(
            node, fn_globals, self_obj, freevars, role, scan, self.max_hops
        )
        findings = tuple(dict.fromkeys(scan.findings))
        notes = list(dict.fromkeys(scan.notes))
        level = ParallelSafety.ROW_LOCAL
        for finding in findings:
            level = _worse(level, _DEMOTION[finding.rule])
        if scan.self_write:
            notes.append(_SANCTIONED_SELF_NOTE)
            level = _worse(level, ParallelSafety.GLOBAL)
        return ParallelCertificate(level, findings, tuple(notes))

    @staticmethod
    def _check_closure(
        fn: Callable[..., Any], code: CodeType, scan: _CertScan
    ) -> None:
        """PX007: captured values a process pool cannot pickle across."""
        closure = getattr(fn, "__closure__", None) or ()
        for name, cell in zip(code.co_freevars, closure):
            if name == "self":
                continue  # sanctioned: the node runs with the coordinator
            try:
                value = cell.cell_contents
            except ValueError:
                continue  # empty cell
            if isinstance(value, _UNPICKLABLE_TYPES):
                scan.hit(
                    "PX007",
                    f"captures unpicklable {type(value).__name__} in "
                    f"{name!r}: cannot ship to a worker process",
                )

    # -- the walk ---------------------------------------------------------

    def _scan_function(
        self,
        fnnode: ast.AST,
        fn_globals: dict[str, Any],
        self_obj: Any,
        freevars: frozenset[str],
        role: str,
        scan: _CertScan,
        hops: int,
    ) -> None:
        local_names, global_decls = self._binding_sets(fnnode)
        mutated_globals: set[str] = set()
        global_reads: list[str] = []

        def classify(name: str | None) -> str:
            if name is None:
                return "unknown"
            if name == "self":
                return "self"
            if name in local_names:
                return "local"
            if name in freevars:
                return "captured"
            if name in fn_globals:
                return "global"
            return "unknown"

        def check_target(target: ast.AST, augmented: bool,
                         depth: int) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    check_target(element, augmented, depth)
                return
            if isinstance(target, ast.Name):
                if augmented and target.id in local_names and depth > 0:
                    scan.hit(
                        "PX004",
                        f"accumulates into {target.id!r} across loop "
                        "iterations",
                    )
                return
            root = _root_name(target)
            kind = classify(root)
            if kind == "self":
                scan.self_write = True
            elif kind == "captured":
                scan.hit(
                    "PX001",
                    f"mutates object captured from the enclosing scope "
                    f"via {root!r}",
                )
            elif kind == "global":
                resolved = fn_globals.get(root)
                what = (
                    f"assigns attribute of module {root!r}"
                    if isinstance(resolved, ModuleType)
                    else f"mutates module-global object {root!r}"
                )
                scan.hit("PX002", what)
                mutated_globals.add(root)
            elif kind == "local" and augmented and depth > 0:
                scan.hit(
                    "PX004",
                    f"accumulates into {root!r} across loop iterations",
                )

        def check_call(node: ast.Call, depth: int) -> None:
            self._check_zip_window(node, scan)
            func = node.func
            if isinstance(func, ast.Name):
                resolved = fn_globals.get(func.id)
                if self._is_shared_rng_fn(resolved):
                    scan.hit(
                        "PX006",
                        f"calls shared module-level RNG via {func.id}()",
                    )
                elif resolved is itertools.accumulate:
                    scan.hit(
                        "PX005",
                        "uses itertools.accumulate (result depends on "
                        "iteration order)",
                    )
                elif isinstance(resolved, FunctionType) and hops > 0:
                    module_name = getattr(resolved, "__module__", "") or ""
                    if module_name.startswith("repro"):
                        self._follow_parallel(
                            resolved, self_obj, role, scan, hops - 1
                        )
                return
            if not isinstance(func, ast.Attribute):
                return
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                if scan.self_write is False and func.attr in _MUTATORS:
                    # self.<mutator>(...) is a direct self-state write.
                    scan.self_write = True
                if self_obj is not None and hops > 0:
                    method = inspect.getattr_static(
                        type(self_obj), func.attr, None
                    )
                    if isinstance(method, FunctionType):
                        self._follow_parallel(
                            method, self_obj, role, scan, hops - 1
                        )
                return
            root = _root_name(func)
            kind = classify(root)
            resolved = fn_globals.get(root) if kind == "global" else None
            module_root = self._module_root(resolved)
            if module_root == "random":
                if func.attr not in {"Random", "SystemRandom"}:
                    scan.hit(
                        "PX006",
                        f"calls shared module-level RNG "
                        f"{root}.{func.attr}()",
                    )
                return
            if module_root == "secrets":
                scan.hit(
                    "PX006",
                    f"draws ambient randomness via {root}.{func.attr}()",
                )
                return
            if module_root == "itertools" and func.attr == "accumulate":
                scan.hit(
                    "PX005",
                    "uses itertools.accumulate (result depends on "
                    "iteration order)",
                )
                return
            if func.attr in _MUTATORS:
                # A mutating method on something the chain hangs off:
                # self.* chains were handled above.
                chain_root = _root_name(base)
                if chain_root == "self":
                    scan.self_write = True
                elif classify(chain_root) == "captured":
                    scan.hit(
                        "PX001",
                        f"calls mutating method "
                        f"{chain_root}.{func.attr}() on a captured object",
                    )
                elif classify(chain_root) == "global" and not isinstance(
                    fn_globals.get(chain_root), ModuleType
                ):
                    scan.hit(
                        "PX002",
                        f"calls mutating method "
                        f"{chain_root}.{func.attr}() on a module-global "
                        "object",
                    )
                    mutated_globals.add(chain_root)

        def check_subscript(node: ast.Subscript) -> None:
            index = node.slice
            if (
                isinstance(index, ast.BinOp)
                and isinstance(index.op, (ast.Add, ast.Sub))
                and isinstance(index.left, ast.Name)
                and isinstance(index.right, ast.Constant)
                and isinstance(index.right.value, int)
            ):
                op = "+" if isinstance(index.op, ast.Add) else "-"
                scan.hit(
                    "PX005",
                    f"reads an order-offset index "
                    f"[{index.left.id}{op}{index.right.value}] (depends "
                    "on row order)",
                )
            if (
                role == "reduce"
                and isinstance(node.value, ast.Name)
                and classify(node.value.id) == "local"
                and isinstance(index, ast.Constant)
                and isinstance(index.value, int)
            ):
                scan.hit(
                    "PX008",
                    f"special-cases partial "
                    f"{node.value.id}[{index.value}] by position "
                    "(assumes one fixed combine order)",
                )

        def visit(node: ast.AST, depth: int) -> None:
            if isinstance(node, ast.Global):
                scan.hit(
                    "PX002",
                    f"declares global {', '.join(node.names)}",
                )
            elif isinstance(node, ast.Nonlocal):
                scan.hit(
                    "PX001",
                    f"rebinds captured variable(s) "
                    f"{', '.join(node.names)} via nonlocal",
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    check_target(target, augmented=False, depth=depth)
            elif isinstance(node, ast.AugAssign):
                check_target(node.target, augmented=True, depth=depth)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                check_target(node.target, augmented=False, depth=depth)
            elif isinstance(node, ast.Call):
                check_call(node, depth)
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                check_subscript(node)
            elif isinstance(node, ast.BinOp) and role == "reduce":
                op_text = _NON_ASSOCIATIVE_OPS.get(type(node.op))
                if op_text is not None:
                    scan.hit(
                        "PX008",
                        f"combines values with non-associative operator "
                        f"{op_text!r} (cannot be tree-reduced)",
                    )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if (
                    classify(node.id) == "global"
                    and isinstance(
                        fn_globals.get(node.id), _MUTABLE_CONTAINERS
                    )
                    and _CONSTANT_NAME_RE.match(node.id) is None
                ):
                    global_reads.append(node.id)
            child_depth = depth
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                child_depth = depth + 1
            for child in ast.iter_child_nodes(node):
                visit(child, child_depth)

        roots: Iterable[ast.AST]
        if isinstance(fnnode, (ast.FunctionDef, ast.AsyncFunctionDef)):
            roots = fnnode.body
        elif isinstance(fnnode, ast.Lambda):
            roots = (fnnode.body,)
        else:
            roots = (fnnode,)
        for root in roots:
            visit(root, 0)
        for name in dict.fromkeys(global_reads):
            if name in mutated_globals:
                continue  # the write already fired PX002
            if name in global_decls:
                continue
            scan.hit(
                "PX003",
                f"reads module-global mutable {name!r} (consistent only "
                "in a single process)",
            )

    @staticmethod
    def _binding_sets(fnnode: ast.AST) -> tuple[set[str], set[str]]:
        """(local names, declared-global names) for one function node."""
        local_names: set[str] = set()
        global_decls: set[str] = set()
        if isinstance(
            fnnode, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            local_names |= _param_names(fnnode.args)
        for node in ast.walk(fnnode):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                local_names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fnnode:
                    local_names.add(node.name)
                    local_names |= _param_names(node.args)
            elif isinstance(node, ast.Lambda):
                local_names |= _param_names(node.args)
            elif isinstance(node, ast.ClassDef):
                local_names.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                local_names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    local_names.add(
                        alias.asname or alias.name.split(".", 1)[0]
                    )
            elif isinstance(node, ast.Global):
                global_decls.update(node.names)
        local_names -= global_decls
        return local_names, global_decls

    @staticmethod
    def _check_zip_window(node: ast.Call, scan: _CertScan) -> None:
        """PX005: the pairwise-window idiom ``zip(xs, xs[1:])``."""
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "zip"):
            return
        if len(node.args) < 2:
            return
        first = node.args[0]
        for other in node.args[1:]:
            if not isinstance(other, ast.Subscript):
                continue
            index = other.slice
            if not (
                isinstance(index, ast.Slice)
                and index.upper is None
                and isinstance(index.lower, ast.Constant)
                and index.lower.value == 1
            ):
                continue
            if ast.dump(other.value) == ast.dump(first):
                scan.hit(
                    "PX005",
                    "iterates pairwise windows via zip(xs, xs[1:]) "
                    "(depends on row order)",
                )
                return

    @staticmethod
    def _is_shared_rng_fn(resolved: Any) -> bool:
        """Whether ``resolved`` is a function of the shared module RNG
        (``from random import choice`` binds a bound method of the hidden
        module-level ``Random`` instance)."""
        bound_to = getattr(resolved, "__self__", None)
        return isinstance(bound_to, random.Random)

    def _follow_parallel(
        self,
        fn: FunctionType,
        self_obj: Any,
        role: str,
        scan: _CertScan,
        hops: int,
    ) -> None:
        code = fn.__code__
        if code in scan.visited:
            return
        scan.visited.add(code)
        node = self._locate(code)
        if node is None:
            return  # unreadable callee: the certificate covers one hop
        fn_globals = getattr(fn, "__globals__", {}) or {}
        freevars = frozenset(code.co_freevars) - {"self"}
        self._scan_function(
            node, fn_globals, self_obj, freevars, role, scan, hops
        )


def certify_parallel(
    fn: Callable[..., Any],
    role: str = "node",
    analyser: ParallelAnalyser | None = None,
) -> ParallelCertificate:
    """One-shot certification (creates a throwaway analyser if needed)."""
    return (analyser or ParallelAnalyser()).certify(fn, role=role)


def certify_dataflow_parallel(
    dataflow: Any, analyser: ParallelAnalyser | None = None
) -> dict[str, ParallelCertificate]:
    """Certify every node callable of a dataflow and record the verdicts.

    Works through the dataflow's own :meth:`certify_parallel` hook when
    it has one (so the engine records certificates on its nodes);
    otherwise falls back to analysing ``node_callables()`` if exposed.
    """
    analyser = analyser or ParallelAnalyser()
    if hasattr(dataflow, "certify_parallel"):
        return dict(dataflow.certify_parallel(analyser=analyser))
    callables: Iterable[tuple[str, Callable[..., Any]]] = ()
    if hasattr(dataflow, "node_callables"):
        callables = dataflow.node_callables()
    return {name: analyser.certify(fn) for name, fn in callables}


def ensure_certified(
    fn: Callable[..., Any],
    role: str,
    analyser: ParallelAnalyser | None = None,
    name: str | None = None,
) -> ParallelCertificate:
    """The strict-mode policy: certify ``fn`` or refuse to fan it out.

    Map-side callables (``role`` ``"map"``/``"node"``/``"key"``) must be
    fan-out safe (ROW_LOCAL or PARTITION_LOCAL).  Reduce-side callables
    run once in the coordinator, so only UNSAFE is refused — GLOBAL and
    non-associativity warnings are acceptable there.
    """
    certificate = certify_parallel(fn, role=role, analyser=analyser)
    if role == "reduce":
        acceptable = certificate.level is not ParallelSafety.UNSAFE
    else:
        acceptable = certificate.fan_out_safe
    if not acceptable:
        label = name or getattr(fn, "__name__", None) or repr(fn)
        raise ParallelSafetyError(
            f"refusing to fan out {label!r} as {role}: certified "
            f"{certificate.render()}",
            certificate=certificate,
        )
    return certificate
