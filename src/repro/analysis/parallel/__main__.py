"""``python -m repro.analysis.parallel`` — the parallel-safety CLI."""

import sys

from repro.analysis.parallel.cli import main

if __name__ == "__main__":
    sys.exit(main())
