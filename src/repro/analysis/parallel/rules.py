"""The parallel-safety rules: the ``PX`` catalogue.

Each rule names one class of construct that makes fanning a callable out
across rows, partitions, or processes unsafe — or merely narrows *how*
it may be fanned out.  The certifier in
:mod:`repro.analysis.parallel.certifier` detects them by AST and closure
inspection and folds each finding into a
:class:`~repro.analysis.parallel.certifier.ParallelCertificate`; the
gate in :mod:`repro.analysis.parallel.gate` re-emits them through the
shared :class:`~repro.analysis.diagnostics.Diagnostic` engine so
validator, linter, typechecker, and certifier findings render uniformly.

Severity doubles as classification pressure: ``error`` rules demote a
callable to **UNSAFE** (no fan-out, strict consumers refuse it);
``warning`` rules demote to **GLOBAL** (single-process only);
``info`` rules demote to **PARTITION_LOCAL** (per-partition fan-out
stays sound, per-row does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.diagnostics import Severity

__all__ = ["ParallelRule", "PARALLEL_RULES"]


@dataclass(frozen=True)
class ParallelRule:
    """One registered parallel-safety invariant."""

    rule_id: str
    name: str
    severity: Severity
    description: str


def _catalogue(*rules: ParallelRule) -> Mapping[str, ParallelRule]:
    return {r.rule_id: r for r in rules}


#: Rule catalogue for the parallel certifier (mirrored in docs/ANALYSIS.md).
PARALLEL_RULES: Mapping[str, ParallelRule] = _catalogue(
    ParallelRule(
        "PX001",
        "captured-mutable-mutation",
        Severity.ERROR,
        "The callable mutates a mutable object captured by its closure: "
        "two concurrent invocations race on the shared cell, and under a "
        "process pool each worker mutates a private copy whose updates "
        "are silently lost.",
    ),
    ParallelRule(
        "PX002",
        "module-global-write",
        Severity.ERROR,
        "The callable writes module-global state (a `global`/`nonlocal` "
        "declaration, assignment to a module attribute, or mutation of a "
        "module-level container): a write-write or read-write race under "
        "any fan-out, and divergent per-process copies under a pool.",
    ),
    ParallelRule(
        "PX003",
        "module-global-mutable-read",
        Severity.WARNING,
        "The callable reads module-level *mutable* state (a module dict/"
        "list/set): safe only while nothing writes it, so the node is "
        "pinned GLOBAL — the scheduler must not assume per-partition "
        "copies see a consistent value.",
    ),
    ParallelRule(
        "PX004",
        "cross-row-accumulator",
        Severity.INFO,
        "The callable accumulates state across loop iterations (an "
        "augmented assignment inside a loop): correct per partition, but "
        "splitting the rows of one invocation across workers would split "
        "the accumulator — fan out at partition granularity, not row.",
    ),
    ParallelRule(
        "PX005",
        "order-sensitive-iteration",
        Severity.INFO,
        "The callable's result depends on iteration order (pairwise "
        "`zip(xs, xs[1:])` windows, index-offset reads like `xs[i-1]`, "
        "`itertools.accumulate`): row order inside a partition must be "
        "preserved, so per-row fan-out is unsound.",
    ),
    ParallelRule(
        "PX006",
        "shared-rng",
        Severity.ERROR,
        "The callable draws from the shared module-level RNG (`random.*` "
        "functions or `random.seed`): workers fork divergent or identical "
        "streams nondeterministically — thread an explicitly seeded "
        "`random.Random` instance through instead.",
    ),
    ParallelRule(
        "PX007",
        "unpicklable-capture",
        Severity.ERROR,
        "The callable captures state a process pool cannot ship (an open "
        "file handle, a generator, a lock, a socket) — or its source "
        "cannot be located at all, so no certificate can be issued and "
        "fan-out must be refused.",
    ),
    ParallelRule(
        "PX008",
        "non-associative-reduce",
        Severity.WARNING,
        "A reduce function shows non-associativity hints (subtraction, "
        "division, or exponentiation over its partials; positional "
        "special-casing like `partials[0]`): it must see all partials in "
        "one deterministic order and cannot be tree-combined.",
    ),
)
