"""The parallel-safety CLI: ``python -m repro.analysis.parallel``.

Discovers plan-building Python modules (each exposing a zero-argument
``build_wrangler()``), certifies every dataflow node of each plan with
the :class:`~repro.analysis.parallel.certifier.ParallelAnalyser`, and
renders the certificates plus their ``PX`` findings as text or JSON.
Certification is purely static — no source is probed or fetched — so
output is deterministic: byte-identical across runs over an unchanged
tree.

Exit-code contract (identical to the lint and typecheck CLIs):

* ``0`` — no UNSAFE node and no error-severity finding;
* ``1`` — at least one UNSAFE node or error-severity finding;
* ``2`` — the tool itself was misused (unknown path, unimportable
  module, an explicitly named file without an entry point).
"""

from __future__ import annotations

import argparse
import importlib.util
import itertools
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.parallel.certifier import (
    ParallelAnalyser,
    ParallelCertificate,
    ParallelSafety,
    certify_dataflow_parallel,
)
from repro.analysis.parallel.gate import parallel_diagnostics
from repro.analysis.parallel.rules import PARALLEL_RULES
from repro.analysis.report import render
from repro.errors import AnalysisError

__all__ = ["ParallelCheckResult", "check_module", "check_paths", "main"]

_module_counter = itertools.count(1)

#: The conventional zero-argument plan-module entry point.
DEFAULT_ENTRY = "build_wrangler"


@dataclass(frozen=True)
class ParallelCheckResult:
    """Certificates and findings plus the coverage counters."""

    diagnostics: tuple[Diagnostic, ...]
    certificates: tuple[tuple[str, tuple[tuple[str, ParallelCertificate], ...]], ...]
    checked_plans: int
    skipped: tuple[str, ...]

    @property
    def nodes(self) -> int:
        return sum(len(certs) for _, certs in self.certificates)

    @property
    def unsafe_nodes(self) -> tuple[str, ...]:
        """``path::node`` for every node certified UNSAFE."""
        return tuple(
            f"{path}::{name}"
            for path, certs in self.certificates
            for name, certificate in certs
            if certificate.level is ParallelSafety.UNSAFE
        )

    @property
    def ok(self) -> bool:
        """No UNSAFE node and no error-severity finding."""
        return not self.unsafe_nodes and not has_errors(self.diagnostics)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _import_module(path: Path):
    name = f"_repro_parallel_plan_{next(_module_counter)}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise AnalysisError(f"cannot load module from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    # Arbitrary user plan modules can fail arbitrarily at import time;
    # every failure becomes the CLI's misuse exit code.
    except Exception as failure:  # repro: noqa[REP002]
        sys.modules.pop(name, None)
        raise AnalysisError(f"cannot import {path}: {failure}") from failure
    return module


def check_module(
    path: Path,
    entry: str = DEFAULT_ENTRY,
    analyser: ParallelAnalyser | None = None,
) -> ParallelCheckResult | None:
    """Certify the plan one module builds; ``None`` when it has no
    ``entry`` callable (not a plan module)."""
    module = _import_module(path)
    build = getattr(module, entry, None)
    if build is None or not callable(build):
        return None
    try:
        wrangler = build()
        flow = wrangler.flow
        certificates = certify_dataflow_parallel(
            flow, analyser=analyser or ParallelAnalyser()
        )
    except AnalysisError:
        raise
    # A user-supplied build_wrangler() can fail arbitrarily; fold it
    # into the CLI's misuse exit code rather than a traceback.
    except Exception as failure:  # repro: noqa[REP002]
        raise AnalysisError(
            f"certification of {path} failed: {failure}"
        ) from failure
    findings = [
        Diagnostic(
            d.rule,
            d.severity,
            Location(
                f"{path}::{d.location.file}",
                line=d.location.line,
                column=d.location.column,
                node=d.location.node,
            ),
            d.message,
            d.fix_hint,
        )
        for d in parallel_diagnostics(
            certificates, min_severity=Severity.INFO
        )
    ]
    ordered = tuple(sorted(certificates.items()))
    return ParallelCheckResult(
        tuple(findings),
        ((str(path), ordered),),
        checked_plans=1,
        skipped=(),
    )


def _discover(paths: Sequence[str]) -> tuple[list[Path], list[Path]]:
    """(explicit files, directory-discovered files) under ``paths``."""
    explicit: list[Path] = []
    discovered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            discovered.extend(
                p for p in sorted(path.rglob("*.py"))
                if p.stem != "__init__"
            )
        elif path.is_file():
            explicit.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return explicit, discovered


def check_paths(
    paths: Sequence[str], entry: str = DEFAULT_ENTRY
) -> ParallelCheckResult:
    """Certify every plan module under the given paths.

    Directory-discovered files without the entry point are skipped and
    listed in ``skipped``; an explicitly named file without one is a
    usage error.  One analyser serves every plan, so each defining
    source file is parsed once.
    """
    explicit, discovered = _discover(paths)
    analyser = ParallelAnalyser()
    diagnostics: list[Diagnostic] = []
    certificates: list[
        tuple[str, tuple[tuple[str, ParallelCertificate], ...]]
    ] = []
    checked = 0
    skipped: list[str] = []
    for path in explicit:
        result = check_module(path, entry=entry, analyser=analyser)
        if result is None:
            raise AnalysisError(
                f"{path} defines no {entry}() entry point"
            )
        diagnostics.extend(result.diagnostics)
        certificates.extend(result.certificates)
        checked += 1
    for path in discovered:
        result = check_module(path, entry=entry, analyser=analyser)
        if result is None:
            skipped.append(str(path))
            continue
        diagnostics.extend(result.diagnostics)
        certificates.extend(result.certificates)
        checked += 1
    return ParallelCheckResult(
        tuple(sort_diagnostics(diagnostics)),
        tuple(certificates),
        checked_plans=checked,
        skipped=tuple(skipped),
    )


def _certification_block(result: ParallelCheckResult) -> str:
    """The per-plan node→level table appended to the text report."""
    lines = ["certification:"]
    for path, certs in result.certificates:
        lines.append(f"  {path}")
        width = max((len(name) for name, _ in certs), default=0)
        for name, certificate in certs:
            lines.append(
                f"    {name:<{width}}  {certificate.level.value}"
            )
    counts: dict[str, int] = {level.value: 0 for level in ParallelSafety}
    for _, certs in result.certificates:
        for _, certificate in certs:
            counts[certificate.level.value] += 1
    summary = ", ".join(
        f"{counts[level.value]} {level.value}" for level in ParallelSafety
    )
    lines.append(f"  {result.nodes} nodes: {summary}")
    return "\n".join(lines)


def _render_json(result: ParallelCheckResult) -> str:
    payload = {
        "plans": [
            {
                "path": path,
                "nodes": {
                    name: certificate.to_dict()
                    for name, certificate in certs
                },
            }
            for path, certs in result.certificates
        ],
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "summary": {
            "checked_plans": result.checked_plans,
            "nodes": result.nodes,
            "unsafe_nodes": list(result.unsafe_nodes),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalogue() -> str:
    lines = []
    for rule_id in sorted(PARALLEL_RULES):
        registered = PARALLEL_RULES[rule_id]
        lines.append(
            f"{rule_id}  {registered.name:<32} "
            f"{registered.severity.value:<8} {registered.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.parallel",
        description=(
            "repro parallel-safety certifier: classifies every dataflow "
            "node of each plan as row_local / partition_local / global / "
            "unsafe by static AST and closure inspection"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["examples"],
        help="plan modules or directories to certify (default: examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--entry", default=DEFAULT_ENTRY,
        help=f"plan-module entry point (default: {DEFAULT_ENTRY})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the PX rule catalogue and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_rule_catalogue() + "\n")
        return 0
    try:
        result = check_paths(args.paths, entry=args.entry)
    except AnalysisError as failure:
        sys.stderr.write(f"error: {failure}\n")
        return 2
    for path in result.skipped:
        sys.stderr.write(f"note: {path}: no {args.entry}(), skipped\n")
    if args.format == "json":
        sys.stdout.write(_render_json(result) + "\n")
    else:
        report = render(
            result.diagnostics, "text", checked_files=result.checked_plans
        )
        sys.stdout.write(report + "\n")
        sys.stdout.write(_certification_block(result) + "\n")
        for unsafe in result.unsafe_nodes:
            sys.stdout.write(f"UNSAFE: {unsafe}\n")
    return result.exit_code
