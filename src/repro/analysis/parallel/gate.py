"""Fold parallel-safety certificates into the shared diagnostics stream.

The certifier's native currency is the
:class:`~repro.analysis.parallel.certifier.ParallelCertificate`; this
module translates certificates into ``PX`` :class:`Diagnostic`\\ s so
``run_preflight`` can report them alongside the validator's ``PV``,
the typechecker's ``TC``, and the purity gate's findings — one report,
one sort order, one raise policy.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.parallel.certifier import ParallelCertificate

__all__ = ["parallel_diagnostics"]

#: Per-rule remediation one-liners surfaced as fix hints.
_FIX_HINTS: Mapping[str, str] = {
    "PX001": "pass state in as an argument or return it instead of "
             "mutating a captured object",
    "PX002": "thread state through node inputs or working data, never "
             "module globals",
    "PX003": "snapshot the value into the closure (or a node input) at "
             "build time",
    "PX004": "keep the accumulator: fan out per partition, not per row",
    "PX005": "sort or window inside one partition; do not split ordered "
             "rows across workers",
    "PX006": "construct a seeded random.Random and thread it through "
             "explicitly",
    "PX007": "capture only plain data; open handles and locks inside "
             "the worker",
    "PX008": "make the reducer associative, or accept a single-process "
             "reduce",
}


def parallel_diagnostics(
    certificates: Mapping[str, ParallelCertificate],
    min_severity: Severity = Severity.WARNING,
) -> list[Diagnostic]:
    """``PX`` findings for a node→certificate map.

    Only findings at ``min_severity`` or worse are folded (the default
    keeps advisory INFO notes — "this is partition-local, not row-local"
    — out of the preflight report; the CLI shows everything).
    """
    findings: list[Diagnostic] = []
    for name in sorted(certificates):
        certificate = certificates[name]
        for finding in certificate.findings:
            if finding.severity.rank < min_severity.rank:
                continue
            findings.append(
                Diagnostic(
                    finding.rule,
                    finding.severity,
                    Location("dataflow", node=name),
                    f"node {name!r} certified "
                    f"{certificate.level.value}: {finding.message}",
                    _FIX_HINTS.get(finding.rule, ""),
                )
            )
    return findings
