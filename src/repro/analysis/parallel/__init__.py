"""Parallel-safety certification: may this node fan out, and how far?

The fourth leg of the analysis subsystem (after the plan validator, the
framework linter, and the schema-flow typechecker): a static
partitionability and race analysis that classifies every dataflow node
callable as **ROW_LOCAL / PARTITION_LOCAL / GLOBAL / UNSAFE** by AST and
closure inspection, without executing anything.  Rule ids are ``PX0xx``;
findings flow through the shared :class:`~repro.analysis.diagnostics.
Diagnostic` engine and into ``run_preflight``.

Run it standalone as ``python -m repro.analysis.parallel examples``.
"""

from repro.analysis.parallel.certifier import (
    ParallelAnalyser,
    ParallelCertificate,
    ParallelFinding,
    ParallelSafety,
    certify_dataflow_parallel,
    certify_parallel,
    ensure_certified,
)
from repro.analysis.parallel.gate import parallel_diagnostics
from repro.analysis.parallel.rules import PARALLEL_RULES, ParallelRule

__all__ = [
    "ParallelAnalyser",
    "ParallelCertificate",
    "ParallelFinding",
    "ParallelRule",
    "ParallelSafety",
    "PARALLEL_RULES",
    "certify_dataflow_parallel",
    "certify_parallel",
    "ensure_certified",
    "parallel_diagnostics",
]
