"""The shared diagnostics vocabulary of the analysis subsystem.

Both halves of :mod:`repro.analysis` — the static plan validator and the
AST framework linter — emit the same currency: a :class:`Diagnostic`
carrying a rule id, a severity, a location, a human-readable message, and
(where one exists) a fix hint.  Reporters render collections of them;
callers decide policy from :func:`has_errors` / :func:`worst_severity`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "count_by_severity",
    "dedupe_diagnostics",
    "has_errors",
    "sort_diagnostics",
    "worst_severity",
]


class Severity(enum.Enum):
    """How bad a finding is — drives exit codes and raise policy.

    ``ERROR`` findings make the lint CLI exit non-zero and make the plan
    validator raise; ``WARNING`` findings are reported but never fatal;
    ``INFO`` findings are advisory style notes.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric badness (higher is worse), for sorting and thresholds."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """The severity named by ``text`` (case-insensitive)."""
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    For lint findings ``file`` is a path and ``line``/``column`` are
    1-based source coordinates; for plan findings ``file`` names the
    artifact (``"plan"``, ``"dataflow"``, ``"user-context"``, ...) and
    ``node`` the offending element within it.
    """

    file: str
    line: int = 0
    column: int = 0
    node: str = ""

    def render(self) -> str:
        """``file:line:col`` (or ``artifact[node]``) for reports."""
        if self.line:
            return f"{self.file}:{self.line}:{self.column}"
        if self.node:
            return f"{self.file}[{self.node}]"
        return self.file


@dataclass(frozen=True)
class Diagnostic:
    """One finding from either analysis half."""

    rule: str
    severity: Severity
    location: Location
    message: str
    fix_hint: str = ""

    def render(self) -> str:
        """The one-line text form used by the text reporter."""
        hint = f" (fix: {self.fix_hint})" if self.fix_hint else ""
        return (
            f"{self.location.render()}: {self.severity.value} "
            f"[{self.rule}] {self.message}{hint}"
        )

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable form (the JSON reporter's row format)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "file": self.location.file,
            "line": self.location.line,
            "column": self.location.column,
            "node": self.location.node,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Stable order: by file, line, column, then rule id."""
    return sorted(
        diagnostics,
        key=lambda d: (
            d.location.file,
            d.location.line,
            d.location.column,
            d.rule,
        ),
    )


def dedupe_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> list[Diagnostic]:
    """Drop exact duplicates, keeping first occurrence order.

    Four gates (``PV``, ``TC``, purity, ``PX``) can legitimately find the
    same defect on the same node; a combined report should say it once.
    Diagnostics are frozen dataclasses, so "exact duplicate" is full
    field equality — two findings differing only in message or hint both
    survive.
    """
    return list(dict.fromkeys(diagnostics))


def count_by_severity(
    diagnostics: Sequence[Diagnostic],
) -> dict[Severity, int]:
    """How many findings of each severity (zero-filled)."""
    counts = {severity: 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    """Whether any finding is error-severity."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def worst_severity(diagnostics: Sequence[Diagnostic]) -> Severity | None:
    """The most severe finding present, or ``None`` when clean."""
    worst: Severity | None = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity.rank > worst.rank:
            worst = diagnostic.severity
    return worst
