"""The framework lint rules: AST checks for repro's own invariants.

Each rule inspects one module's AST (stdlib :mod:`ast` only — the linter
adds no runtime dependencies) and yields
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  Rules register
themselves in :data:`RULES` via the :func:`rule` decorator; the engine in
:mod:`repro.analysis.lint` handles file discovery, ``# repro: noqa``
suppression, reporting, and exit codes.

The invariants are the framework's, not generic style: confidences are
probabilities, the model/quality layers are deterministic, provenance-
carrying return values must not be dropped, and imports must respect the
layer order of the architecture (Figure 1 flows left to right; code must
not flow back).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.analysis.diagnostics import Diagnostic, Location, Severity

__all__ = ["LintRule", "ModuleContext", "NOQA_RE", "RULES", "rule", "run_rules"]

#: The ``# repro: noqa[RULE,...]`` pragma grammar.  Lives here (not in the
#: engine) so REP012 can audit pragmas against the same grammar the
#: suppression machinery in :mod:`repro.analysis.lint` parses.
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str  # display path, e.g. "src/repro/core/wrangler.py"
    module: str  # dotted name, e.g. "repro.core.wrangler"
    layer: str  # architectural layer, e.g. "core" or "errors"
    tree: ast.Module
    source: str
    is_main: bool  # a ``__main__.py`` CLI module

    def diagnostic(
        self,
        rule_id: str,
        severity: Severity,
        node: ast.AST,
        message: str,
        fix_hint: str = "",
    ) -> Diagnostic:
        """A diagnostic anchored at ``node``'s source position."""
        return Diagnostic(
            rule_id,
            severity,
            Location(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
            ),
            message,
            fix_hint,
        )


@dataclass(frozen=True)
class LintRule:
    """One registered framework invariant."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    check: Callable[[ModuleContext], Iterable[Diagnostic]]


RULES: dict[str, LintRule] = {}


def rule(
    rule_id: str, name: str, severity: Severity, description: str
) -> Callable:
    """Register a check function as a lint rule."""

    def decorate(check: Callable[[ModuleContext], Iterable[Diagnostic]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULES[rule_id] = LintRule(rule_id, name, severity, description, check)
        return check

    return decorate


def run_rules(
    context: ModuleContext, select: Iterable[str] | None = None
) -> list[Diagnostic]:
    """All findings of the selected rules (default: every rule) on one module."""
    chosen = set(select) if select is not None else set(RULES)
    findings: list[Diagnostic] = []
    for rule_id in sorted(chosen):
        registered = RULES.get(rule_id)
        if registered is None:
            continue
        findings.extend(registered.check(context))
    return findings


# -- helpers --------------------------------------------------------------


def _walk_with_type_checking(tree: ast.Module) -> Iterator[tuple[ast.AST, bool]]:
    """Yield ``(node, guarded)`` where guarded means inside TYPE_CHECKING."""

    def is_type_checking(test: ast.AST) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )

    def visit(node: ast.AST, guarded: bool) -> Iterator[tuple[ast.AST, bool]]:
        yield node, guarded
        if isinstance(node, ast.If) and is_type_checking(node.test):
            for child in node.body:
                yield from visit(child, True)
            for child in node.orelse:
                yield from visit(child, guarded)
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child, guarded)

    yield from visit(tree, False)


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _numeric_literal(node: ast.AST) -> float | None:
    """The value of a numeric literal expression, unary minus included."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
        and not isinstance(node.operand.value, bool)
    ):
        sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
        return sign * float(node.operand.value)
    return None


# -- REP001 ---------------------------------------------------------------


@rule(
    "REP001",
    "no-bare-assert",
    Severity.ERROR,
    "Library code must not rely on `assert` for runtime invariants: "
    "asserts vanish under `python -O`, silently disabling the check.",
)
def _check_no_bare_assert(context: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Assert):
            yield context.diagnostic(
                "REP001",
                Severity.ERROR,
                node,
                "bare `assert` in library code is stripped under -O",
                "raise a repro error type (WranglingError subclass) instead",
            )


# -- REP002 ---------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _broad_handler_name(handler: ast.ExceptHandler) -> str | None:
    if handler.type is None:
        return "bare except"
    candidates = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for candidate in candidates:
        name = _call_name(candidate) or (
            candidate.id if isinstance(candidate, ast.Name) else None
        )
        if name in _BROAD_EXCEPTIONS:
            return name
    return None


@rule(
    "REP002",
    "no-broad-except",
    Severity.ERROR,
    "Handlers must catch precise repro error types; `except Exception` "
    "swallows programming errors along with expected failures.",
)
def _check_no_broad_except(context: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ExceptHandler):
            broad = _broad_handler_name(node)
            if broad is not None:
                yield context.diagnostic(
                    "REP002",
                    Severity.ERROR,
                    node,
                    f"over-broad exception handler ({broad})",
                    "catch the precise WranglingError subclass",
                )


# -- REP003 ---------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node.func) in _MUTABLE_CALLS
    return False


@rule(
    "REP003",
    "no-mutable-default",
    Severity.ERROR,
    "Mutable default arguments are shared across calls; use None (or a "
    "dataclass default_factory).",
)
def _check_no_mutable_default(context: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield context.diagnostic(
                    "REP003",
                    Severity.ERROR,
                    default,
                    f"mutable default argument in {node.name}()",
                    "default to None and create the value in the body",
                )


# -- REP004 ---------------------------------------------------------------


@rule(
    "REP004",
    "evidence-confidence-range",
    Severity.ERROR,
    "Evidence confidences are probabilities: literal arguments to "
    "Evidence(...) must lie in [0, 1].",
)
def _check_evidence_confidence(context: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node.func) != "Evidence":
            continue
        literal = None
        if len(node.args) >= 2:
            literal = _numeric_literal(node.args[1])
        for keyword in node.keywords:
            if keyword.arg == "confidence":
                literal = _numeric_literal(keyword.value)
        if literal is not None and not 0.0 <= literal <= 1.0:
            yield context.diagnostic(
                "REP004",
                Severity.ERROR,
                node,
                f"Evidence confidence literal {literal} outside [0, 1]",
                "confidences are probabilities; rescale the literal",
            )


# -- REP005 ---------------------------------------------------------------

_PURE_LAYERS = {"model", "quality"}
_CLOCK_ATTRS = {"now", "utcnow", "today"}


@rule(
    "REP005",
    "pure-layer-determinism",
    Severity.ERROR,
    "The model and quality layers must be deterministic: no wall-clock "
    "reads (datetime.now/today) and no `random` — time and randomness "
    "enter the system only as explicit inputs.",
)
def _check_pure_layer_determinism(
    context: ModuleContext,
) -> Iterator[Diagnostic]:
    if context.layer not in _PURE_LAYERS:
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield context.diagnostic(
                        "REP005",
                        Severity.ERROR,
                        node,
                        f"`random` imported in pure layer {context.layer!r}",
                        "accept a seeded random.Random as a parameter",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                yield context.diagnostic(
                    "REP005",
                    Severity.ERROR,
                    node,
                    f"`random` imported in pure layer {context.layer!r}",
                    "accept a seeded random.Random as a parameter",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_ATTRS
                and not node.args
                and not node.keywords
            ):
                yield context.diagnostic(
                    "REP005",
                    Severity.ERROR,
                    node,
                    f"wall-clock read `.{func.attr}()` in pure layer "
                    f"{context.layer!r}",
                    "pass `today`/`now` in as an argument",
                )


# -- REP006 ---------------------------------------------------------------


def _module_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
    for node in tree.body:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AnnAssign)
            else []
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    return node, names
    return None


def _top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


@rule(
    "REP006",
    "all-consistency",
    Severity.ERROR,
    "__all__ must list only names the module defines (errors), and "
    "public top-level defs should be exported when __all__ exists (info).",
)
def _check_all_consistency(context: ModuleContext) -> Iterator[Diagnostic]:
    found = _module_all(context.tree)
    if found is None:
        return
    node, exported = found
    defined = _top_level_names(context.tree)
    # PEP 562: a module-level __getattr__ resolves names dynamically, so
    # statically undefined exports cannot be proven wrong.
    has_module_getattr = "__getattr__" in defined
    for name in exported:
        if name not in defined and not has_module_getattr:
            yield context.diagnostic(
                "REP006",
                Severity.ERROR,
                node,
                f"__all__ exports undefined name {name!r}",
                "define the name or remove it from __all__",
            )
    for body_node in context.tree.body:
        if isinstance(
            body_node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if body_node.name.startswith("_"):
                continue
            if body_node.name not in exported:
                yield context.diagnostic(
                    "REP006",
                    Severity.INFO,
                    body_node,
                    f"public {body_node.name!r} is not exported by __all__",
                    "add it to __all__ or prefix it with an underscore",
                )


# -- REP007 ---------------------------------------------------------------

#: Architectural layer order: a module may import only same-or-lower rank.
LAYER_RANKS: Mapping[str, int] = {
    "errors": 0,
    "obs": 1,
    "model": 1,
    "context": 2,
    "sources": 2,
    "io": 2,
    # Same rank as sources/io: durable acquisition state is the sources'
    # peer (sources call into ingest cursors, ingest decodes source
    # shapes), and same-rank imports are legal in both directions.
    "ingest": 2,
    "matching": 3,
    "extraction": 3,
    "kb": 3,
    "selection": 3,
    "resolution": 4,
    "quality": 4,
    "mapping": 4,
    "fusion": 5,
    "feedback": 5,
    "scale": 5,
    "datagen": 5,
    "resilience": 6,
    "evaluation": 6,
    "baselines": 6,
    "analysis": 6,
    "core": 7,
    "repro": 8,  # the package root re-exports the public API
    "__main__": 9,
}


def _import_layer(module_name: str) -> str | None:
    parts = module_name.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else "repro"


@rule(
    "REP007",
    "layer-import-order",
    Severity.ERROR,
    "Imports must follow the architecture's layer order; e.g. model/ "
    "importing from core/ inverts the dependency structure.",
)
def _check_layer_import_order(context: ModuleContext) -> Iterator[Diagnostic]:
    own_rank = LAYER_RANKS.get(context.layer)
    if own_rank is None:
        return
    for node, guarded in _walk_with_type_checking(context.tree):
        if guarded:
            continue  # typing-only imports do not create runtime coupling
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            targets = [node.module]
        for target in targets:
            target_layer = _import_layer(target)
            if target_layer is None or target_layer == context.layer:
                continue
            target_rank = LAYER_RANKS.get(target_layer)
            if target_rank is not None and target_rank > own_rank:
                yield context.diagnostic(
                    "REP007",
                    Severity.ERROR,
                    node,
                    f"layer {context.layer!r} (rank {own_rank}) imports from "
                    f"higher layer {target_layer!r} (rank {target_rank}): "
                    "architecture inversion",
                    "move the shared code down a layer or invert the call",
                )


# -- REP008 ---------------------------------------------------------------


@rule(
    "REP008",
    "public-class-docstring",
    Severity.WARNING,
    "Public classes are API surface and must carry a docstring.",
)
def _check_public_class_docstring(
    context: ModuleContext,
) -> Iterator[Diagnostic]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            yield context.diagnostic(
                "REP008",
                Severity.WARNING,
                node,
                f"public class {node.name} has no docstring",
                "state what the class models and its invariants",
            )


# -- REP009 ---------------------------------------------------------------

#: Calls that return a new provenance/uncertainty-carrying value and have
#: no side effects: discarding their result silently loses the lineage or
#: belief update they computed.
_MUST_USE_CALLS = {
    "with_raw",
    "with_cells",
    "with_budget",
    "derive",
    "map_records",
    "pool_evidence",
    "noisy_or",
    "log_odds_pool",
    "bayes_update",
    "credible_interval",
}


@rule(
    "REP009",
    "no-discarded-result",
    Severity.ERROR,
    "Provenance and uncertainty values are immutable: calling with_raw/"
    "pool_evidence/... as a statement silently drops the result.",
)
def _check_no_discarded_result(context: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        name = _call_name(call.func)
        if name in _MUST_USE_CALLS:
            yield context.diagnostic(
                "REP009",
                Severity.ERROR,
                node,
                f"result of {name}() is discarded: these are pure "
                "functions returning new provenance/uncertainty values",
                "assign or return the result",
            )


# -- REP010 ---------------------------------------------------------------


@rule(
    "REP010",
    "no-print",
    Severity.ERROR,
    "Library code must not print; only __main__ CLI modules own stdout.",
)
def _check_no_print(context: ModuleContext) -> Iterator[Diagnostic]:
    if context.is_main:
        return
    for node in ast.walk(context.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield context.diagnostic(
                "REP010",
                Severity.ERROR,
                node,
                "print() in library code",
                "return/log the value, or move output to a __main__ module",
            )

# -- REP011 ---------------------------------------------------------------

#: Modules whose members constitute wall-clock reads.
_TIME_MODULES = {"time", "datetime"}
#: Attribute calls that read the clock when rooted at a time/datetime
#: alias (``time.perf_counter()``, ``_dt.date.today()``, ...).
_CLOCK_CALL_ATTRS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "now",
    "utcnow",
    "today",
}
#: ``from time import ...`` names that are themselves clock reads.
_CLOCK_FUNCTION_IMPORTS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}


def _attribute_root(node: ast.AST) -> str | None:
    """The base ``Name`` id of a (possibly nested) attribute chain."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@rule(
    "REP011",
    "clock-reads-via-obs",
    Severity.ERROR,
    "Builds on REP005: wall-clock reads (time.time/perf_counter/"
    "monotonic, datetime.now/utcnow/today) are confined to repro.obs — "
    "everywhere else time enters through an injected Clock, so timings "
    "and timeliness scores stay deterministic under a ManualClock.",
)
def _check_clock_reads_via_obs(context: ModuleContext) -> Iterator[Diagnostic]:
    if context.layer == "obs":
        return
    aliases: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in _TIME_MODULES:
                    aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _TIME_MODULES:
                for alias in node.names:
                    if (
                        node.module.split(".")[0] == "time"
                        and alias.name in _CLOCK_FUNCTION_IMPORTS
                    ):
                        yield context.diagnostic(
                            "REP011",
                            Severity.ERROR,
                            node,
                            f"clock function `{alias.name}` imported from "
                            "`time` outside repro.obs",
                            "inject a repro.obs Clock and call "
                            "current_time() instead",
                        )
                    elif alias.name in {"datetime", "date", "time"}:
                        aliases.add(alias.asname or alias.name)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CLOCK_CALL_ATTRS
            and _attribute_root(func.value) in aliases
        ):
            yield context.diagnostic(
                "REP011",
                Severity.ERROR,
                node,
                f"wall-clock read `.{func.attr}()` outside repro.obs",
                "inject a repro.obs Clock (current_time/current_date/"
                "current_datetime) instead of reading the clock directly",
            )


# -- REP012 ---------------------------------------------------------------


@rule(
    "REP012",
    "unknown-noqa-rule",
    Severity.WARNING,
    "A `# repro: noqa[...]` pragma naming an unregistered rule id "
    "suppresses nothing — usually a typo that leaves the intended "
    "finding live.",
)
def _check_unknown_noqa_rule(context: ModuleContext) -> Iterator[Diagnostic]:
    for number, line in enumerate(context.source.splitlines(), start=1):
        match = NOQA_RE.search(line)
        if match is None or match.group("rules") is None:
            continue
        for token in match.group("rules").split(","):
            name = token.strip().upper()
            if name and name not in RULES:
                yield Diagnostic(
                    "REP012",
                    Severity.WARNING,
                    Location(context.path, number, match.start() + 1),
                    f"noqa pragma names unknown rule id {name!r} "
                    "(nothing is suppressed)",
                    "fix the rule id or drop the pragma",
                )


# -- REP013 ---------------------------------------------------------------

#: Layers allowed to physically wait: ``obs`` hosts the Clock's single
#: real ``time.sleep``; ``resilience`` is the subsystem whose job *is*
#: scheduled waiting (always spent through the Clock).
_SLEEP_EXEMPT_LAYERS = {"obs", "resilience"}


def _is_spin_loop(node: ast.While) -> bool:
    """A loop whose body does nothing: the classic busy-wait."""
    return all(
        isinstance(statement, (ast.Pass, ast.Continue))
        for statement in node.body
    )


@rule(
    "REP013",
    "no-raw-sleep",
    Severity.ERROR,
    "Extends REP011's clock discipline to waiting: `time.sleep` and "
    "busy-wait spin loops are forbidden outside repro.resilience and the "
    "Clock implementation in repro.obs — waiting goes through the "
    "injected Clock's wait(), so a ManualClock makes every backoff "
    "instantaneous and deterministic in tests.",
)
def _check_no_raw_sleep(context: ModuleContext) -> Iterator[Diagnostic]:
    if context.layer in _SLEEP_EXEMPT_LAYERS:
        return
    time_aliases: set[str] = set()
    sleep_names: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "time":
                    time_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_names.add(alias.asname or "sleep")
                        yield context.diagnostic(
                            "REP013",
                            Severity.ERROR,
                            node,
                            "`sleep` imported from `time` outside "
                            "repro.resilience",
                            "inject a repro.obs Clock and call wait() "
                            "instead of sleeping for real",
                        )
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and _attribute_root(func.value) in time_aliases
            ) or (
                isinstance(func, ast.Name) and func.id in sleep_names
            ):
                yield context.diagnostic(
                    "REP013",
                    Severity.ERROR,
                    node,
                    "wall-clock sleep outside repro.resilience",
                    "inject a repro.obs Clock and call wait() instead",
                )
        elif isinstance(node, ast.While) and _is_spin_loop(node):
            yield context.diagnostic(
                "REP013",
                Severity.ERROR,
                node,
                "busy-wait spin loop (body does nothing)",
                "wait on the injected Clock, or on a real condition",
            )


# -- REP014 ---------------------------------------------------------------

#: Layers allowed to touch the shared RNG: ``datagen`` synthesises test
#: worlds and seeds explicitly at its own entry points.
_RNG_EXEMPT_LAYERS = {"datagen"}

#: ``random`` module attributes that are *not* shared-state draws:
#: constructing an explicitly seeded generator is the sanctioned pattern.
_RNG_CLASS_NAMES = {"Random", "SystemRandom"}


@rule(
    "REP014",
    "no-shared-rng",
    Severity.ERROR,
    "Module-level `random.*` calls draw from one process-wide generator: "
    "a hidden shared-state dependency that breaks determinism the moment "
    "work is reordered or fanned out across processes (the parallel "
    "certifier's PX006, enforced at the source).  Construct an "
    "explicitly seeded random.Random and thread it through; only "
    "datagen/ is exempt.",
)
def _check_no_shared_rng(context: ModuleContext) -> Iterator[Diagnostic]:
    if context.layer in _RNG_EXEMPT_LAYERS:
        return
    random_aliases: set[str] = set()
    shared_fn_names: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    random_aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                for alias in node.names:
                    if alias.name in _RNG_CLASS_NAMES:
                        continue
                    shared_fn_names.add(alias.asname or alias.name)
                    yield context.diagnostic(
                        "REP014",
                        Severity.ERROR,
                        node,
                        f"`{alias.name}` imported from `random` binds the "
                        "shared module-level generator",
                        "import random.Random, seed it explicitly, and "
                        "thread the instance through",
                    )
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr not in _RNG_CLASS_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id in random_aliases
        ):
            yield context.diagnostic(
                "REP014",
                Severity.ERROR,
                node,
                f"call to shared module-level RNG "
                f"`{func.value.id}.{func.attr}()`",
                "construct a seeded random.Random and call the method "
                "on the instance",
            )
        elif isinstance(func, ast.Name) and func.id in shared_fn_names:
            yield context.diagnostic(
                "REP014",
                Severity.ERROR,
                node,
                f"call to shared module-level RNG `{func.id}()`",
                "construct a seeded random.Random and call the method "
                "on the instance",
            )


# -- REP015 ---------------------------------------------------------------

#: The helpers every benchmark must report through (bare name or
#: ``helpers.``-qualified): ``emit_telemetry`` persists the
#: schema-checked snapshot, ``timed`` routes measurement through the
#: tracer.  ``emit`` alone is the legacy print-only path.
_BENCH_TELEMETRY_HELPERS = {"emit_telemetry", "timed"}


def _is_benchmark_module(context: ModuleContext) -> bool:
    parts = context.path.replace("\\", "/").split("/")
    return "benchmarks" in parts and parts[-1].startswith("bench_")


@rule(
    "REP015",
    "bench-telemetry-required",
    Severity.ERROR,
    "A benchmark script under benchmarks/ that never calls "
    "helpers.emit_telemetry or helpers.timed reports ad-hoc numbers the "
    "perf ratchet and calibration loop cannot see: every benchmark must "
    "route measurement through the observability layer, and raw print() "
    "calls must go through helpers.emit so results land under "
    "benchmarks/results/.",
)
def _check_bench_telemetry_required(
    context: ModuleContext,
) -> Iterator[Diagnostic]:
    if not _is_benchmark_module(context):
        return
    called: set[str] = set()
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            called.add(func.id)
        elif isinstance(func, ast.Attribute):
            called.add(func.attr)
    if not (_BENCH_TELEMETRY_HELPERS & called):
        yield context.diagnostic(
            "REP015",
            Severity.ERROR,
            context.tree,
            "benchmark emits no telemetry: neither emit_telemetry() nor "
            "timed() is ever called",
            "wrap measured work in helpers.timed() and persist the "
            "snapshot with helpers.emit_telemetry()",
        )
    for node in ast.walk(context.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield context.diagnostic(
                "REP015",
                Severity.ERROR,
                node,
                "raw print() in a benchmark bypasses benchmarks/results/",
                "report through helpers.emit() so the table is persisted "
                "for EXPERIMENTS.md",
            )


# -- REP016 ---------------------------------------------------------------

#: Layers sanctioned to perform raw file writes: ``io`` owns the atomic
#: primitive (and the explicit CSV/JSON exporters built on the same
#: contract), ``ingest`` persists only through it.
_ATOMIC_WRITE_EXEMPT_LAYERS = {"io", "ingest"}

#: open() modes that persist (write, append, exclusive-create).
_WRITE_MODE_CHARS = set("wax")


def _open_write_mode(node: ast.Call) -> bool:
    """Whether an ``open``/``.open`` call provably uses a write mode.

    Only string-literal modes are judged (positional or ``mode=``): a
    dynamic mode, or an unrelated ``.open`` method (a tracer's span
    opener), is not evidence of persistence and must not fire.
    """
    mode: ast.expr | None = None
    if len(node.args) >= 2 and isinstance(node.func, ast.Name):
        mode = node.args[1]
    elif node.args and isinstance(node.func, ast.Attribute):
        mode = node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return False


@rule(
    "REP016",
    "atomic-writes-only",
    Severity.ERROR,
    "Raw open(..., 'w') / Path.write_text / Path.write_bytes persistence "
    "outside the sanctioned io/ and ingest/ layers can be torn by a "
    "crash mid-write — exactly the corruption the checkpoint journal "
    "quarantines.  Durable state must go through "
    "repro.io.atomic_write_bytes (write-temp, fsync, os.replace).",
)
def _check_atomic_writes_only(context: ModuleContext) -> Iterator[Diagnostic]:
    if context.layer not in LAYER_RANKS:
        return  # benchmarks/tests/tools are outside the architecture
    if context.layer in _ATOMIC_WRITE_EXEMPT_LAYERS:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            yield context.diagnostic(
                "REP016",
                Severity.ERROR,
                node,
                f"raw .{func.attr}() persistence outside the io/ingest "
                "layers is not crash-atomic",
                "serialise the payload and write it with "
                "repro.io.atomic_write_bytes",
            )
        elif (
            (isinstance(func, ast.Name) and func.id == "open")
            or (isinstance(func, ast.Attribute) and func.attr == "open")
        ) and _open_write_mode(node):
            yield context.diagnostic(
                "REP016",
                Severity.ERROR,
                node,
                "raw open() in a write mode outside the io/ingest layers "
                "is not crash-atomic",
                "write through repro.io.atomic_write_bytes (or an io/ "
                "exporter built on it)",
            )
