"""Static validation of wrangle plans, dataflows, and contexts.

The autonomic planner composes the pipeline; this module checks the
composition *before* any data is touched, in the spirit of Koehler et
al.'s context-informed validation: a plan derived from contexts must be
checkable against the contexts that produced it.  Defects that would
otherwise surface at runtime deep inside ``Dataflow.pull`` — dangling
dependencies, cycles, unregistered sources, out-of-range thresholds,
fusion strategies whose data-context prerequisites are absent, budget
contradictions — become :class:`~repro.analysis.diagnostics.Diagnostic`
findings with stable rule ids (``PV0xx``).

Inputs are duck-typed on purpose: the validator never executes plan
machinery, it only reads declared structure, so tests can feed it plain
dicts and hand-built plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.report import render_text
from repro.errors import PlanValidationError, WranglingError
from repro.fusion.strategies import STRATEGIES

__all__ = ["ValidationReport", "PlanValidator", "validate_plan"]

#: Rule catalogue for the validator half (mirrored in docs/ANALYSIS.md).
VALIDATOR_RULES: Mapping[str, str] = {
    "PV001": "dataflow dependency on an undefined node",
    "PV002": "dataflow dependency cycle",
    "PV003": "plan selects a source that is not registered",
    "PV004": "mapping references an attribute absent from its schema",
    "PV005": "plan threshold outside [0, 1]",
    "PV006": "confidence or criteria weight outside [0, 1]",
    "PV007": "fusion strategy unknown or its prerequisite is missing",
    "PV008": "budget/floor contradiction in the user context",
}


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of one static validation pass."""

    diagnostics: tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        """Whether the plan may execute (no error-severity findings)."""
        return not has_errors(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        """Only the error-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        """Only the warning-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def rule_ids(self) -> set[str]:
        """The distinct rule ids that fired."""
        return {d.rule for d in self.diagnostics}

    def render(self) -> str:
        """The findings as a text report."""
        return render_text(self.diagnostics)

    def raise_on_error(self) -> "ValidationReport":
        """Raise :class:`PlanValidationError` when any finding is fatal."""
        fatal = self.errors()
        if fatal:
            raise PlanValidationError(
                "plan validation failed with "
                f"{len(fatal)} error(s):\n" + render_text(fatal),
                diagnostics=fatal,
            )
        return self


def _diag(
    rule: str,
    severity: Severity,
    artifact: str,
    node: str,
    message: str,
    fix_hint: str = "",
) -> Diagnostic:
    return Diagnostic(
        rule, severity, Location(artifact, node=node), message, fix_hint
    )


def _in_unit_interval(value: object) -> bool:
    return isinstance(value, (int, float)) and 0.0 <= float(value) <= 1.0


class PlanValidator:
    """Static checker for plans, dataflow graphs, mappings, and contexts.

    Every ``check_*`` method returns diagnostics; :meth:`validate` runs
    all checks applicable to the artifacts it was given and folds the
    findings into one :class:`ValidationReport`.
    """

    # -- dataflow structure (PV001, PV002) ------------------------------

    def check_dataflow(self, dataflow: Any) -> list[Diagnostic]:
        """Dangling dependencies and cycles in a dataflow graph.

        Accepts a :class:`~repro.core.dataflow.Dataflow` (anything with a
        ``dependency_map()``) or a plain ``{node: (dependencies, ...)}``
        mapping, so defective graphs can be described without having to
        construct one past the engine's own guards.
        """
        if hasattr(dataflow, "dependency_map"):
            dependencies = dataflow.dependency_map()
        else:
            dependencies = {
                name: tuple(deps) for name, deps in dict(dataflow).items()
            }
        findings: list[Diagnostic] = []
        for name, deps in sorted(dependencies.items()):
            for dep in deps:
                if dep not in dependencies:
                    findings.append(
                        _diag(
                            "PV001",
                            Severity.ERROR,
                            "dataflow",
                            name,
                            f"node {name!r} depends on undefined node {dep!r}",
                            "define the node or drop the dependency",
                        )
                    )
        cycle = self._find_cycle(dependencies)
        if cycle:
            path = " -> ".join(cycle)
            findings.append(
                _diag(
                    "PV002",
                    Severity.ERROR,
                    "dataflow",
                    cycle[0],
                    f"dataflow contains a dependency cycle: {path}",
                    "break the cycle by removing one of these edges",
                )
            )
        return findings

    @staticmethod
    def _find_cycle(
        dependencies: Mapping[str, Sequence[str]],
    ) -> list[str] | None:
        """One dependency cycle as a closed path, or ``None``."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in dependencies}
        stack: list[str] = []

        def visit(name: str) -> list[str] | None:
            colour[name] = GREY
            stack.append(name)
            for dep in dependencies.get(name, ()):
                if dep not in colour:
                    continue  # dangling: PV001's business, not a cycle
                if colour[dep] == GREY:
                    start = stack.index(dep)
                    return stack[start:] + [dep]
                if colour[dep] == WHITE:
                    found = visit(dep)
                    if found:
                        return found
            stack.pop()
            colour[name] = BLACK
            return None

        for name in sorted(dependencies):
            if colour[name] == WHITE:
                found = visit(name)
                if found:
                    return found
        return None

    # -- plan vs registry (PV003, PV005) --------------------------------

    def check_plan_sources(
        self, plan: Any, registry: Any
    ) -> list[Diagnostic]:
        """Every source the plan selects must actually be registered."""
        registered = self._registered_names(registry)
        findings = []
        for name in getattr(plan, "sources", ()):
            if name not in registered:
                findings.append(
                    _diag(
                        "PV003",
                        Severity.ERROR,
                        "plan",
                        name,
                        f"plan selects unregistered source {name!r} "
                        f"(registered: {sorted(registered) or 'none'})",
                        "register the source before planning, or re-plan",
                    )
                )
        return findings

    @staticmethod
    def _registered_names(registry: Any) -> set[str]:
        if registry is None:
            return set()
        if hasattr(registry, "names"):
            return set(registry.names())
        return set(registry)

    def check_plan_thresholds(self, plan: Any) -> list[Diagnostic]:
        """Match and ER thresholds must be probabilities."""
        findings = []
        for field_name in ("match_threshold", "er_threshold"):
            value = getattr(plan, field_name, None)
            if value is None:
                continue
            if not _in_unit_interval(value):
                findings.append(
                    _diag(
                        "PV005",
                        Severity.ERROR,
                        "plan",
                        field_name,
                        f"{field_name} must be in [0, 1], got {value!r}",
                        "clamp the threshold into the unit interval",
                    )
                )
        return findings

    # -- fusion prerequisites (PV007) -----------------------------------

    def check_fusion(
        self,
        plan: Any,
        user: Any = None,
        data: Any = None,
        master_key: str | None = None,
        date_attribute: str | None = None,
    ) -> list[Diagnostic]:
        """Fusion strategies and the data-context support they assume."""
        findings = []
        strategy = getattr(plan, "fusion_strategy", None)
        known = set(STRATEGIES)
        if strategy is not None and strategy not in known:
            findings.append(
                _diag(
                    "PV007",
                    Severity.ERROR,
                    "plan",
                    "fusion_strategy",
                    f"unknown fusion strategy {strategy!r} "
                    f"(known: {sorted(known)})",
                    "pick one of the registered strategies",
                )
            )
        target_schema = getattr(user, "target_schema", None)
        for attribute, override in sorted(
            (getattr(plan, "fusion_overrides", None) or {}).items()
        ):
            if override not in known:
                findings.append(
                    _diag(
                        "PV007",
                        Severity.ERROR,
                        "plan",
                        f"fusion_overrides.{attribute}",
                        f"fusion override for {attribute!r} names unknown "
                        f"strategy {override!r}",
                        "pick one of the registered strategies",
                    )
                )
            if target_schema is not None and attribute not in target_schema:
                findings.append(
                    _diag(
                        "PV007",
                        Severity.ERROR,
                        "plan",
                        f"fusion_overrides.{attribute}",
                        f"fusion override targets attribute {attribute!r} "
                        "absent from the target schema",
                        "drop the override or fix the attribute name",
                    )
                )
            elif override == "median" and target_schema is not None:
                attr = target_schema.get(attribute)
                if attr is not None and not attr.dtype.is_numeric():
                    findings.append(
                        _diag(
                            "PV007",
                            Severity.WARNING,
                            "plan",
                            f"fusion_overrides.{attribute}",
                            f"median fusion on non-numeric attribute "
                            f"{attribute!r} ({attr.dtype.value}) degrades to "
                            "majority vote",
                            "use a categorical strategy for this attribute",
                        )
                    )
        if strategy == "recent" and date_attribute is None:
            has_date = target_schema is not None and any(
                attribute.dtype.value == "date" for attribute in target_schema
            )
            if not has_date:
                findings.append(
                    _diag(
                        "PV007",
                        Severity.WARNING,
                        "plan",
                        "fusion_strategy",
                        "recency fusion selected but no date attribute is "
                        "declared anywhere: all claims tie at default recency",
                        "declare date_attribute or add a DATE column",
                    )
                )
        if master_key is not None:
            master_data = getattr(data, "master_data", {}) if data else {}
            if master_key not in master_data:
                findings.append(
                    _diag(
                        "PV007",
                        Severity.ERROR,
                        "data-context",
                        master_key,
                        f"master-data key {master_key!r} is declared but the "
                        "data context holds no such master table: accuracy "
                        "anchoring and master fusion cannot run",
                        "add_master() the table or drop master_key",
                    )
                )
        return findings

    # -- user context (PV006, PV008) ------------------------------------

    def check_user_context(
        self, user: Any, plan: Any = None, registry: Any = None
    ) -> list[Diagnostic]:
        """Weight ranges and budget/floor contradictions."""
        findings = []
        for dimension, weight in sorted(
            (getattr(user, "weights", None) or {}).items(),
            key=lambda kv: str(kv[0]),
        ):
            if not _in_unit_interval(weight):
                findings.append(
                    _diag(
                        "PV006",
                        Severity.ERROR,
                        "user-context",
                        getattr(dimension, "value", str(dimension)),
                        f"criteria weight for {getattr(dimension, 'value', dimension)} "
                        f"must be in [0, 1] after normalisation, got {weight:.3f}",
                        "remove negative raw weights before normalising",
                    )
                )
        floors = getattr(user, "floors", None) or {}
        weights = getattr(user, "weights", None) or {}
        for dimension, floor in sorted(
            floors.items(), key=lambda kv: str(kv[0])
        ):
            name = getattr(dimension, "value", str(dimension))
            if not _in_unit_interval(floor):
                findings.append(
                    _diag(
                        "PV006",
                        Severity.ERROR,
                        "user-context",
                        name,
                        f"floor for {name} must be in [0, 1], got {floor!r}",
                        "use a probability floor",
                    )
                )
            elif floor > 0 and weights.get(dimension, 0.0) == 0.0:
                findings.append(
                    _diag(
                        "PV008",
                        Severity.WARNING,
                        "user-context",
                        name,
                        f"hard floor {floor:.2f} on {name} but the dimension "
                        "carries zero weight: candidates are filtered on a "
                        "criterion the ranking never optimises",
                        "give the dimension a non-zero weight",
                    )
                )
        budget = getattr(user, "budget", None)
        if budget is not None and plan is not None:
            selected = list(getattr(plan, "sources", ()) or ())
            if budget == 0 and selected:
                findings.append(
                    _diag(
                        "PV008",
                        Severity.ERROR,
                        "user-context",
                        "budget",
                        f"budget is 0 but the plan selects "
                        f"{len(selected)} source(s): acquisition cannot be "
                        "paid for",
                        "raise the budget or expect an empty plan",
                    )
                )
            elif budget not in (None, float("inf")) and registry is not None:
                cost = self._plan_cost(selected, registry)
                if cost is not None and cost > budget:
                    findings.append(
                        _diag(
                            "PV008",
                            Severity.ERROR,
                            "user-context",
                            "budget",
                            f"plan's acquisition cost {cost:.1f} exceeds the "
                            f"budget {budget:.1f}",
                            "re-plan under the budget or raise it",
                        )
                    )
        return findings

    @staticmethod
    def _plan_cost(selected: Sequence[str], registry: Any) -> float | None:
        if not hasattr(registry, "get"):
            return None
        total = 0.0
        for name in selected:
            try:
                source = registry.get(name)
            except WranglingError:
                return None  # unknown source: PV003's finding, not a cost
            metadata = getattr(source, "metadata", None)
            if metadata is None:
                return None
            total += metadata.cost_per_access
        return total

    # -- mappings vs schemas (PV004, PV006) -----------------------------

    def check_mappings(
        self,
        mappings: Iterable[Any],
        source_schemas: Mapping[str, Any] | None = None,
    ) -> list[Diagnostic]:
        """Attribute references and confidences of executable mappings.

        ``source_schemas`` maps source name to the schema its raw table
        exposes; when provided, every attribute map's source attribute is
        resolved against it.  Target attributes always resolve against the
        mapping's own target schema.
        """
        findings = []
        for mapping in mappings:
            source_name = getattr(mapping, "source_name", "?")
            if not _in_unit_interval(getattr(mapping, "confidence", 0.0)):
                findings.append(
                    _diag(
                        "PV006",
                        Severity.ERROR,
                        "mapping",
                        source_name,
                        f"mapping {getattr(mapping, 'mapping_id', '?')} has "
                        f"confidence {mapping.confidence!r} outside [0, 1]",
                        "confidences are probabilities",
                    )
                )
            schema = (source_schemas or {}).get(source_name)
            target_schema = getattr(mapping, "target_schema", None)
            for attribute_map in getattr(mapping, "attribute_maps", ()):
                if not _in_unit_interval(
                    getattr(attribute_map, "confidence", 0.0)
                ):
                    findings.append(
                        _diag(
                            "PV006",
                            Severity.ERROR,
                            "mapping",
                            f"{source_name}.{attribute_map.target}",
                            f"attribute map {attribute_map.target!r} has "
                            f"confidence {attribute_map.confidence!r} outside "
                            "[0, 1]",
                            "confidences are probabilities",
                        )
                    )
                if (
                    target_schema is not None
                    and attribute_map.target not in target_schema
                ):
                    findings.append(
                        _diag(
                            "PV004",
                            Severity.ERROR,
                            "mapping",
                            f"{source_name}.{attribute_map.target}",
                            f"mapping produces {attribute_map.target!r} which "
                            "is not in the target schema",
                            "align the mapping with the user context's schema",
                        )
                    )
                if schema is not None and attribute_map.source not in schema:
                    findings.append(
                        _diag(
                            "PV004",
                            Severity.ERROR,
                            "mapping",
                            f"{source_name}.{attribute_map.source}",
                            f"mapping reads {attribute_map.source!r} which "
                            f"source {source_name!r} does not provide "
                            f"(schema: {sorted(a.name for a in schema)})",
                            "re-match the source or fix the attribute name",
                        )
                    )
        return findings

    # -- the one-call entry point ----------------------------------------

    def validate(
        self,
        plan: Any = None,
        user: Any = None,
        data: Any = None,
        registry: Any = None,
        dataflow: Any = None,
        mappings: Iterable[Any] = (),
        source_schemas: Mapping[str, Any] | None = None,
        master_key: str | None = None,
        date_attribute: str | None = None,
    ) -> ValidationReport:
        """Run every check applicable to the artifacts provided."""
        findings: list[Diagnostic] = []
        if dataflow is not None:
            findings.extend(self.check_dataflow(dataflow))
        if plan is not None:
            findings.extend(self.check_plan_thresholds(plan))
            if registry is not None:
                findings.extend(self.check_plan_sources(plan, registry))
            findings.extend(
                self.check_fusion(
                    plan,
                    user=user,
                    data=data,
                    master_key=master_key,
                    date_attribute=date_attribute,
                )
            )
        if user is not None:
            findings.extend(
                self.check_user_context(user, plan=plan, registry=registry)
            )
        mappings = list(mappings)
        if mappings:
            findings.extend(self.check_mappings(mappings, source_schemas))
        return ValidationReport(tuple(sort_diagnostics(findings)))


def validate_plan(**artifacts: Any) -> ValidationReport:
    """Convenience wrapper: ``PlanValidator().validate(**artifacts)``."""
    return PlanValidator().validate(**artifacts)
