"""Static analysis for the repro framework: validate before you run.

Four legs share one diagnostics engine:

* :mod:`repro.analysis.validator` — static validation of wrangle plans,
  dataflow graphs, mappings, and contexts (rule ids ``PV0xx``), wired
  into :class:`~repro.core.wrangler.Wrangler` as a pre-flight check;
* :mod:`repro.analysis.lint` — an AST-based framework linter (rule ids
  ``REP0xx``) run as ``python -m repro.analysis.lint src/repro``;
* :mod:`repro.analysis.typecheck` — a schema-flow type checker and node
  purity certifier (rule ids ``TC0xx``) run as ``python -m
  repro.analysis.typecheck examples`` and folded into the wrangler's
  pre-execution gate;
* :mod:`repro.analysis.parallel` — a parallel-safety certifier (rule
  ids ``PX0xx``) classifying every dataflow node as row-local /
  partition-local / global / unsafe, run as ``python -m
  repro.analysis.parallel examples`` and folded into the same gate.

All emit :class:`~repro.analysis.diagnostics.Diagnostic` values and
render through :mod:`repro.analysis.report`.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    count_by_severity,
    has_errors,
)
from repro.analysis.report import render, render_json, render_text
from repro.analysis.rules import RULES, LintRule, ModuleContext
from repro.analysis.validator import (
    PlanValidator,
    ValidationReport,
    validate_plan,
)

__all__ = [
    "Diagnostic",
    "Location",
    "Severity",
    "count_by_severity",
    "has_errors",
    "LintResult",
    "lint_paths",
    "lint_source",
    "render",
    "render_json",
    "render_text",
    "RULES",
    "LintRule",
    "ModuleContext",
    "PlanValidator",
    "ValidationReport",
    "validate_plan",
    "PurityAnalyser",
    "PurityVerdict",
    "SchemaFlowChecker",
    "TYPECHECK_RULES",
    "run_preflight",
    "ParallelAnalyser",
    "ParallelCertificate",
    "ParallelSafety",
    "PARALLEL_RULES",
    "certify_parallel",
    "certify_dataflow_parallel",
    "parallel_diagnostics",
]

_LAZY_LINT_EXPORTS = ("LintResult", "lint_paths", "lint_source")
_LAZY_TYPECHECK_EXPORTS = (
    "PurityAnalyser",
    "PurityVerdict",
    "SchemaFlowChecker",
    "TYPECHECK_RULES",
    "run_preflight",
)
_LAZY_PARALLEL_EXPORTS = (
    "ParallelAnalyser",
    "ParallelCertificate",
    "ParallelSafety",
    "PARALLEL_RULES",
    "certify_parallel",
    "certify_dataflow_parallel",
    "parallel_diagnostics",
)


def __getattr__(name: str):
    # The lint, typecheck, and parallel engines are imported lazily so
    # that ``python -m repro.analysis.lint`` / ``... .typecheck`` /
    # ``... .parallel`` do not re-execute an already-imported module
    # (runpy's double-import warning).
    if name in _LAZY_LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _LAZY_TYPECHECK_EXPORTS:
        from repro.analysis import typecheck

        return getattr(typecheck, name)
    if name in _LAZY_PARALLEL_EXPORTS:
        from repro.analysis import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
