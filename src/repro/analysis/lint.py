"""The framework linter engine and CLI: ``python -m repro.analysis.lint``.

Discovers Python files, runs every registered rule from
:mod:`repro.analysis.rules`, honours ``# repro: noqa[...]`` line
suppressions, and renders text or JSON via the shared reporters.

Exit-code contract (what CI keys off):

* ``0`` — no error-severity findings (warnings/infos may be present);
* ``1`` — at least one error-severity finding survived suppression;
* ``2`` — the linter itself was misused (unknown path, unknown rule).
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic, has_errors, sort_diagnostics
from repro.analysis.report import render
from repro.analysis.rules import NOQA_RE, RULES, ModuleContext, run_rules
from repro.errors import AnalysisError

__all__ = ["LintResult", "lint_source", "lint_paths", "main"]


@dataclass(frozen=True)
class LintResult:
    """Findings plus the bookkeeping reporters need."""

    diagnostics: tuple[Diagnostic, ...]
    checked_files: int
    suppressed: int

    @property
    def ok(self) -> bool:
        """Whether the tree passes (no error-severity findings)."""
        return not has_errors(self.diagnostics)

    @property
    def exit_code(self) -> int:
        """The CLI exit code this result maps to."""
        return 0 if self.ok else 1


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Per-line suppressions: line -> rule ids, or ``None`` for all rules."""
    table: dict[int, set[str] | None] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            table[number] = None
        else:
            table[number] = {
                token.strip().upper()
                for token in rules.split(",")
                if token.strip()
            }
    return table


def _apply_suppressions(
    diagnostics: Iterable[Diagnostic], source: str
) -> tuple[list[Diagnostic], int]:
    table = _suppressions(source)
    kept: list[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        rules = table.get(diagnostic.location.line, "absent")
        if rules == "absent":
            kept.append(diagnostic)
        elif rules is None or diagnostic.rule in rules:
            suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, suppressed


def _module_identity(path: Path) -> tuple[str, str, bool]:
    """Dotted module name, architectural layer, and CLI-ness of a file."""
    parts = list(path.parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        dotted = ".".join(parts[index:])[: -len(".py")]
    else:
        dotted = path.stem
    segments = dotted.split(".")
    if segments[0] == "repro":
        if len(segments) == 1 or segments[1] == "__init__":
            layer = "repro"
        else:
            layer = segments[1]
    else:
        layer = segments[0]
    if layer.endswith(".py"):
        layer = layer[:-3]
    is_main = path.stem == "__main__"
    if is_main:
        layer = "__main__"
    return dotted, layer, is_main


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    layer: str | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint one module given as a string (the unit-test entry point)."""
    pseudo = Path(path)
    dotted, derived_layer, is_main = _module_identity(pseudo)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as failure:
        raise AnalysisError(f"cannot parse {path}: {failure}") from failure
    context = ModuleContext(
        path=path,
        module=module or dotted,
        layer=layer if layer is not None else derived_layer,
        tree=tree,
        source=source,
        is_main=is_main,
    )
    findings = run_rules(context, select=select)
    kept, suppressed = _apply_suppressions(findings, source)
    return LintResult(tuple(sort_diagnostics(kept)), 1, suppressed)


def _discover(paths: Sequence[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return files


def lint_paths(
    paths: Sequence[str], select: Iterable[str] | None = None
) -> LintResult:
    """Lint every ``.py`` file under the given paths."""
    if select is not None:
        unknown = set(select) - set(RULES)
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(RULES))})"
            )
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    files = _discover(paths)
    for file in files:
        result = lint_source(
            file.read_text(encoding="utf-8"), path=str(file), select=select
        )
        diagnostics.extend(result.diagnostics)
        suppressed += result.suppressed
    return LintResult(
        tuple(sort_diagnostics(diagnostics)), len(files), suppressed
    )


def _rule_catalogue() -> str:
    lines = []
    for rule_id in sorted(RULES):
        registered = RULES[rule_id]
        lines.append(
            f"{rule_id}  {registered.name:<26} {registered.severity.value:<8}"
            f" {registered.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repro framework linter (stdlib ast, no dependencies)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_rule_catalogue() + "\n")
        return 0
    select = (
        [token.strip().upper() for token in args.select.split(",") if token.strip()]
        if args.select
        else None
    )
    try:
        result = lint_paths(args.paths, select=select)
    except AnalysisError as failure:
        sys.stderr.write(f"error: {failure}\n")
        return 2
    report = render(
        result.diagnostics, args.format, checked_files=result.checked_files
    )
    sys.stdout.write(report + "\n")
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
