"""The perf ratchet: fresh ``BENCH_*.json`` runs vs committed baselines.

ROADMAP item 2's "benchmark suite becomes a ratchet instead of a
report": every committed ``benchmarks/results/BENCH_<name>.json``
baseline is compared metric-by-metric against a freshly emitted run of
the same benchmark, and any wall-clock or cost metric that regressed by
more than the tolerance fails the gate (exit non-zero from
``python -m repro.analysis.cost --ratchet``, wired into ``make
bench-gate`` / ``make check`` / CI).

Only *lower-is-better* metrics are ratcheted: the numeric leaves under a
baseline's ``timings_seconds`` and ``costs`` objects plus any top-level
``cost`` field.  Throughput-style numbers (speedups, cluster counts)
are carried in the baselines for the record but are machine-dependent,
so they do not gate.  A baseline whose fresh counterpart is missing
fails the gate too — deleting a benchmark must be an explicit decision,
not a silent skip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import AnalysisError

__all__ = [
    "RatchetEntry",
    "RatchetReport",
    "orphan_baselines",
    "run_ratchet",
]

#: Allowed relative regression before a metric fails the gate.
DEFAULT_TOLERANCE = 0.15

#: Baseline keys whose numeric leaves are lower-is-better and ratcheted.
_RATCHETED_BLOCKS = ("timings_seconds", "costs")
_RATCHETED_SCALARS = ("cost",)


@dataclass(frozen=True)
class RatchetEntry:
    """One compared metric (or one missing-file failure)."""

    benchmark: str
    metric: str
    baseline: float | None
    fresh: float | None
    delta: float | None  # relative change; positive = slower/costlier
    status: str  # "ok" | "improved" | "regressed" | "missing"

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")

    def render(self) -> str:
        if self.status == "missing":
            return f"{self.benchmark}: no fresh {self.metric}"
        sign = "+" if (self.delta or 0.0) >= 0 else ""
        return (
            f"{self.benchmark}.{self.metric}: "
            f"{self.baseline:.4f} -> {self.fresh:.4f} "
            f"({sign}{100.0 * (self.delta or 0.0):.1f}%) {self.status}"
        )


@dataclass(frozen=True)
class RatchetReport:
    """Every compared metric plus the gate verdict."""

    entries: tuple[RatchetEntry, ...]
    tolerance: float
    baseline_dir: str
    fresh_dir: str

    @property
    def failures(self) -> tuple[RatchetEntry, ...]:
        return tuple(entry for entry in self.entries if entry.failed)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = [
            f"ratchet: {self.fresh_dir} vs baseline {self.baseline_dir} "
            f"(tolerance {100.0 * self.tolerance:.0f}%)"
        ]
        for entry in self.entries:
            lines.append("  " + entry.render())
        verdict = (
            "OK" if self.ok
            else f"FAIL ({len(self.failures)} regression(s))"
        )
        lines.append(
            f"{len(self.entries)} metric(s) compared: {verdict}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "baseline_dir": self.baseline_dir,
            "fresh_dir": self.fresh_dir,
            "entries": [
                {
                    "benchmark": e.benchmark,
                    "metric": e.metric,
                    "baseline": e.baseline,
                    "fresh": e.fresh,
                    "delta": None if e.delta is None else round(e.delta, 4),
                    "status": e.status,
                }
                for e in self.entries
            ],
            "ok": self.ok,
        }


def _baseline_files(directory: Path) -> list[Path]:
    return [
        path
        for path in sorted(directory.glob("BENCH_*.json"))
        if not path.name.endswith(".telemetry.json")
    ]


def _load(path: Path) -> Mapping[str, Any]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as failure:
        raise AnalysisError(
            f"cannot read benchmark baseline {path}: {failure}"
        ) from failure
    if not isinstance(payload, Mapping):
        raise AnalysisError(f"{path}: expected a JSON object")
    return payload


def _ratcheted_metrics(payload: Mapping[str, Any]) -> dict[str, float]:
    """The lower-is-better numeric leaves of one benchmark record."""
    metrics: dict[str, float] = {}
    for block in _RATCHETED_BLOCKS:
        leaves = payload.get(block)
        if not isinstance(leaves, Mapping):
            continue
        for key, value in leaves.items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                metrics[f"{block}.{key}"] = float(value)
    for key in _RATCHETED_SCALARS:
        value = payload.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = float(value)
    return metrics


def run_ratchet(
    fresh_dir: str | Path,
    baseline_dir: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> RatchetReport:
    """Compare fresh benchmark records against committed baselines.

    Every ``BENCH_*.json`` in ``baseline_dir`` must have a fresh
    counterpart of the same name in ``fresh_dir``; each lower-is-better
    metric present in *both* records is compared, and a fresh value more
    than ``tolerance`` above the baseline is a regression.  Metrics with
    a non-positive baseline are skipped (nothing meaningful to ratchet
    against); having no baselines at all is a usage error.
    """
    baseline_path = Path(baseline_dir)
    fresh_path = Path(fresh_dir)
    if not baseline_path.is_dir():
        raise AnalysisError(f"no such baseline directory: {baseline_dir}")
    baselines = _baseline_files(baseline_path)
    if not baselines:
        raise AnalysisError(
            f"no BENCH_*.json baselines under {baseline_dir}"
        )
    entries: list[RatchetEntry] = []
    for baseline_file in baselines:
        name = baseline_file.stem
        fresh_file = fresh_path / baseline_file.name
        if not fresh_file.is_file():
            entries.append(
                RatchetEntry(name, baseline_file.name, None, None, None,
                             "missing")
            )
            continue
        baseline_metrics = _ratcheted_metrics(_load(baseline_file))
        fresh_metrics = _ratcheted_metrics(_load(fresh_file))
        for metric in sorted(baseline_metrics):
            base = baseline_metrics[metric]
            if base <= 0 or metric not in fresh_metrics:
                continue
            fresh = fresh_metrics[metric]
            delta = (fresh - base) / base
            if delta > tolerance:
                status = "regressed"
            elif delta < 0:
                status = "improved"
            else:
                status = "ok"
            entries.append(
                RatchetEntry(name, metric, base, fresh, delta, status)
            )
    return RatchetReport(
        entries=tuple(entries),
        tolerance=tolerance,
        baseline_dir=str(baseline_dir),
        fresh_dir=str(fresh_dir),
    )


def orphan_baselines(
    baseline_dir: str | Path, benchmarks_dir: str | Path
) -> list[str]:
    """Committed ``BENCH_*.json`` baselines no benchmark can regenerate.

    A baseline whose experiment name appears in no ``bench_*.py`` source
    under ``benchmarks_dir`` is a dead weight the ratchet would keep
    enforcing forever: the gate copies it aside, re-runs the suite, and
    then fails on the guaranteed-missing fresh counterpart — or worse,
    silently compares against a stale record nobody can refresh.  The
    check is textual (the experiment name string must occur in some
    benchmark source), which is exactly the contract the benchmark
    helpers enforce when emitting: every ``BENCH_<name>.json`` is
    written under its literal experiment name.
    """
    baseline_path = Path(baseline_dir)
    benchmarks_path = Path(benchmarks_dir)
    if not benchmarks_path.is_dir():
        raise AnalysisError(
            f"no such benchmarks directory: {benchmarks_dir}"
        )
    sources = "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted(benchmarks_path.glob("bench_*.py"))
    )
    return [
        baseline.name
        for baseline in _baseline_files(baseline_path)
        if baseline.stem not in sources
    ]
