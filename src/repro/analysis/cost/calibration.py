"""Telemetry-driven calibration of the cost model.

Closes the loop between the static model and the runtime: the committed
``*.telemetry.json`` snapshots record every dataflow node's observed
compute-seconds (``dataflow.nodes[name].seconds``) with its stage label,
so the per-operator unit cost can be *fitted* instead of guessed.  The
fit is one parameter per stage — the seconds-per-run that minimises the
squared error over that stage's observed node runs (i.e. the mean) —
and the report states the prediction error the fitted constant achieves
against the same observations, per operator and overall.

A stage whose fitted constant still mispredicts its own observations by
more than :data:`DRIFT_LIMIT` (relative) gets a ``CC010`` finding: the
static model and the runtime have diverged for that operator, and
per-stage estimates should not be trusted until the model is re-fitted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.cost.model import cc
from repro.errors import AnalysisError

__all__ = ["CalibrationReport", "StageFit", "calibrate"]

#: Mean relative prediction error above which a stage is drifting.
DRIFT_LIMIT = 0.75


@dataclass(frozen=True)
class StageFit:
    """One stage's fitted unit cost and its in-sample prediction error."""

    stage: str
    samples: int
    runs: int
    observed_seconds: float
    unit_seconds_per_run: float
    mean_relative_error: float


@dataclass(frozen=True)
class CalibrationReport:
    """Per-operator fits plus the snapshots they were fitted from."""

    fits: tuple[StageFit, ...]
    snapshots: tuple[str, ...]
    nodes_used: int

    @property
    def overall_error(self) -> float:
        """Sample-weighted mean relative prediction error."""
        total = sum(fit.samples for fit in self.fits)
        if not total:
            return 0.0
        return (
            sum(fit.mean_relative_error * fit.samples for fit in self.fits)
            / total
        )

    def diagnostics(self) -> list[Diagnostic]:
        """``CC010`` findings for stages whose fit has drifted."""
        findings = []
        for fit in self.fits:
            if fit.mean_relative_error <= DRIFT_LIMIT:
                continue
            findings.append(
                cc(
                    "CC010",
                    "calibration",
                    fit.stage,
                    f"stage {fit.stage!r} unit cost "
                    f"{fit.unit_seconds_per_run:.6f}s/run mispredicts its "
                    f"own {fit.samples} observations by "
                    f"{100.0 * fit.mean_relative_error:.0f}% on average",
                    "re-fit UNIT_COSTS from fresh telemetry, or split "
                    "the stage into operators with distinct costs",
                )
            )
        return findings

    def render(self) -> str:
        """The per-operator calibration table."""
        lines = [
            f"calibrated from {len(self.snapshots)} snapshot(s), "
            f"{self.nodes_used} node observation(s)"
        ]
        header = (
            f"{'stage':<12} {'nodes':>5} {'runs':>5} "
            f"{'seconds':>9} {'s/run':>10} {'error':>7}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for fit in self.fits:
            lines.append(
                f"{fit.stage:<12} {fit.samples:>5} {fit.runs:>5} "
                f"{fit.observed_seconds:>9.3f} "
                f"{fit.unit_seconds_per_run:>10.6f} "
                f"{100.0 * fit.mean_relative_error:>6.1f}%"
            )
        lines.append(
            f"overall mean relative prediction error: "
            f"{100.0 * self.overall_error:.1f}%"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "snapshots": list(self.snapshots),
            "nodes_used": self.nodes_used,
            "stages": {
                fit.stage: {
                    "samples": fit.samples,
                    "runs": fit.runs,
                    "observed_seconds": round(fit.observed_seconds, 6),
                    "unit_seconds_per_run": round(
                        fit.unit_seconds_per_run, 6
                    ),
                    "mean_relative_error": round(
                        fit.mean_relative_error, 4
                    ),
                }
                for fit in self.fits
            },
            "overall_error": round(self.overall_error, 4),
        }


def _telemetry_files(paths: Sequence[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.telemetry.json")))
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return files


def _node_observations(
    payload: Mapping[str, Any],
) -> list[tuple[str, int, float]]:
    """(stage, runs, seconds) per node with at least one timed run."""
    dataflow = payload.get("dataflow")
    nodes = dataflow.get("nodes") if isinstance(dataflow, Mapping) else None
    observations: list[tuple[str, int, float]] = []
    if not isinstance(nodes, Mapping):
        return observations
    for stats in nodes.values():
        if not isinstance(stats, Mapping):
            continue
        runs = stats.get("runs")
        seconds = stats.get("seconds")
        stage = stats.get("stage") or "unstaged"
        if (
            isinstance(runs, int)
            and runs > 0
            and isinstance(seconds, (int, float))
            and seconds > 0
        ):
            observations.append((str(stage), runs, float(seconds)))
    return observations


def calibrate(paths: Sequence[str]) -> CalibrationReport:
    """Fit per-operator unit costs from telemetry snapshots.

    ``paths`` may name snapshot files or directories to glob for
    ``*.telemetry.json``.  Snapshots without per-node timings contribute
    nothing (and a run over only such snapshots reports zero nodes);
    unreadable or non-JSON files are a usage error.
    """
    observations: list[tuple[str, int, float]] = []
    used: list[str] = []
    for path in _telemetry_files(paths):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as failure:
            raise AnalysisError(
                f"cannot read telemetry from {path}: {failure}"
            ) from failure
        found = _node_observations(payload)
        if found:
            used.append(str(path))
            observations.extend(found)

    by_stage: dict[str, list[tuple[int, float]]] = {}
    for stage, runs, seconds in observations:
        by_stage.setdefault(stage, []).append((runs, seconds))

    fits: list[StageFit] = []
    for stage in sorted(by_stage):
        samples = by_stage[stage]
        total_runs = sum(runs for runs, _ in samples)
        total_seconds = sum(seconds for _, seconds in samples)
        unit = total_seconds / total_runs if total_runs else 0.0
        errors = [
            abs(unit * runs - seconds) / seconds
            for runs, seconds in samples
        ]
        fits.append(
            StageFit(
                stage=stage,
                samples=len(samples),
                runs=total_runs,
                observed_seconds=total_seconds,
                unit_seconds_per_run=unit,
                mean_relative_error=(
                    sum(errors) / len(errors) if errors else 0.0
                ),
            )
        )
    return CalibrationReport(
        fits=tuple(fits),
        snapshots=tuple(used),
        nodes_used=len(observations),
    )
