"""The cost & cardinality rules: the ``CC`` catalogue.

Each rule names one class of plan that is statically predictable to be
more expensive than it should be — super-linear stages (the quadratic ER
wall), plans whose estimated access cost exceeds a declared budget, and
estimates the certifier could not ground in a real cardinality.  The
certifier in :mod:`repro.analysis.cost.certifier` detects them by
propagating a :class:`~repro.analysis.cost.model.CardinalityEstimate`
through the plan's dataflow topology and emits each finding through the
shared :class:`~repro.analysis.diagnostics.Diagnostic` engine, so
validator, linter, typechecker, purity, parallel, and cost findings
render uniformly.

Severity doubles as admission pressure: ``error`` rules refuse the plan
at the preflight gate (a quadratic resolve at scale, a plan over its
declared budget); ``warning`` rules flag cost smells worth fixing but
admit the plan; ``info`` rules record where the estimate degraded to an
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.diagnostics import Severity

__all__ = ["CostRule", "COST_RULES"]


@dataclass(frozen=True)
class CostRule:
    """One registered cost/cardinality invariant."""

    rule_id: str
    name: str
    severity: Severity
    description: str


def _catalogue(*rules: CostRule) -> Mapping[str, CostRule]:
    return {r.rule_id: r for r in rules}


#: Rule catalogue for the cost certifier (mirrored in docs/ANALYSIS.md).
COST_RULES: Mapping[str, CostRule] = _catalogue(
    CostRule(
        "CC001",
        "unknown-cardinality",
        Severity.INFO,
        "A selected source advertises no row count (no size hint and no "
        "probe artifact), so downstream estimates fall back to an assumed "
        "default cardinality — the certificate is still issued, but its "
        "confidence is degraded and every derived bound inherits it.",
    ),
    CostRule(
        "CC002",
        "quadratic-resolution",
        Severity.ERROR,
        "Entity resolution is on the full-pairs path (no blocking caps "
        "the candidate set) at a scale where the estimated pair count "
        "exceeds the quadratic limit: cost grows as n^2/2 and the stage "
        "will dominate the run even with the vectorised prune kernels "
        "engaged (pruning cuts the per-pair constant, not the n^2 pair "
        "generation).  Token, sorted-neighbourhood, or MinHash-LSH "
        "blocking caps the candidate set to ~linear in rows.",
    ),
    CostRule(
        "CC003",
        "degenerate-blocking",
        Severity.WARNING,
        "A blocking configuration that cannot cap candidate-pair growth: "
        "a small-table cutoff at or above the estimated table size, a "
        "sorted-neighbourhood window spanning the table, or a token "
        "block size bound that no block can exceed — blocking is "
        "configured but degenerates to (near-)full pairs.  (MinHash-LSH "
        "has no structural cap to degenerate; its runtime counterpart is "
        "the blocking.dropped_* telemetry counters on oversized "
        "buckets.)",
    ),
    CostRule(
        "CC004",
        "cross-source-join",
        Severity.WARNING,
        "Many sources pool their rows into one un-partitioned resolve: "
        "candidate pairs grow with the square of the union, so k sources "
        "cost ~k^2 single-source resolves — partition per source (or by "
        "a blocking key) before resolving.",
    ),
    CostRule(
        "CC005",
        "plan-over-budget",
        Severity.ERROR,
        "The plan's estimated total access cost (probes plus full "
        "acquisitions, in cost_per_access units) exceeds the budget "
        "declared via Wrangler.budget(): admission control refuses the "
        "plan before any source is fully accessed.",
    ),
    CostRule(
        "CC006",
        "unbounded-budget",
        Severity.INFO,
        "The plan spends access cost but no budget bounds it — neither a "
        "declared plan budget (Wrangler.budget()) nor a finite user-"
        "context budget — so admission control cannot gate this tenant.",
    ),
    CostRule(
        "CC007",
        "probe-dominates-budget",
        Severity.WARNING,
        "The fixed probe overhead (every registered source is sampled at "
        "PROBE_COST_FRACTION before selection) consumes at least half the "
        "declared budget: the plan spends its budget learning about "
        "sources instead of acquiring them — trim the registry or raise "
        "the budget.",
    ),
    CostRule(
        "CC008",
        "superlinear-repair",
        Severity.WARNING,
        "Constraint discovery is enabled over an estimated fused table "
        "large enough that approximate-FD mining (rows x width^2 "
        "candidate dependencies) dominates the repair stage — mine "
        "constraints offline or cap the discovery scope.",
    ),
    CostRule(
        "CC009",
        "unestimable-node",
        Severity.WARNING,
        "A dataflow node's kind has no registered cost signature, so no "
        "estimate can propagate through it: everything downstream of the "
        "node inherits an assumed cardinality.",
    ),
    CostRule(
        "CC010",
        "calibration-drift",
        Severity.WARNING,
        "The calibration pass found a stage whose fitted unit cost "
        "predicts observed compute-seconds with a relative error above "
        "the drift limit: the static model and the runtime have diverged "
        "for that operator and its estimates should not be trusted until "
        "re-fitted.",
    ),
)
