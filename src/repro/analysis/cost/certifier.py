"""The cost & cardinality certifier.

Walks a wrangle plan's dataflow topology — reusing the
:class:`~repro.core.dataflow.Dataflow` graph when one is supplied, never
re-deriving it — and threads a
:class:`~repro.analysis.cost.model.CardinalityEstimate` from node to
node, exactly as :mod:`repro.analysis.typecheck.checker` threads
:class:`~repro.model.schema.Schema`.  Each node is dispatched to its
:class:`~repro.analysis.cost.model.CostSignature`, so a quadratic
resolve, a degenerate blocking configuration, or a plan whose estimated
access cost exceeds its declared budget all surface as ``CC``
diagnostics *before* any source is fully accessed.

Everything is duck-typed (plans, registries, dataflows), matching the
plan validator's contract: tests can feed hand-built stand-ins, and this
module never imports :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    sort_diagnostics,
)
from repro.analysis.cost.model import (
    COST_SIGNATURES,
    PROBE_BUDGET_FRACTION_LIMIT,
    CardinalityEstimate,
    CostContext,
    ResolutionProfile,
    cc,
    source_facts,
)

__all__ = ["CostCertifier", "PlanCostReport", "check_plan_cost"]


@dataclass(frozen=True)
class PlanCostReport:
    """Per-node estimates plus plan-level totals and findings."""

    estimates: Mapping[str, CardinalityEstimate]
    stages: Mapping[str, str | None]
    findings: tuple[Diagnostic, ...]
    budget: float | None = None

    @property
    def total_access_cost(self) -> float:
        """Estimated access spend in ``cost_per_access`` units."""
        return sum(e.access_cost for e in self.estimates.values())

    @property
    def total_work(self) -> float:
        return sum(e.work for e in self.estimates.values())

    @property
    def predicted_seconds(self) -> float:
        """Predicted compute-seconds under the per-stage unit costs."""
        return sum(
            estimate.seconds(self.stages.get(name))
            for name, estimate in self.estimates.items()
        )

    @property
    def over_budget(self) -> bool:
        return (
            self.budget is not None
            and self.total_access_cost > self.budget
        )

    @property
    def ok(self) -> bool:
        """No error-severity finding (the admission-control verdict)."""
        return not any(
            d.severity is Severity.ERROR for d in self.findings
        )

    def diagnostics(
        self, min_severity: Severity = Severity.WARNING
    ) -> list[Diagnostic]:
        """The findings at ``min_severity`` or worse, stably ordered."""
        return [
            d for d in self.findings
            if d.severity.rank >= min_severity.rank
        ]

    def to_dict(self) -> dict[str, Any]:
        """The JSON form behind the committed plan→cost snapshot."""
        return {
            "nodes": {
                name: self.estimates[name].to_dict()
                for name in sorted(self.estimates)
            },
            "totals": {
                "access_cost": round(self.total_access_cost, 4),
                "work": round(self.total_work, 2),
                "predicted_seconds": round(self.predicted_seconds, 4),
            },
            "budget": self.budget,
            "over_budget": self.over_budget,
        }


class CostCertifier:
    """Static cost propagation over a plan's dataflow topology."""

    def check(
        self,
        plan: Any,
        user: Any = None,
        registry: Any = None,
        dataflow: Any = None,
        budget: float | None = None,
        discover_constraints: bool = False,
        resolution: ResolutionProfile | None = None,
    ) -> PlanCostReport:
        """The full ``CC`` certificate for one plan.

        ``registry`` supplies per-source row hints and access costs;
        ``dataflow`` supplies the walk order (without one, the
        wrangler's canonical pipeline shape is synthesised from the
        plan's sources); ``budget`` is the declared plan/tenant budget
        (``Wrangler.budget(...)``) the estimated access cost is checked
        against.
        """
        context = CostContext(
            plan=plan,
            user=user,
            sources=source_facts(registry),
            budget=budget,
            discover_constraints=discover_constraints,
            resolution=resolution or ResolutionProfile(),
        )
        order, dependencies = self._topology(dataflow, context)
        estimates: dict[str, CardinalityEstimate] = {}
        stages: dict[str, str | None] = {}
        findings: list[Diagnostic] = []
        for name in order:
            kind, _, suffix = name.partition(":")
            signature = COST_SIGNATURES.get(kind)
            incoming = self._first_input_estimate(
                name, dependencies, estimates
            )
            if signature is None:
                findings.append(
                    cc(
                        "CC009",
                        "dataflow",
                        name,
                        f"node kind {kind!r} has no cost signature; the "
                        f"estimate cannot propagate through {name!r}",
                        "register a CostSignature for the kind, or "
                        "accept assumed downstream cardinalities",
                    )
                )
                estimates[name] = CardinalityEstimate(
                    rows=incoming.rows, confidence="assumed"
                )
                stages[name] = None
                continue
            sub = suffix or None
            outgoing = signature.estimate(context, sub, incoming)
            findings.extend(signature.check(context, sub, outgoing))
            estimates[name] = outgoing
            stages[name] = signature.stage
        findings.extend(self._budget_findings(context, estimates))
        report = PlanCostReport(
            estimates=estimates,
            stages=stages,
            findings=tuple(sort_diagnostics(findings)),
            budget=budget,
        )
        self._annotate(dataflow, report)
        return report

    # -- plan-level checks ------------------------------------------------

    @staticmethod
    def _budget_findings(
        context: CostContext,
        estimates: Mapping[str, CardinalityEstimate],
    ) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        total = sum(e.access_cost for e in estimates.values())
        probe_cost = sum(
            e.access_cost
            for name, e in estimates.items()
            if name.partition(":")[0] == "probe"
        )
        budget = context.budget
        if budget is not None and total > budget:
            findings.append(
                cc(
                    "CC005",
                    "plan",
                    None,
                    f"estimated access cost {total:.2f} exceeds the "
                    f"declared budget {budget:.2f} "
                    f"(probe overhead {probe_cost:.2f} + "
                    f"{len(context.planned_sources)} acquisitions)",
                    "raise Wrangler.budget(), drop sources from the "
                    "registry, or let the planner select fewer sources",
                )
            )
        if (
            budget is not None
            and budget > 0
            and probe_cost >= PROBE_BUDGET_FRACTION_LIMIT * budget
        ):
            findings.append(
                cc(
                    "CC007",
                    "plan",
                    None,
                    f"probe overhead {probe_cost:.2f} consumes "
                    f"{100.0 * probe_cost / budget:.0f}% of the declared "
                    f"budget {budget:.2f}",
                    "trim the registry before planning, or raise the "
                    "budget",
                )
            )
        if (
            budget is None
            and context.user_budget == float("inf")
            and total > 0
        ):
            findings.append(
                cc(
                    "CC006",
                    "plan",
                    None,
                    f"estimated access cost {total:.2f} is bounded by no "
                    f"budget (no Wrangler.budget() declaration, user "
                    f"budget unbounded)",
                    "declare a plan budget via Wrangler.budget() so "
                    "admission control can gate the tenant",
                )
            )
        return findings

    # -- topology (mirrors the schema checker's walk) ---------------------

    def _topology(
        self, dataflow: Any, context: CostContext
    ) -> tuple[list[str], dict[str, tuple[str, ...]]]:
        if dataflow is not None and hasattr(dataflow, "dependency_map"):
            dependencies = {
                name: tuple(deps)
                for name, deps in dataflow.dependency_map().items()
            }
            if hasattr(dataflow, "nodes"):
                order = list(dataflow.nodes())
            else:
                order = self._toposort(dependencies)
            return order, dependencies
        return self._synthetic_topology(context)

    @staticmethod
    def _synthetic_topology(
        context: CostContext,
    ) -> tuple[list[str], dict[str, tuple[str, ...]]]:
        dependencies: dict[str, tuple[str, ...]] = {
            "probe": (),
            "plan": ("probe",),
        }
        mapped_nodes = []
        for name in context.planned_sources:
            dependencies[f"acquire:{name}"] = ("plan",)
            dependencies[f"match:{name}"] = (f"acquire:{name}",)
            dependencies[f"mapping:{name}"] = (f"match:{name}",)
            dependencies[f"mapped:{name}"] = (
                f"acquire:{name}",
                f"mapping:{name}",
            )
            dependencies[f"quality:{name}"] = (f"mapped:{name}",)
            mapped_nodes.append(f"mapped:{name}")
        dependencies["select"] = tuple(
            f"quality:{name}" for name in context.planned_sources
        ) or ("plan",)
        dependencies["translate"] = ("select", *mapped_nodes)
        dependencies["resolve"] = ("translate",)
        dependencies["fuse"] = ("resolve",)
        dependencies["repair"] = ("fuse",)
        return CostCertifier._toposort(dependencies), dependencies

    @staticmethod
    def _toposort(
        dependencies: Mapping[str, Sequence[str]],
    ) -> list[str]:
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done or name in visiting:
                return  # cycles/dangling edges are PV001/PV002's business
            visiting.add(name)
            for dep in dependencies.get(name, ()):
                if dep in dependencies:
                    visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in sorted(dependencies):
            visit(name)
        return order

    @staticmethod
    def _first_input_estimate(
        name: str,
        dependencies: Mapping[str, Sequence[str]],
        estimates: Mapping[str, CardinalityEstimate],
    ) -> CardinalityEstimate:
        """The estimate flowing into ``name``: its first dependency that
        carries rows, else its first estimated dependency at all."""
        first: CardinalityEstimate | None = None
        for dep in dependencies.get(name, ()):
            estimate = estimates.get(dep)
            if estimate is None:
                continue
            if first is None:
                first = estimate
            if estimate.rows > 0:
                return estimate
        return first or CardinalityEstimate()

    # -- dataflow annotation ----------------------------------------------

    @staticmethod
    def _annotate(dataflow: Any, report: PlanCostReport) -> None:
        """Write predicted per-node seconds onto the dataflow (when it
        supports cost annotation), so telemetry exports carry them."""
        if dataflow is None or not hasattr(dataflow, "annotate_costs"):
            return
        dataflow.annotate_costs(
            {
                name: round(estimate.seconds(report.stages.get(name)), 6)
                for name, estimate in report.estimates.items()
            }
        )


def check_plan_cost(**artifacts: Any) -> PlanCostReport:
    """Convenience wrapper: ``CostCertifier().check(**artifacts)``."""
    return CostCertifier().check(**artifacts)
