"""The cost model: cardinality estimates and per-operator cost signatures.

The static mirror of the runtime's cost accounting.  A
:class:`CardinalityEstimate` carries three numbers through the dataflow
topology — estimated **rows** flowing out of a node, abstract **work**
units the node performs (row scans, attribute-pair scores, candidate-
pair comparisons, cell fusions), and **access cost** spent at the node in
the same ``cost_per_access`` units as
:class:`~repro.sources.base.SourceMetadata` and the user context's
budget.  Each dataflow node kind the wrangler composes gets a
:class:`CostSignature` declaring — *without executing anything* — how it
transforms an incoming estimate, exactly as
:mod:`repro.analysis.typecheck.signatures` declares schema transforms.

Work units convert to predicted compute-seconds through per-stage
:data:`UNIT_COSTS`; the defaults are order-of-magnitude fits from the
committed telemetry snapshots and the calibration pass in
:mod:`repro.analysis.cost.calibration` re-fits them from observed
per-node seconds.

Everything is duck-typed like the plan validator and schema checker:
signatures read declared structure (plans, registries, user contexts)
and never touch live data — probing is the caller's business.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.cost.rules import COST_RULES

__all__ = [
    "CardinalityEstimate",
    "CostContext",
    "CostSignature",
    "ResolutionProfile",
    "SourceFacts",
    "COST_SIGNATURES",
    "UNIT_COSTS",
    "cc",
    "estimated_pairs",
    "source_facts",
]

# -- tunable thresholds (documented in docs/ANALYSIS.md) ------------------

#: Rows assumed for a source with no size hint (the probe sample size).
DEFAULT_ROWS = 25.0
#: Target-schema width assumed when no schema is available.
DEFAULT_WIDTH = 8.0
#: Fields the resolver compares per candidate pair when the plan does
#: not pin ``er_attributes``.
DEFAULT_ER_FIELDS = 3.0
#: Candidate pairs above which an unblocked resolve is a CC002 error.
QUADRATIC_PAIR_LIMIT = 100_000.0
#: Candidate pairs above which blocking smells (CC003/CC004) warn.
PAIR_WARNING_LIMIT = 50_000.0
#: Sources pooled into one resolve before CC004 considers it a
#: cross-source join.
CROSS_SOURCE_MIN = 4
#: rows x width^2 above which FD discovery dominates repair (CC008).
FD_WORK_LIMIT = 1_000_000.0
#: Fraction of the declared budget the probe pass may consume (CC007).
PROBE_BUDGET_FRACTION_LIMIT = 0.5

#: Default seconds per work unit, per pipeline stage — order-of-magnitude
#: fits from the committed telemetry snapshots (the resolution figure is
#: the ROADMAP wall: ~43.5s for ~3.2e5 pairs x 1 field).  The calibration
#: pass re-fits these from observed per-node seconds.
UNIT_COSTS: Mapping[str, float] = {
    "probe": 2e-4,
    "planning": 1e-4,
    "extraction": 2e-5,
    "matching": 1e-4,
    "mapping": 1e-5,
    "quality": 2e-5,
    "selection": 1e-4,
    "resolution": 1.5e-4,
    "fusion": 2e-5,
    "repair": 1e-5,
}


def cc(
    rule: str,
    artifact: str,
    node: str | None,
    message: str,
    fix_hint: str = "",
    severity: Severity | None = None,
) -> Diagnostic:
    """A ``CC`` diagnostic with the catalogue severity (overridable)."""
    registered = COST_RULES[rule]
    return Diagnostic(
        rule,
        severity or registered.severity,
        Location(artifact, node=node),
        message,
        fix_hint,
    )


@dataclass(frozen=True)
class CardinalityEstimate:
    """What one node is statically expected to cost.

    ``rows`` is the estimated table cardinality flowing *out* of the
    node; ``work`` the abstract operation count the node performs;
    ``access_cost`` the source-access cost charged at the node (in
    ``cost_per_access`` units, the budget's currency).  ``confidence``
    records the weakest assumption the estimate rests on: ``"exact"``
    (a published size hint), ``"probed"`` (derived from exact inputs
    through a modelled operator), or ``"assumed"`` (a default filled in
    where no cardinality was available).
    """

    rows: float = 0.0
    work: float = 0.0
    access_cost: float = 0.0
    confidence: str = "probed"
    detail: str = ""

    def seconds(self, stage: str | None) -> float:
        """Predicted compute-seconds under the stage's unit cost."""
        return self.work * UNIT_COSTS.get(stage or "", 1e-5)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rows": round(self.rows, 2),
            "work": round(self.work, 2),
            "access_cost": round(self.access_cost, 4),
            "confidence": self.confidence,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload


_WORST = {"exact": 0, "probed": 1, "assumed": 2}


def _weakest(*confidences: str) -> str:
    return max(confidences, key=lambda c: _WORST.get(c, 2))


@dataclass(frozen=True)
class SourceFacts:
    """What the certifier statically knows about one registered source."""

    name: str
    rows: float | None  # size hint; None when the source publishes none
    cost_per_access: float = 1.0
    kind: str = "structured"


def _peek_rows(source: Any) -> float | None:
    """The memoised row count, without ever triggering a load.

    A cold :meth:`~repro.sources.base.StructuredSource.size_hint` loads
    the source to learn its size — an *access* the static pass must not
    cause (it would bypass the resilience ledger and charge nothing).
    So the peek walks the source (and any resilience ``inner`` chain)
    for the memoised ``_size_hint`` left by a fetch/probe; only a
    duck-typed stand-in carrying no such slot at any level gets its
    ``size_hint()`` called, since publishing a count statically is
    exactly what such a double is for.
    """
    seen: set[int] = set()
    current, saw_slot = source, False
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if hasattr(current, "_size_hint"):
            saw_slot = True
            hint = current._size_hint
            if hint is not None:
                return float(hint)
        current = getattr(current, "inner", None)
    if saw_slot:
        return None  # a real source, not yet probed: unknown, don't load
    hint = getattr(source, "size_hint", None)
    if callable(hint):
        try:
            return float(hint())
        # Duck-typed stand-ins may refuse arbitrarily; degrade to an
        # assumed cardinality instead of failing the static pass.
        except Exception:  # repro: noqa[REP002]
            return None
    return None


def source_facts(registry: Any) -> dict[str, SourceFacts]:
    """Duck-typed extraction of :class:`SourceFacts` from a registry.

    Row hints come from the size hint memoised by each source's last
    fetch/probe (so they are free — and real — after the preflight
    probe, and ``None`` before it); document sources publish none and
    degrade to ``None``.
    """
    facts: dict[str, SourceFacts] = {}
    if registry is None or not hasattr(registry, "names"):
        return facts
    for name in registry.names():
        source = registry.get(name)
        metadata = getattr(source, "metadata", None)
        cost = float(getattr(metadata, "cost_per_access", 1.0) or 0.0)
        kind = str(getattr(metadata, "kind", "structured"))
        facts[name] = SourceFacts(name, _peek_rows(source), cost, kind)
    return facts


@dataclass(frozen=True)
class ResolutionProfile:
    """The blocking configuration the resolve stage is expected to run.

    Mirrors :class:`~repro.resolution.er.EntityResolver`'s defaults: the
    full-pairs path below ``small_table_cutoff`` rows, token blocking
    (blocks capped at ``max_block_size``) above it.  ``strategy`` may be
    ``"token"``, ``"sorted_neighbourhood"`` (then ``window`` applies),
    ``"minhash_lsh"`` (then ``bands`` applies), or ``"full_pairs"`` for
    an explicit unblocked resolver.
    """

    strategy: str = "token"
    small_table_cutoff: int = 30
    max_block_size: int = 50
    window: int = 10
    bands: int = 16


def estimated_pairs(
    rows: float, profile: ResolutionProfile
) -> tuple[float, bool]:
    """(estimated candidate pairs, whether the full-pairs path is taken).

    Upper bounds, not expectations: token blocking can emit at most
    ``rows x (max_block_size - 1) / 2`` pairs (every row in a full
    block), a sorted neighbourhood at most ``rows x (window - 1)``.
    MinHash-LSH has no hard structural cap — a degenerate band bucket can
    reach full pairs — so its estimate is the well-behaved expectation:
    each record collides in at most its ``bands`` band buckets with a
    handful of genuine near-duplicates, ~``rows x bands`` pairs overall.
    """
    full = rows * max(rows - 1.0, 0.0) / 2.0
    if profile.strategy == "full_pairs" or rows <= profile.small_table_cutoff:
        return full, True
    if profile.strategy == "sorted_neighbourhood":
        if profile.window >= rows:
            return full, True
        return min(full, rows * max(profile.window - 1.0, 1.0)), False
    if profile.strategy == "minhash_lsh":
        return min(full, rows * max(profile.bands, 1.0)), False
    if profile.max_block_size >= rows:
        return full, True
    return min(full, rows * (profile.max_block_size - 1.0) / 2.0), False


@dataclass
class CostContext:
    """Everything a cost signature may consult while estimating one plan."""

    plan: Any = None
    user: Any = None
    sources: Mapping[str, SourceFacts] = field(default_factory=dict)
    budget: float | None = None  # declared via Wrangler.budget()
    discover_constraints: bool = False
    resolution: ResolutionProfile = field(default_factory=ResolutionProfile)

    @property
    def planned_sources(self) -> tuple[str, ...]:
        return tuple(getattr(self.plan, "sources", ()) or ())

    @property
    def target_width(self) -> float:
        schema = getattr(self.user, "target_schema", None)
        try:
            width = float(len(schema)) if schema is not None else 0.0
        except TypeError:
            width = 0.0
        return width or DEFAULT_WIDTH

    @property
    def er_fields(self) -> float:
        attributes = tuple(getattr(self.plan, "er_attributes", ()) or ())
        return float(len(attributes)) or DEFAULT_ER_FIELDS

    @property
    def user_budget(self) -> float:
        return float(getattr(self.user, "budget", float("inf")) or 0.0)

    def source_rows(self, name: str) -> tuple[float, str]:
        """(estimated rows, confidence) for one registered source."""
        facts = self.sources.get(name)
        if facts is None or facts.rows is None:
            return DEFAULT_ROWS, "assumed"
        return facts.rows, "exact"


@dataclass(frozen=True)
class CostSignature:
    """One dataflow node kind's static cost contract.

    ``estimate`` maps the estimate flowing into a node of this kind to
    the estimate flowing out; ``check`` returns the ``CC`` diagnostics
    for the node given that outgoing estimate.  Both receive the
    context, the node's qualifying suffix (the source name for
    per-source nodes), and the relevant estimate.
    """

    kind: str
    stage: str
    work_unit: str
    estimate: Callable[
        [CostContext, str | None, CardinalityEstimate], CardinalityEstimate
    ] = lambda ctx, sub, incoming: incoming
    check: Callable[
        [CostContext, str | None, CardinalityEstimate], list[Diagnostic]
    ] = lambda ctx, sub, estimate: []


# -- per-kind estimators --------------------------------------------------


def _probe_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    # Every registered source is sampled at PROBE_COST_FRACTION,
    # selected or not — the fixed overhead of informed selection.
    from repro.sources.base import PROBE_COST_FRACTION

    cost = sum(f.cost_per_access for f in ctx.sources.values())
    sampled = sum(
        min(f.rows if f.rows is not None else DEFAULT_ROWS, DEFAULT_ROWS)
        for f in ctx.sources.values()
    )
    return CardinalityEstimate(
        rows=0.0,
        work=sampled,
        access_cost=cost * PROBE_COST_FRACTION,
        confidence="exact",
        detail=f"{len(ctx.sources)} sources sampled",
    )


def _acquire_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    if sub is None or sub not in ctx.planned_sources:
        return CardinalityEstimate(rows=0.0, confidence="exact",
                                   detail="not selected")
    rows, confidence = ctx.source_rows(sub)
    facts = ctx.sources.get(sub)
    cost = facts.cost_per_access if facts is not None else 1.0
    return CardinalityEstimate(
        rows=rows, work=rows, access_cost=cost, confidence=confidence
    )


def _acquire_check(
    ctx: CostContext, sub: str | None, estimate: CardinalityEstimate
) -> list[Diagnostic]:
    if sub is None or sub not in ctx.planned_sources:
        return []
    if estimate.confidence != "assumed":
        return []
    return [
        cc(
            "CC001",
            "dataflow",
            f"acquire:{sub}",
            f"source {sub!r} advertises no row count; estimates assume "
            f"{DEFAULT_ROWS:.0f} rows from here on",
            "probe the source before the gate, or publish a size hint",
        )
    ]


def _match_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    width = ctx.target_width
    return replace(
        incoming,
        work=width * width,
        access_cost=0.0,
        detail="attribute-pair scoring",
    )


def _per_cell_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    return replace(
        incoming,
        work=incoming.rows * ctx.target_width,
        access_cost=0.0,
        detail="",
    )


def _mapping_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    return replace(incoming, work=ctx.target_width, access_cost=0.0)


def _select_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    return CardinalityEstimate(
        rows=incoming.rows,
        work=float(len(ctx.planned_sources)),
        confidence=incoming.confidence,
    )


def _translate_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    # The union of every selected source's mapped rows; scope filtering
    # can only shrink it, so this is an upper bound.
    total = 0.0
    confidence = "exact"
    for name in ctx.planned_sources:
        rows, source_confidence = ctx.source_rows(name)
        total += rows
        confidence = _weakest(confidence, source_confidence)
    return CardinalityEstimate(
        rows=total, work=total, confidence=confidence,
        detail=f"union of {len(ctx.planned_sources)} sources",
    )


def _resolve_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    pairs, full = estimated_pairs(incoming.rows, ctx.resolution)
    label = "full pairs" if full else ctx.resolution.strategy
    return CardinalityEstimate(
        rows=incoming.rows,
        work=pairs * ctx.er_fields,
        confidence=incoming.confidence,
        detail=f"{pairs:.0f} candidate pairs ({label})",
    )


def _resolve_check(
    ctx: CostContext, sub: str | None, estimate: CardinalityEstimate
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    rows = estimate.rows
    profile = ctx.resolution
    pairs, full = estimated_pairs(rows, profile)
    node = "resolve" if sub is None else f"resolve:{sub}"
    if full and pairs > QUADRATIC_PAIR_LIMIT:
        seconds = pairs * ctx.er_fields * UNIT_COSTS["resolution"]
        findings.append(
            cc(
                "CC002",
                "dataflow",
                node,
                f"unblocked resolve over ~{rows:.0f} rows compares "
                f"~{pairs:.0f} candidate pairs (n^2/2 blow-up, "
                f"~{seconds:.0f}s at the calibrated unit cost)",
                "enable blocking (token, sorted-neighbourhood, or "
                "minhash_lsh) or partition the table before resolving",
            )
        )
    degenerate = (
        profile.strategy != "full_pairs"
        and rows > 0
        and (
            profile.small_table_cutoff >= rows
            or (profile.strategy == "sorted_neighbourhood"
                and profile.window >= rows)
            or (profile.strategy == "token"
                and profile.max_block_size >= rows)
        )
    )
    if degenerate and pairs > PAIR_WARNING_LIMIT:
        findings.append(
            cc(
                "CC003",
                "dataflow",
                node,
                f"blocking is configured but degenerates to full pairs at "
                f"~{rows:.0f} rows (~{pairs:.0f} candidate pairs): the "
                f"cutoff/window/block-size bound never binds",
                "lower small_table_cutoff / window / max_block_size "
                "below the expected table size",
            )
        )
    pooled = len(ctx.planned_sources)
    if pooled >= CROSS_SOURCE_MIN and pairs > PAIR_WARNING_LIMIT:
        findings.append(
            cc(
                "CC004",
                "dataflow",
                node,
                f"{pooled} sources pool ~{rows:.0f} rows into one "
                f"resolve (~{pairs:.0f} candidate pairs): cross-source "
                f"pair growth is quadratic in the union",
                "resolve per source or per blocking key "
                "(scale.partitioned_resolve) and merge clusters",
            )
        )
    return findings


def _fuse_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    # Fusion touches every claim of every cluster: rows x width cells.
    # Output cardinality shrinks toward distinct entities; with k
    # overlapping sources the duplication factor is at most k.
    k = max(len(ctx.planned_sources), 1)
    return CardinalityEstimate(
        rows=incoming.rows / k,
        work=incoming.rows * ctx.target_width,
        confidence=incoming.confidence,
        detail=f"duplication factor <= {k}",
    )


def _repair_estimate(
    ctx: CostContext, sub: str | None, incoming: CardinalityEstimate
) -> CardinalityEstimate:
    width = ctx.target_width
    work = incoming.rows * width
    if ctx.discover_constraints:
        work += incoming.rows * width * width
    return replace(incoming, rows=incoming.rows, work=work, access_cost=0.0)


def _repair_check(
    ctx: CostContext, sub: str | None, estimate: CardinalityEstimate
) -> list[Diagnostic]:
    if not ctx.discover_constraints:
        return []
    width = ctx.target_width
    discovery_work = estimate.rows * width * width
    if discovery_work <= FD_WORK_LIMIT:
        return []
    return [
        cc(
            "CC008",
            "dataflow",
            "repair",
            f"constraint discovery over ~{estimate.rows:.0f} fused rows "
            f"x {width:.0f}^2 candidate dependencies "
            f"(~{discovery_work:.0f} work units) dominates repair",
            "mine constraints offline on a sample, or disable "
            "discover_constraints for this plan",
        )
    ]


#: Signature registry, keyed on the node-kind prefix (before ``:``).
COST_SIGNATURES: Mapping[str, CostSignature] = {
    s.kind: s
    for s in (
        CostSignature("probe", "probe", "sampled rows",
                      estimate=_probe_estimate),
        CostSignature("plan", "planning", "plans",
                      estimate=lambda ctx, sub, incoming:
                      CardinalityEstimate(rows=0.0, work=1.0,
                                          confidence="exact")),
        CostSignature("acquire", "extraction", "rows",
                      estimate=_acquire_estimate, check=_acquire_check),
        CostSignature("match", "matching", "attribute pairs",
                      estimate=_match_estimate),
        CostSignature("mapping", "mapping", "attributes",
                      estimate=_mapping_estimate),
        CostSignature("mapped", "mapping", "cells",
                      estimate=_per_cell_estimate),
        CostSignature("quality", "quality", "cells",
                      estimate=_per_cell_estimate),
        CostSignature("select", "selection", "sources",
                      estimate=_select_estimate),
        CostSignature("translate", "mapping", "rows",
                      estimate=_translate_estimate),
        CostSignature("resolve", "resolution", "pair comparisons",
                      estimate=_resolve_estimate, check=_resolve_check),
        CostSignature("fuse", "fusion", "cells",
                      estimate=_fuse_estimate),
        CostSignature("repair", "repair", "cells",
                      estimate=_repair_estimate, check=_repair_check),
    )
}
