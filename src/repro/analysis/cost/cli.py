"""The cost-certifier CLI: ``python -m repro.analysis.cost``.

Three modes behind one entry point:

* **certify** (default) — discovers plan-building Python modules (each
  exposing a zero-argument ``build_wrangler()``), probes their sources
  (the cheap sample pass, so row hints are real), composes each plan,
  and certifies its estimated cost and cardinality with the
  :class:`~repro.analysis.cost.certifier.CostCertifier`; renders the
  per-node estimates plus ``CC`` findings as text or JSON.  The probe is
  the only data access — estimates are computed, never measured — so
  output is deterministic over an unchanged tree.
* ``--calibrate`` — fits per-operator unit costs from committed
  ``*.telemetry.json`` snapshots and reports the prediction error the
  fitted constants achieve (see :mod:`repro.analysis.cost.calibration`).
* ``--ratchet`` — compares fresh ``BENCH_*.json`` records against
  committed baselines and fails on any metric regressing past the
  tolerance (see :mod:`repro.analysis.cost.ratchet`).

Exit-code contract (identical to the other analysis CLIs):

* ``0`` — no error-severity finding (and, under ``--ratchet``, no
  regression);
* ``1`` — at least one error-severity finding or ratchet regression;
* ``2`` — the tool itself was misused (unknown path, unimportable
  module, an explicitly named file without an entry point).
"""

from __future__ import annotations

import argparse
import importlib.util
import itertools
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.cost.calibration import calibrate
from repro.analysis.cost.certifier import CostCertifier, PlanCostReport
from repro.analysis.cost.ratchet import (
    DEFAULT_TOLERANCE,
    orphan_baselines,
    run_ratchet,
)
from repro.analysis.cost.rules import COST_RULES
from repro.analysis.report import render
from repro.errors import AnalysisError

__all__ = ["CostCheckResult", "check_module", "check_paths", "main"]

_module_counter = itertools.count(1)

#: The conventional zero-argument plan-module entry point.
DEFAULT_ENTRY = "build_wrangler"


@dataclass(frozen=True)
class CostCheckResult:
    """Cost reports and findings plus the coverage counters."""

    diagnostics: tuple[Diagnostic, ...]
    reports: tuple[tuple[str, PlanCostReport], ...]
    checked_plans: int
    skipped: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """No error-severity finding (over-budget or quadratic plan)."""
        return not has_errors(self.diagnostics)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _import_module(path: Path):
    name = f"_repro_cost_plan_{next(_module_counter)}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise AnalysisError(f"cannot load module from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    # Arbitrary user plan modules can fail arbitrarily at import time;
    # every failure becomes the CLI's misuse exit code.
    except Exception as failure:  # repro: noqa[REP002]
        sys.modules.pop(name, None)
        raise AnalysisError(f"cannot import {path}: {failure}") from failure
    return module


def check_module(
    path: Path,
    entry: str = DEFAULT_ENTRY,
    certifier: CostCertifier | None = None,
) -> CostCheckResult | None:
    """Cost-certify the plan one module builds; ``None`` when it has no
    ``entry`` callable (not a plan module)."""
    module = _import_module(path)
    build = getattr(module, entry, None)
    if build is None or not callable(build):
        return None
    try:
        wrangler = build()
        flow = wrangler.flow
        flow.pull("probe")
        plan = wrangler.planner.plan(
            wrangler.user,
            wrangler.data,
            wrangler.registry,
            wrangler.working.annotations,
        )
        report = (certifier or CostCertifier()).check(
            plan=plan,
            user=wrangler.user,
            registry=wrangler.registry,
            dataflow=flow,
            budget=getattr(wrangler, "_cost_budget", None),
            discover_constraints=getattr(
                wrangler, "discover_constraints", False
            ),
        )
    except AnalysisError:
        raise
    # A user-supplied build_wrangler() can fail arbitrarily; fold it
    # into the CLI's misuse exit code rather than a traceback.
    except Exception as failure:  # repro: noqa[REP002]
        raise AnalysisError(
            f"cost certification of {path} failed: {failure}"
        ) from failure
    findings = [
        Diagnostic(
            d.rule,
            d.severity,
            Location(
                f"{path}::{d.location.file}",
                line=d.location.line,
                column=d.location.column,
                node=d.location.node,
            ),
            d.message,
            d.fix_hint,
        )
        for d in report.diagnostics(min_severity=Severity.INFO)
    ]
    return CostCheckResult(
        tuple(findings),
        ((str(path), report),),
        checked_plans=1,
        skipped=(),
    )


def _discover(paths: Sequence[str]) -> tuple[list[Path], list[Path]]:
    """(explicit files, directory-discovered files) under ``paths``."""
    explicit: list[Path] = []
    discovered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            discovered.extend(
                p for p in sorted(path.rglob("*.py"))
                if p.stem != "__init__"
            )
        elif path.is_file():
            explicit.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return explicit, discovered


def check_paths(
    paths: Sequence[str], entry: str = DEFAULT_ENTRY
) -> CostCheckResult:
    """Cost-certify every plan module under the given paths.

    Directory-discovered files without the entry point are skipped and
    listed in ``skipped``; an explicitly named file without one is a
    usage error.
    """
    explicit, discovered = _discover(paths)
    certifier = CostCertifier()
    diagnostics: list[Diagnostic] = []
    reports: list[tuple[str, PlanCostReport]] = []
    checked = 0
    skipped: list[str] = []
    for path in explicit:
        result = check_module(path, entry=entry, certifier=certifier)
        if result is None:
            raise AnalysisError(
                f"{path} defines no {entry}() entry point"
            )
        diagnostics.extend(result.diagnostics)
        reports.extend(result.reports)
        checked += 1
    for path in discovered:
        result = check_module(path, entry=entry, certifier=certifier)
        if result is None:
            skipped.append(str(path))
            continue
        diagnostics.extend(result.diagnostics)
        reports.extend(result.reports)
        checked += 1
    return CostCheckResult(
        tuple(sort_diagnostics(diagnostics)),
        tuple(reports),
        checked_plans=checked,
        skipped=tuple(skipped),
    )


def _cost_block(result: CostCheckResult) -> str:
    """The per-plan node→estimate table appended to the text report."""
    lines = ["cost certification:"]
    for path, report in result.reports:
        budget = (
            "unbounded" if report.budget is None
            else f"{report.budget:.2f}"
        )
        lines.append(f"  {path} (budget {budget})")
        names = sorted(report.estimates)
        width = max((len(name) for name in names), default=0)
        for name in names:
            estimate = report.estimates[name]
            lines.append(
                f"    {name:<{width}}  rows={estimate.rows:>8.1f}  "
                f"work={estimate.work:>10.1f}  "
                f"access={estimate.access_cost:>7.2f}  "
                f"[{estimate.confidence}]"
            )
        verdict = "OVER BUDGET" if report.over_budget else "within budget"
        lines.append(
            f"    total: access={report.total_access_cost:.2f} "
            f"work={report.total_work:.1f} "
            f"predicted={report.predicted_seconds:.4f}s ({verdict})"
        )
    return "\n".join(lines)


def _render_json(result: CostCheckResult) -> str:
    payload = {
        "plans": [
            {"path": path, **report.to_dict()}
            for path, report in result.reports
        ],
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "summary": {
            "checked_plans": result.checked_plans,
            "over_budget": [
                path for path, report in result.reports
                if report.over_budget
            ],
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalogue() -> str:
    lines = []
    for rule_id in sorted(COST_RULES):
        registered = COST_RULES[rule_id]
        lines.append(
            f"{rule_id}  {registered.name:<32} "
            f"{registered.severity.value:<8} {registered.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.cost",
        description=(
            "repro cost & cardinality certifier: propagates row and "
            "cost estimates through each plan's dataflow, checks them "
            "against declared budgets, calibrates the model from "
            "telemetry, and ratchets benchmark baselines"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=(
            "plan modules or directories to certify (default: examples); "
            "with --calibrate, telemetry snapshots or directories "
            "(default: benchmarks/results)"
        ),
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--entry", default=DEFAULT_ENTRY,
        help=f"plan-module entry point (default: {DEFAULT_ENTRY})",
    )
    parser.add_argument(
        "--calibrate", action="store_true",
        help="fit per-operator unit costs from telemetry snapshots",
    )
    parser.add_argument(
        "--ratchet", action="store_true",
        help="compare fresh BENCH_*.json records against baselines",
    )
    parser.add_argument(
        "--baseline", default="benchmarks/results",
        help="ratchet baseline directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--fresh", default="benchmarks/results",
        help="ratchet fresh-results directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=(
            "relative regression allowed before the ratchet fails "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--check-baselines", metavar="BENCHMARKS_DIR", default=None,
        help=(
            "with --ratchet: additionally fail if any baseline under "
            "--baseline has no generating benchmark (its experiment "
            "name appears in no bench_*.py under BENCHMARKS_DIR)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the CC rule catalogue and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_rule_catalogue() + "\n")
        return 0

    if args.ratchet:
        try:
            report = run_ratchet(
                args.fresh, args.baseline, tolerance=args.tolerance
            )
            orphans = (
                orphan_baselines(args.baseline, args.check_baselines)
                if args.check_baselines is not None
                else []
            )
        except AnalysisError as failure:
            sys.stderr.write(f"error: {failure}\n")
            return 2
        if args.format == "json":
            payload = report.to_dict()
            if args.check_baselines is not None:
                payload["orphan_baselines"] = orphans
                payload["ok"] = report.ok and not orphans
            sys.stdout.write(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        else:
            sys.stdout.write(report.render() + "\n")
            for orphan in orphans:
                sys.stdout.write(
                    f"orphan baseline: {orphan} has no generating "
                    f"benchmark under {args.check_baselines}\n"
                )
        if orphans:
            return 1
        return report.exit_code

    if args.calibrate:
        try:
            report = calibrate(args.paths or ["benchmarks/results"])
        except AnalysisError as failure:
            sys.stderr.write(f"error: {failure}\n")
            return 2
        findings = sort_diagnostics(report.diagnostics())
        if args.format == "json":
            payload = report.to_dict()
            payload["diagnostics"] = [d.to_dict() for d in findings]
            sys.stdout.write(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        else:
            sys.stdout.write(report.render() + "\n")
            for finding in findings:
                sys.stdout.write(finding.render() + "\n")
        return 1 if has_errors(findings) else 0

    try:
        result = check_paths(args.paths or ["examples"], entry=args.entry)
    except AnalysisError as failure:
        sys.stderr.write(f"error: {failure}\n")
        return 2
    for path in result.skipped:
        sys.stderr.write(f"note: {path}: no {args.entry}(), skipped\n")
    if args.format == "json":
        sys.stdout.write(_render_json(result) + "\n")
    else:
        report = render(
            result.diagnostics, "text", checked_files=result.checked_plans
        )
        sys.stdout.write(report + "\n")
        sys.stdout.write(_cost_block(result) + "\n")
    return result.exit_code
