"""Cost & cardinality certification: how much will this plan spend?

The sixth leg of the analysis subsystem (after the plan validator, the
framework linter, the schema-flow typechecker, the purity certifier,
and the parallel-safety certifier): a static cost model that propagates
a :class:`~repro.analysis.cost.model.CardinalityEstimate` — rows,
per-stage work, access cost in ``cost_per_access`` units — through a
plan's dataflow topology, flags statically-predictable super-linear
stages (the quadratic ER wall, degenerate blocking, cross-source
joins), and refuses plans whose estimated spend exceeds the budget
declared via ``Wrangler.budget(...)``.  Rule ids are ``CC0xx``;
findings flow through the shared
:class:`~repro.analysis.diagnostics.Diagnostic` engine and into
``run_preflight``.

Two feedback loops keep the model honest: ``--calibrate`` fits
per-operator unit costs from committed telemetry snapshots and reports
their prediction error, and ``--ratchet`` gates fresh ``BENCH_*.json``
runs against committed baselines.

Run it standalone as ``python -m repro.analysis.cost examples``.
"""

from repro.analysis.cost.calibration import (
    CalibrationReport,
    StageFit,
    calibrate,
)
from repro.analysis.cost.certifier import (
    CostCertifier,
    PlanCostReport,
    check_plan_cost,
)
from repro.analysis.cost.model import (
    CardinalityEstimate,
    CostSignature,
    ResolutionProfile,
    UNIT_COSTS,
    estimated_pairs,
)
from repro.analysis.cost.ratchet import (
    RatchetEntry,
    RatchetReport,
    run_ratchet,
)
from repro.analysis.cost.rules import COST_RULES, CostRule

__all__ = [
    "CalibrationReport",
    "CardinalityEstimate",
    "CostCertifier",
    "CostRule",
    "CostSignature",
    "COST_RULES",
    "PlanCostReport",
    "RatchetEntry",
    "RatchetReport",
    "ResolutionProfile",
    "StageFit",
    "UNIT_COSTS",
    "calibrate",
    "check_plan_cost",
    "estimated_pairs",
    "run_ratchet",
]
