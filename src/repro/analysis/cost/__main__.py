"""``python -m repro.analysis.cost`` — the cost-certifier CLI."""

import sys

from repro.analysis.cost.cli import main

if __name__ == "__main__":
    sys.exit(main())
