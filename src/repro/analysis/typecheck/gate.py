"""The pre-execution gate: structure + types + purity + parallelism.

``Wrangler.run(validate=True)`` funnels through :func:`run_preflight`,
which folds the plan validator's structural findings (``PV0xx``), the
schema-flow checker's type findings (``TC001``–``TC009``), the purity
certifier's node verdicts (``TC010``), the parallel-safety certifier's
race findings (``PX0xx``), and the cost certifier's budget and
cardinality findings (``CC0xx``) into one
:class:`~repro.analysis.validator.ValidationReport` — so a plan is
refused for a dangling dependency, an untypable mapping, an
uncertifiable node, a racy node body, or an over-budget estimate
through exactly the same machinery.  The combined report is
deduplicated and stably ordered: five gates can flag one node, but each
exact finding appears once.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    dedupe_diagnostics,
    sort_diagnostics,
)
from repro.analysis.typecheck.checker import SchemaFlowChecker
from repro.analysis.typecheck.purity import PurityAnalyser, PurityVerdict
from repro.analysis.typecheck.signatures import tc
from repro.analysis.validator import PlanValidator, ValidationReport

__all__ = ["run_preflight", "purity_diagnostics", "probe_artifacts"]

#: WorkingData key prefix under which the wrangler files probe artifacts.
PROBE_PREFIX = "probe/"


def probe_artifacts(
    working: Any,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """The per-source probe schemas and mappings filed on a blackboard.

    Reads the ``schema``/``mapping`` categories of a
    :class:`~repro.model.workingdata.WorkingData`, keeping only keys with
    the ``probe/`` prefix (the wrangler's convention for statically
    usable probe artifacts) and stripping it.
    """
    schemas: dict[str, Any] = {}
    mappings: dict[str, Any] = {}
    if working is None or not hasattr(working, "items"):
        return schemas, mappings
    for key, value in working.items("schema"):
        if key.startswith(PROBE_PREFIX):
            schemas[key[len(PROBE_PREFIX):]] = value
    for key, value in working.items("mapping"):
        if key.startswith(PROBE_PREFIX):
            mappings[key[len(PROBE_PREFIX):]] = value
    return schemas, mappings


def purity_diagnostics(
    verdicts: Mapping[str, PurityVerdict],
) -> list[Diagnostic]:
    """``TC010`` findings for the non-pure entries of a verdict map.

    Impure nodes are errors (the engine must not cache or replay them);
    unlocatable (``unknown``) nodes are warnings — no certificate could
    be issued, which is worth hearing about but not fatal.
    """
    findings = []
    for name, verdict in sorted(verdicts.items()):
        if verdict.is_pure:
            continue
        severity = (
            Severity.ERROR if verdict.status == "impure" else Severity.WARNING
        )
        detail = "; ".join(verdict.reasons) or "no reason recorded"
        findings.append(
            tc(
                "TC010",
                "dataflow",
                name,
                f"node {name!r} failed purity certification "
                f"({verdict.status}): {detail}",
                "route side effects through repro.obs or working data",
                severity=severity,
            )
        )
    return findings


def run_preflight(
    plan: Any = None,
    user: Any = None,
    data: Any = None,
    registry: Any = None,
    dataflow: Any = None,
    working: Any = None,
    source_schemas: Mapping[str, Any] | None = None,
    mappings: Mapping[str, Any] | Iterable[Any] | None = None,
    master_key: str | None = None,
    date_attribute: str | None = None,
    comparators: Sequence[Any] = (),
    certify: bool = True,
    analyser: PurityAnalyser | None = None,
    parallel_analyser: Any = None,
    cost_budget: float | None = None,
    discover_constraints: bool = False,
) -> ValidationReport:
    """Run the full pre-execution gate and fold findings into one report.

    Probe artifacts come from ``source_schemas``/``mappings`` when given
    explicitly, falling back to the ``probe/``-prefixed entries of
    ``working``.  ``certify=False`` skips purity and parallel-safety
    certification (the other two gates still run).  When both a plan and
    a registry are supplied, the cost certifier also runs: per-node
    estimates are propagated through the dataflow (annotating it for
    telemetry) and ``CC`` findings at warning severity or worse — an
    estimate over the ``cost_budget`` declared via ``Wrangler.budget()``
    is an error — join the report.
    """
    filed_schemas, filed_mappings = probe_artifacts(working)
    if source_schemas is None:
        source_schemas = filed_schemas
    if mappings is None:
        mappings = filed_mappings

    validator_report = PlanValidator().validate(
        plan=plan,
        user=user,
        data=data,
        registry=registry,
        dataflow=dataflow,
        master_key=master_key,
        date_attribute=date_attribute,
    )
    findings: list[Diagnostic] = list(validator_report.diagnostics)

    findings.extend(
        SchemaFlowChecker().check(
            plan=plan,
            user=user,
            dataflow=dataflow,
            source_schemas=source_schemas,
            mappings=mappings,
            registry=registry,
            date_attribute=date_attribute,
            comparators=comparators,
        )
    )

    if certify and dataflow is not None and hasattr(dataflow, "certify"):
        verdicts = dataflow.certify(analyser=analyser or PurityAnalyser())
        findings.extend(purity_diagnostics(verdicts))

    if (
        certify
        and dataflow is not None
        and hasattr(dataflow, "certify_parallel")
    ):
        from repro.analysis.parallel import (
            ParallelAnalyser,
            parallel_diagnostics,
        )

        certificates = dataflow.certify_parallel(
            analyser=parallel_analyser or ParallelAnalyser()
        )
        findings.extend(parallel_diagnostics(certificates))

    if plan is not None and registry is not None:
        from repro.analysis.cost import check_plan_cost

        cost_report = check_plan_cost(
            plan=plan,
            user=user,
            registry=registry,
            dataflow=dataflow,
            budget=cost_budget,
            discover_constraints=discover_constraints,
        )
        findings.extend(
            cost_report.diagnostics(min_severity=Severity.WARNING)
        )

    return ValidationReport(
        tuple(sort_diagnostics(dedupe_diagnostics(findings)))
    )
