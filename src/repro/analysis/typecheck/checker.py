"""The schema-flow type checker.

Walks a wrangle plan's dataflow topology — reusing the
:class:`~repro.core.dataflow.Dataflow` graph when one is supplied, never
re-deriving it — and threads statically inferred
:class:`~repro.model.schema.Schema` objects from node to node.  Each
node is dispatched to its :class:`~repro.analysis.typecheck.signatures.
OperatorSignature`, which checks the boundary and infers the outgoing
schema, so a mapping that reads a column its source never exposes, an ER
rule keyed on a transient type, or a fusion override no mapping can feed
all surface as ``TC`` diagnostics *before* any record flows.

Everything is duck-typed (plans, schemas, mappings, dataflows), matching
the plan validator's contract: tests can feed hand-built stand-ins, and
this module never imports :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, sort_diagnostics
from repro.analysis.typecheck.signatures import (
    SIGNATURES,
    CheckContext,
)

__all__ = ["SchemaFlowChecker", "check_schema_flow"]


class SchemaFlowChecker:
    """Static schema propagation over a plan's dataflow topology."""

    def check(
        self,
        plan: Any,
        user: Any = None,
        dataflow: Any = None,
        source_schemas: Mapping[str, Any] | None = None,
        mappings: Mapping[str, Any] | Iterable[Any] | None = None,
        registry: Any = None,
        date_attribute: str | None = None,
        comparators: Sequence[Any] = (),
    ) -> list[Diagnostic]:
        """All ``TC001``–``TC009`` findings for one plan.

        ``source_schemas`` maps source name to its probed schema and
        ``mappings`` source name to its probe mapping (an iterable of
        mapping objects is also accepted and keyed by ``source_name``).
        ``dataflow`` supplies the walk order; without one, the wrangler's
        canonical pipeline shape is synthesised from the plan's sources.
        """
        context = self._build_context(
            plan,
            user,
            source_schemas or {},
            self._keyed_mappings(mappings),
            registry,
            date_attribute,
            comparators,
        )
        order, dependencies = self._topology(dataflow, context)
        schemas: dict[str, Any] = {}
        findings: list[Diagnostic] = []
        for name in order:
            kind, _, suffix = name.partition(":")
            signature = SIGNATURES.get(kind)
            if signature is None:
                schemas[name] = self._first_input_schema(
                    name, dependencies, schemas
                )
                continue
            sub = suffix or None
            input_schema = self._first_input_schema(
                name, dependencies, schemas
            )
            findings.extend(signature.check(context, sub, input_schema))
            schemas[name] = signature.infer(context, sub, input_schema)
        return sort_diagnostics(findings)

    # -- context ---------------------------------------------------------

    @staticmethod
    def _keyed_mappings(
        mappings: Mapping[str, Any] | Iterable[Any] | None,
    ) -> dict[str, Any]:
        if mappings is None:
            return {}
        if isinstance(mappings, Mapping):
            return dict(mappings)
        return {
            getattr(m, "source_name", f"mapping-{i}"): m
            for i, m in enumerate(mappings)
        }

    @staticmethod
    def _build_context(
        plan: Any,
        user: Any,
        source_schemas: Mapping[str, Any],
        mappings: Mapping[str, Any],
        registry: Any,
        date_attribute: str | None,
        comparators: Sequence[Any],
    ) -> CheckContext:
        target_schema = getattr(user, "target_schema", None)
        planned = tuple(getattr(plan, "sources", ()) or ())
        produced: set[str] = set()
        coverage_complete = bool(planned)
        for name in planned:
            mapping = mappings.get(name)
            schema = source_schemas.get(name)
            if mapping is None or schema is None:
                coverage_complete = False
                continue
            for attribute_map in getattr(mapping, "attribute_maps", ()):
                if attribute_map.source not in schema:
                    continue
                if (
                    target_schema is not None
                    and attribute_map.target not in target_schema
                ):
                    continue
                produced.add(attribute_map.target)
        names: frozenset[str] = frozenset()
        if registry is not None:
            names = frozenset(
                registry.names() if hasattr(registry, "names") else registry
            )
        return CheckContext(
            plan=plan,
            target_schema=target_schema,
            source_schemas=dict(source_schemas),
            mappings=dict(mappings),
            registry_names=names,
            date_attribute=date_attribute,
            comparators=tuple(comparators),
            produced=frozenset(produced),
            coverage_complete=coverage_complete,
        )

    # -- topology --------------------------------------------------------

    def _topology(
        self, dataflow: Any, context: CheckContext
    ) -> tuple[list[str], dict[str, tuple[str, ...]]]:
        """The walk order and dependency map: the dataflow's own graph
        when available, the wrangler's canonical shape otherwise."""
        if dataflow is not None and hasattr(dataflow, "dependency_map"):
            dependencies = {
                name: tuple(deps)
                for name, deps in dataflow.dependency_map().items()
            }
            if hasattr(dataflow, "nodes"):
                order = list(dataflow.nodes())
            else:
                order = self._toposort(dependencies)
            return order, dependencies
        return self._synthetic_topology(context)

    @staticmethod
    def _synthetic_topology(
        context: CheckContext,
    ) -> tuple[list[str], dict[str, tuple[str, ...]]]:
        dependencies: dict[str, tuple[str, ...]] = {
            "probe": (),
            "plan": ("probe",),
        }
        mapped_nodes = []
        for name in context.planned_sources:
            dependencies[f"acquire:{name}"] = ("plan",)
            dependencies[f"match:{name}"] = (f"acquire:{name}",)
            dependencies[f"mapping:{name}"] = (f"match:{name}",)
            dependencies[f"mapped:{name}"] = (
                f"acquire:{name}",
                f"mapping:{name}",
            )
            dependencies[f"quality:{name}"] = (f"mapped:{name}",)
            mapped_nodes.append(f"mapped:{name}")
        dependencies["select"] = tuple(
            f"quality:{name}" for name in context.planned_sources
        ) or ("plan",)
        dependencies["translate"] = ("select", *mapped_nodes)
        dependencies["resolve"] = ("translate",)
        dependencies["fuse"] = ("resolve",)
        dependencies["repair"] = ("fuse",)
        return SchemaFlowChecker._toposort(dependencies), dependencies

    @staticmethod
    def _toposort(
        dependencies: Mapping[str, Sequence[str]],
    ) -> list[str]:
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done or name in visiting:
                return  # cycles/dangling edges are PV001/PV002's business
            visiting.add(name)
            for dep in dependencies.get(name, ()):
                if dep in dependencies:
                    visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in sorted(dependencies):
            visit(name)
        return order

    @staticmethod
    def _first_input_schema(
        name: str,
        dependencies: Mapping[str, Sequence[str]],
        schemas: Mapping[str, Any],
    ) -> Any:
        """The schema flowing into ``name``: its first dependency that
        inferred one (the wrangler wires exactly one table-bearing edge
        per node)."""
        for dep in dependencies.get(name, ()):
            schema = schemas.get(dep)
            if schema is not None:
                return schema
        return None


def check_schema_flow(**artifacts: Any) -> list[Diagnostic]:
    """Convenience wrapper: ``SchemaFlowChecker().check(**artifacts)``."""
    return SchemaFlowChecker().check(**artifacts)
