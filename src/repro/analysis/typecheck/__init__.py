"""Schema-flow type checking and purity certification for wrangle plans.

The third leg of :mod:`repro.analysis`, alongside the plan validator and
the framework linter:

* :mod:`~repro.analysis.typecheck.signatures` — the operator-signature
  registry: what every pipeline stage consumes and produces, schema-wise;
* :mod:`~repro.analysis.typecheck.checker` — propagates
  :class:`~repro.model.schema.Schema` objects through a plan's dataflow
  topology without executing it (rule ids ``TC001``–``TC009``);
* :mod:`~repro.analysis.typecheck.purity` — AST-based certification of
  dataflow node callables as pure (``TC010``), so the engine can refuse
  to cache or replay what it cannot certify;
* :mod:`~repro.analysis.typecheck.gate` — :func:`run_preflight`, the
  combined structure + types + purity gate behind
  ``Wrangler.run(validate=True)``;
* :mod:`~repro.analysis.typecheck.cli` — ``python -m
  repro.analysis.typecheck``, the lint CLI's exit-code contract over
  plan-building modules.
"""

from repro.analysis.typecheck.checker import (
    SchemaFlowChecker,
    check_schema_flow,
)
from repro.analysis.typecheck.gate import (
    probe_artifacts,
    purity_diagnostics,
    run_preflight,
)
from repro.analysis.typecheck.purity import (
    PurityAnalyser,
    PurityVerdict,
    certify_callable,
)
from repro.analysis.typecheck.rules import TYPECHECK_RULES, TypeRule
from repro.analysis.typecheck.signatures import (
    SIGNATURES,
    CheckContext,
    OperatorSignature,
)

__all__ = [
    "SchemaFlowChecker",
    "check_schema_flow",
    "probe_artifacts",
    "purity_diagnostics",
    "run_preflight",
    "PurityAnalyser",
    "PurityVerdict",
    "certify_callable",
    "TYPECHECK_RULES",
    "TypeRule",
    "SIGNATURES",
    "CheckContext",
    "OperatorSignature",
]
