"""The operator-signature registry: what each pipeline stage consumes
and produces, schema-wise.

Every dataflow node kind the wrangler composes (``acquire``, ``match``,
``mapping``, ``mapped``, ``translate``, ``resolve``, ``fuse``, ...) gets
an :class:`OperatorSignature` declaring — *without executing anything* —
which attributes and :class:`~repro.model.schema.DataType`\\ s the stage
consumes from its input schema, what schema it emits, and which ``TC``
rules guard the boundary.  The checker in
:mod:`repro.analysis.typecheck.checker` walks the plan's dataflow
topology and dispatches each node to its signature, threading inferred
schemas stage to stage.

Signatures are duck-typed like the plan validator: they read declared
structure (plans, schemas, probe mappings) and never touch live data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.typecheck.rules import TYPECHECK_RULES
from repro.fusion.strategies import STRATEGY_VALUE_DOMAINS
from repro.model.schema import (
    Coercibility,
    DataType,
    Schema,
    static_coercibility,
)
from repro.resolution.comparison import MEASURE_DOMAINS, TRANSIENT_DTYPES

__all__ = ["CheckContext", "OperatorSignature", "SIGNATURES", "tc"]


def tc(
    rule: str,
    artifact: str,
    node: str,
    message: str,
    fix_hint: str = "",
    severity: Severity | None = None,
) -> Diagnostic:
    """A ``TC`` diagnostic with the catalogue severity (overridable)."""
    registered = TYPECHECK_RULES[rule]
    return Diagnostic(
        rule,
        severity or registered.severity,
        Location(artifact, node=node),
        message,
        fix_hint,
    )


@dataclass
class CheckContext:
    """Everything a signature may consult while checking one plan.

    ``source_schemas`` and ``mappings`` are the probe artifacts (keyed by
    source name); ``produced`` is the set of target attributes at least
    one selected source's mapping populates, and ``coverage_complete``
    records whether *every* selected source contributed a mapping — the
    produced-attribute rules (TC007/TC009) only fire when it did, so a
    missing probe degrades to silence, never to a false alarm.
    """

    plan: Any = None
    target_schema: Any = None
    source_schemas: Mapping[str, Any] = field(default_factory=dict)
    mappings: Mapping[str, Any] = field(default_factory=dict)
    registry_names: frozenset[str] = frozenset()
    date_attribute: str | None = None
    comparators: Sequence[Any] = ()
    produced: frozenset[str] = frozenset()
    coverage_complete: bool = False

    @property
    def planned_sources(self) -> tuple[str, ...]:
        return tuple(getattr(self.plan, "sources", ()) or ())

    def target_dtype(self, name: str) -> DataType | None:
        schema = self.target_schema
        attribute = schema.get(name) if schema is not None else None
        return attribute.dtype if attribute is not None else None


@dataclass(frozen=True)
class OperatorSignature:
    """One dataflow node kind's static contract.

    ``check`` returns the diagnostics for one node of this kind;
    ``infer`` returns the schema the node emits (``None`` when the node
    carries control state rather than a table).  Both receive the
    context, the node's qualifying suffix (the source name for per-source
    nodes), and the schema inferred for the node's table-bearing input.
    """

    kind: str
    stage: str
    consumes: str
    produces: str
    rules: tuple[str, ...] = ()
    check: Callable[
        [CheckContext, str | None, Any], list[Diagnostic]
    ] = lambda ctx, sub, input_schema: []
    infer: Callable[
        [CheckContext, str | None, Any], Any
    ] = lambda ctx, sub, input_schema: None


# -- per-kind checks ------------------------------------------------------


def _check_acquire(
    ctx: CheckContext, sub: str | None, input_schema: Any
) -> list[Diagnostic]:
    if sub is None or sub not in ctx.planned_sources:
        return []
    if sub in ctx.source_schemas:
        return []
    return [
        tc(
            "TC001",
            "extraction",
            sub,
            f"selected source {sub!r} has no statically inferable schema: "
            "type checks for its mapping chain are suppressed",
            "probe the source (or pass its schema) before type checking",
        )
    ]


def _infer_acquire(
    ctx: CheckContext, sub: str | None, input_schema: Any
) -> Any:
    return ctx.source_schemas.get(sub) if sub is not None else None


def _check_match(
    ctx: CheckContext, sub: str | None, input_schema: Any
) -> list[Diagnostic]:
    """TC003: matched attribute pairs whose DataTypes can never coerce."""
    mapping = ctx.mappings.get(sub) if sub is not None else None
    schema = input_schema if input_schema is not None else (
        ctx.source_schemas.get(sub) if sub is not None else None
    )
    if mapping is None or schema is None or ctx.target_schema is None:
        return []
    findings = []
    for attribute_map in getattr(mapping, "attribute_maps", ()):
        source_attr = schema.get(attribute_map.source)
        target_attr = ctx.target_schema.get(attribute_map.target)
        if source_attr is None or target_attr is None:
            continue  # TC002's business at the mapping node
        if getattr(attribute_map, "transform", None) is not None:
            continue  # the transform rewrites the type: TC004's business
        verdict = static_coercibility(source_attr.dtype, target_attr.dtype)
        if verdict is Coercibility.NEVER:
            findings.append(
                tc(
                    "TC003",
                    "matching",
                    f"{sub}.{attribute_map.source}->{attribute_map.target}",
                    f"matched {sub}.{attribute_map.source} "
                    f"({source_attr.dtype.value}) to "
                    f"{attribute_map.target} ({target_attr.dtype.value}): "
                    "these DataTypes never coerce, every mapped value "
                    "would fail type inference",
                    "drop the correspondence or add a converting transform",
                )
            )
    return findings


def _check_mapping(
    ctx: CheckContext, sub: str | None, input_schema: Any
) -> list[Diagnostic]:
    """TC002 (reads missing attribute) and TC004 (transform types)."""
    mapping = ctx.mappings.get(sub) if sub is not None else None
    schema = input_schema if input_schema is not None else (
        ctx.source_schemas.get(sub) if sub is not None else None
    )
    if mapping is None:
        return []
    findings = []
    for attribute_map in getattr(mapping, "attribute_maps", ()):
        source_dtype: DataType | None = None
        if schema is not None:
            source_attr = schema.get(attribute_map.source)
            if source_attr is None:
                findings.append(
                    tc(
                        "TC002",
                        "mapping",
                        f"{sub}.{attribute_map.source}",
                        f"mapping for {sub!r} reads attribute "
                        f"{attribute_map.source!r} absent from the inferred "
                        f"source schema "
                        f"(has: {sorted(schema.names)}); the mapped "
                        f"{attribute_map.target!r} column would be "
                        "all-missing",
                        "re-match the source or fix the attribute name",
                    )
                )
                continue
            source_dtype = source_attr.dtype
        findings.extend(
            _check_transform(ctx, sub, attribute_map, source_dtype)
        )
    return findings


def _check_transform(
    ctx: CheckContext,
    sub: str | None,
    attribute_map: Any,
    source_dtype: DataType | None,
) -> list[Diagnostic]:
    transform = getattr(attribute_map, "transform", None)
    if transform is None:
        return []
    name = getattr(transform, "name", None) or getattr(
        transform, "__name__", "transform"
    )
    node = f"{sub}.{attribute_map.source}->{attribute_map.target}"
    findings = []
    input_dtypes = getattr(transform, "input_dtypes", None)
    if (
        source_dtype is not None
        and input_dtypes is not None
        and source_dtype not in input_dtypes
    ):
        findings.append(
            tc(
                "TC004",
                "mapping",
                node,
                f"transform {name!r} applied to "
                f"{sub}.{attribute_map.source} ({source_dtype.value}) but "
                "its declared input domain is "
                f"{sorted(d.value for d in input_dtypes)}",
                "pick a transform whose domain covers the source type",
            )
        )
    output_dtype = getattr(transform, "output_dtype", None)
    target_dtype = ctx.target_dtype(attribute_map.target)
    if (
        output_dtype is not None
        and target_dtype is not None
        and static_coercibility(output_dtype, target_dtype)
        is Coercibility.NEVER
    ):
        findings.append(
            tc(
                "TC004",
                "mapping",
                node,
                f"transform {name!r} produces {output_dtype.value} values "
                f"but target {attribute_map.target!r} needs "
                f"{target_dtype.value}, which they never coerce to",
                "use a transform producing the target's type",
            )
        )
    return findings


def _infer_target(ctx: CheckContext, sub: str | None, input_schema: Any) -> Any:
    return ctx.target_schema


def _passthrough(ctx: CheckContext, sub: str | None, input_schema: Any) -> Any:
    return input_schema


def _check_resolve(
    ctx: CheckContext, sub: str | None, input_schema: Any
) -> list[Diagnostic]:
    """TC005/TC006: ER comparison keys against the resolved schema."""
    schema = input_schema if input_schema is not None else ctx.target_schema
    if schema is None:
        return []
    findings = []
    for name in getattr(ctx.plan, "er_attributes", ()) or ():
        attribute = schema.get(name)
        if attribute is None:
            findings.append(
                tc(
                    "TC005",
                    "resolution",
                    name,
                    f"ER comparison keyed on attribute {name!r} absent from "
                    f"the resolved schema (has: {sorted(schema.names)})",
                    "key comparisons on attributes the translation emits",
                )
            )
        elif attribute.dtype in TRANSIENT_DTYPES:
            findings.append(
                tc(
                    "TC006",
                    "resolution",
                    name,
                    f"ER comparison keyed on transient attribute {name!r} "
                    f"({attribute.dtype.value}): URL/DATE/CURRENCY values "
                    "name the observation, not the entity",
                    "exclude transient attributes from identity evidence",
                )
            )
    for comparator in ctx.comparators:
        fields = getattr(comparator, "fields", None)
        if fields is None and hasattr(comparator, "attribute"):
            fields = (comparator,)
        for comparator_field in fields or ():
            name = getattr(comparator_field, "attribute", None)
            measure = getattr(comparator_field, "measure", None)
            if name is None:
                continue
            attribute = schema.get(name)
            if attribute is None:
                findings.append(
                    tc(
                        "TC005",
                        "resolution",
                        name,
                        f"field comparator reads attribute {name!r} absent "
                        f"from the resolved schema "
                        f"(has: {sorted(schema.names)})",
                        "compare attributes the translation emits",
                    )
                )
                continue
            domain = MEASURE_DOMAINS.get(measure) if measure else None
            if domain is not None and attribute.dtype not in domain:
                findings.append(
                    tc(
                        "TC006",
                        "resolution",
                        f"{name}:{measure}",
                        f"measure {measure!r} on attribute {name!r} "
                        f"({attribute.dtype.value}) is outside its domain "
                        f"{sorted(d.value for d in domain)}: it scores 0.0 "
                        "on every pair",
                        "pick a measure whose domain covers the type",
                    )
                )
    return findings


def _check_fuse(
    ctx: CheckContext, sub: str | None, input_schema: Any
) -> list[Diagnostic]:
    """TC007/TC008/TC009: fusion configuration against produced attrs."""
    schema = input_schema if input_schema is not None else ctx.target_schema
    findings = []
    overrides = dict(getattr(ctx.plan, "fusion_overrides", None) or {})
    if ctx.coverage_complete:
        for attribute in sorted(overrides):
            if (
                schema is not None
                and attribute in schema
                and attribute not in ctx.produced
            ):
                findings.append(
                    tc(
                        "TC007",
                        "fusion",
                        f"fusion_overrides.{attribute}",
                        f"fusion override for {attribute!r} can never take "
                        "effect: no mapping of any selected source produces "
                        "that attribute",
                        "drop the override or re-match the sources",
                    )
                )
        recency_in_play = (
            getattr(ctx.plan, "fusion_strategy", None) == "recent"
            or "recent" in overrides.values()
        )
        if (
            recency_in_play
            and ctx.date_attribute is not None
            and schema is not None
            and ctx.date_attribute in schema
            and ctx.date_attribute not in ctx.produced
        ):
            # Warning, not error: recency fusion degrades to default
            # recency (every claim ties) rather than breaking.
            findings.append(
                tc(
                    "TC007",
                    "fusion",
                    f"date_attribute.{ctx.date_attribute}",
                    f"recency attribute {ctx.date_attribute!r} is produced "
                    "by no mapping of any selected source: every claim ties "
                    "at default recency",
                    "map a source date column or drop date_attribute",
                    severity=Severity.WARNING,
                )
            )
    strategy = getattr(ctx.plan, "fusion_strategy", None)
    domain = STRATEGY_VALUE_DOMAINS.get(strategy) if strategy else None
    if domain is not None and schema is not None:
        in_scope = [
            a.name
            for a in schema
            if not a.name.startswith("_")
            and a.name not in overrides
            and a.dtype in domain
        ]
        if not in_scope:
            findings.append(
                tc(
                    "TC008",
                    "fusion",
                    "fusion_strategy",
                    f"default strategy {strategy!r} requires "
                    f"{sorted(d.value for d in domain)} values but no "
                    "non-overridden target attribute has such a type",
                    "pick a type-agnostic default strategy",
                )
            )
    if strategy == "recent" and ctx.date_attribute is not None:
        dtype = ctx.target_dtype(ctx.date_attribute)
        if dtype is not None and dtype is not DataType.DATE:
            findings.append(
                tc(
                    "TC008",
                    "fusion",
                    f"date_attribute.{ctx.date_attribute}",
                    f"recency fusion keyed on {ctx.date_attribute!r} "
                    f"({dtype.value}): recency needs a DATE attribute",
                    "key recency on a DATE column",
                )
            )
    if ctx.coverage_complete and ctx.target_schema is not None:
        for attribute in ctx.target_schema:
            if (
                attribute.required
                and not attribute.name.startswith("_")
                and attribute.name not in ctx.produced
            ):
                findings.append(
                    tc(
                        "TC009",
                        "fusion",
                        attribute.name,
                        f"required attribute {attribute.name!r} is produced "
                        "by no mapping of any selected source: the wrangled "
                        "column will be entirely missing",
                        "add a source covering it or relax the requirement",
                    )
                )
    return findings


def _infer_empty(ctx: CheckContext, sub: str | None, input_schema: Any) -> Any:
    return Schema(())


#: The registry: dataflow node-name prefix -> signature.  Node names are
#: ``kind`` or ``kind:source`` (the wrangler's convention), so dispatch
#: is on the prefix before ``:``.
SIGNATURES: Mapping[str, OperatorSignature] = {
    sig.kind: sig
    for sig in (
        OperatorSignature(
            "probe",
            "probe",
            consumes="registered source samples",
            produces="probe artifacts (no table)",
        ),
        OperatorSignature(
            "plan",
            "planning",
            consumes="probe artifacts + contexts",
            produces="a WranglePlan (no table)",
        ),
        OperatorSignature(
            "acquire",
            "extraction",
            consumes="one registered source's raw rows",
            produces="the source's own schema",
            rules=("TC001",),
            check=_check_acquire,
            infer=_infer_acquire,
        ),
        OperatorSignature(
            "match",
            "matching",
            consumes="the source schema + target schema",
            produces="the source schema (correspondences ride alongside)",
            rules=("TC003",),
            check=_check_match,
            infer=_passthrough,
        ),
        OperatorSignature(
            "mapping",
            "mapping",
            consumes="correspondences for one source",
            produces="an executable Mapping (no table)",
            rules=("TC002", "TC004"),
            check=_check_mapping,
        ),
        OperatorSignature(
            "mapped",
            "mapping",
            consumes="one source table + its mapping",
            produces="the target schema",
            infer=_infer_target,
        ),
        OperatorSignature(
            "quality",
            "quality",
            consumes="one mapped table",
            produces="quality report (no table)",
        ),
        OperatorSignature(
            "select",
            "selection",
            consumes="quality reports + plan",
            produces="the selected source names (no table)",
        ),
        OperatorSignature(
            "translate",
            "mapping",
            consumes="all selected mapped tables",
            produces="the target schema (union of mapped rows)",
            infer=_infer_target,
        ),
        OperatorSignature(
            "resolve",
            "resolution",
            consumes="ER comparison attributes of the translated table",
            produces="the target schema (clustered rows)",
            rules=("TC005", "TC006"),
            check=_check_resolve,
            infer=_passthrough,
        ),
        OperatorSignature(
            "fuse",
            "fusion",
            consumes="strategy-specific attribute values per cluster",
            produces="the target schema (one row per entity)",
            rules=("TC007", "TC008", "TC009"),
            check=_check_fuse,
            infer=_passthrough,
        ),
        OperatorSignature(
            "repair",
            "repair",
            consumes="the fused table + feedback",
            produces="the target schema (repaired rows)",
            infer=_passthrough,
        ),
        OperatorSignature(
            "input",
            "input",
            consumes="an externally set value",
            produces="whatever was set (no static schema)",
        ),
    )
}
