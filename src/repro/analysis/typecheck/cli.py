"""The typechecker CLI: ``python -m repro.analysis.typecheck``.

Discovers plan-building Python modules (each exposing a zero-argument
``build_wrangler()``), runs the full pre-execution gate —
:func:`~repro.analysis.typecheck.gate.run_preflight` via
``Wrangler.preflight()`` — over each, and renders text or JSON through
the shared reporters, re-anchoring every finding to the defining file.

Exit-code contract (identical to the lint CLI, what CI keys off):

* ``0`` — no error-severity findings;
* ``1`` — at least one error-severity finding;
* ``2`` — the tool itself was misused (unknown path, unimportable
  module, an explicitly named file without an entry point).
"""

from __future__ import annotations

import argparse
import importlib.util
import itertools
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.report import render
from repro.analysis.typecheck.rules import TYPECHECK_RULES
from repro.errors import AnalysisError

__all__ = ["TypecheckResult", "check_module", "check_paths", "main"]

_module_counter = itertools.count(1)

#: The conventional zero-argument plan-module entry point.
DEFAULT_ENTRY = "build_wrangler"


@dataclass(frozen=True)
class TypecheckResult:
    """Findings plus the coverage counters the reporters need."""

    diagnostics: tuple[Diagnostic, ...]
    checked_plans: int
    skipped: tuple[str, ...]
    nodes: int
    certified: int

    @property
    def ok(self) -> bool:
        """Whether every plan passes (no error-severity findings)."""
        return not has_errors(self.diagnostics)

    @property
    def exit_code(self) -> int:
        """The CLI exit code this result maps to."""
        return 0 if self.ok else 1


def _import_module(path: Path):
    name = f"_repro_typecheck_plan_{next(_module_counter)}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise AnalysisError(f"cannot load module from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    # Arbitrary user plan modules can fail arbitrarily at import time;
    # every failure becomes the CLI's misuse exit code.
    except Exception as failure:  # repro: noqa[REP002]
        sys.modules.pop(name, None)
        raise AnalysisError(f"cannot import {path}: {failure}") from failure
    return module


def _reanchor(diagnostic: Diagnostic, path: str) -> Diagnostic:
    """Point a plan-artifact finding at the file that builds the plan."""
    location = diagnostic.location
    return Diagnostic(
        diagnostic.rule,
        diagnostic.severity,
        Location(
            f"{path}::{location.file}",
            line=location.line,
            column=location.column,
            node=location.node,
        ),
        diagnostic.message,
        diagnostic.fix_hint,
    )


def check_module(
    path: Path, entry: str = DEFAULT_ENTRY
) -> TypecheckResult | None:
    """Type-check the plan one module builds; ``None`` when it has no
    ``entry`` callable (not a plan module)."""
    module = _import_module(path)
    build = getattr(module, entry, None)
    if build is None or not callable(build):
        return None
    try:
        wrangler = build()
        report = wrangler.preflight()
    except AnalysisError:
        raise
    # A user-supplied build_wrangler() can fail arbitrarily; fold it
    # into the CLI's misuse exit code rather than a traceback.
    except Exception as failure:  # repro: noqa[REP002]
        raise AnalysisError(
            f"preflight of {path} failed: {failure}"
        ) from failure
    nodes = certified = 0
    flow = getattr(wrangler, "_flow", None)
    if flow is not None and hasattr(flow, "purity_map"):
        purity = flow.purity_map()
        nodes = len(purity)
        certified = sum(1 for verdict in purity.values() if verdict)
    return TypecheckResult(
        tuple(_reanchor(d, str(path)) for d in report.diagnostics),
        checked_plans=1,
        skipped=(),
        nodes=nodes,
        certified=certified,
    )


def _discover(paths: Sequence[str]) -> tuple[list[Path], list[Path]]:
    """(explicit files, directory-discovered files) under ``paths``."""
    explicit: list[Path] = []
    discovered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            discovered.extend(
                p for p in sorted(path.rglob("*.py"))
                if p.stem != "__init__"
            )
        elif path.is_file():
            explicit.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return explicit, discovered


def check_paths(
    paths: Sequence[str], entry: str = DEFAULT_ENTRY
) -> TypecheckResult:
    """Type-check every plan module under the given paths.

    Directory-discovered files without the entry point are skipped and
    listed in ``skipped``; an explicitly named file without one is a
    usage error.
    """
    explicit, discovered = _discover(paths)
    diagnostics: list[Diagnostic] = []
    checked = nodes = certified = 0
    skipped: list[str] = []
    for path in explicit:
        result = check_module(path, entry=entry)
        if result is None:
            raise AnalysisError(
                f"{path} defines no {entry}() entry point"
            )
        diagnostics.extend(result.diagnostics)
        checked += 1
        nodes += result.nodes
        certified += result.certified
    for path in discovered:
        result = check_module(path, entry=entry)
        if result is None:
            skipped.append(str(path))
            continue
        diagnostics.extend(result.diagnostics)
        checked += 1
        nodes += result.nodes
        certified += result.certified
    return TypecheckResult(
        tuple(sort_diagnostics(diagnostics)),
        checked_plans=checked,
        skipped=tuple(skipped),
        nodes=nodes,
        certified=certified,
    )


def _rule_catalogue() -> str:
    lines = []
    for rule_id in sorted(TYPECHECK_RULES):
        registered = TYPECHECK_RULES[rule_id]
        lines.append(
            f"{rule_id}  {registered.name:<32} "
            f"{registered.severity.value:<8} {registered.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.typecheck",
        description=(
            "repro schema-flow type checker: runs the pre-execution gate "
            "(structure + types + purity) over plan-building modules"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["examples"],
        help="plan modules or directories to check (default: examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--entry", default=DEFAULT_ENTRY,
        help=f"plan-module entry point (default: {DEFAULT_ENTRY})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the TC rule catalogue and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_rule_catalogue() + "\n")
        return 0
    try:
        result = check_paths(args.paths, entry=args.entry)
    except AnalysisError as failure:
        sys.stderr.write(f"error: {failure}\n")
        return 2
    for path in result.skipped:
        sys.stderr.write(f"note: {path}: no {args.entry}(), skipped\n")
    report = render(
        result.diagnostics, args.format, checked_files=result.checked_plans
    )
    sys.stdout.write(report + "\n")
    if result.nodes:
        sys.stdout.write(
            f"purity: {result.certified}/{result.nodes} dataflow nodes "
            "carry a verdict\n"
        )
    return result.exit_code
