"""AST-based purity certification for dataflow node callables.

The dataflow engine memoises node values and replays them on pull; that
is only sound when recomputing a node would produce the same value —
i.e. when the node body is *pure* in the engine's sense:

* **no module-global mutation** — no ``global``/``nonlocal`` rebinding,
  no assignment to module attributes;
* **no I/O** — no file, network, or process access (``open``, ``input``,
  ``print``, the ``os``/``subprocess``/``socket``/``urllib`` families);
* **no clock reads outside** :mod:`repro.obs` — wall-clock calls such as
  ``time.time()`` or ``datetime.now()`` make a memoised value a lie; the
  observability layer's injected clock is the sanctioned time source;
* **no ambient randomness** — the ``random``/``secrets`` modules (a
  seeded generator threaded through instance state is fine: it is part
  of the state the engine invalidates on).

Mutation of the wrangler's *own* working state (``self.working.put``,
telemetry counters) is explicitly sanctioned: the blackboard is
versioned, observable, and participates in invalidation, so it is part
of the dataflow's state, not an ambient side channel.

The analyser never executes the callable.  It parses the defining source
file (cached per path), locates the function's AST node via its code
object, resolves ``self`` from the closure when the body is the usual
``lambda inputs: self._stage(...)`` shape, and follows ``self.<method>``
calls one hop deep.  Verdicts are conservative three-valued:

* ``pure`` — no trigger found in the body or its followed callees;
* ``impure`` — at least one trigger found, with reasons;
* ``unknown`` — the source could not be located or parsed (builtins,
  C extensions, REPL lambdas), so no certificate can be issued.
"""

from __future__ import annotations

import ast
import inspect
import os
from dataclasses import dataclass, field
from types import CodeType, FunctionType, ModuleType
from typing import Any, Callable, Iterable

__all__ = [
    "PurityVerdict",
    "PurityAnalyser",
    "certify_callable",
    "certify_dataflow",
]


#: Builtins whose mere call is I/O (or arbitrary-code evaluation, which
#: subsumes I/O as far as a certificate is concerned).
_IO_BUILTINS = frozenset(
    {"open", "input", "print", "breakpoint", "eval", "exec", "compile",
     "__import__"}
)

#: Modules whose use inside a node body voids the certificate outright.
_IO_MODULE_ROOTS = frozenset(
    {"os", "sys", "subprocess", "socket", "shutil", "urllib", "requests",
     "http", "ftplib", "smtplib", "pathlib", "tempfile", "random",
     "secrets"}
)

#: Attribute calls that read a clock when made on the ``time`` or
#: ``datetime`` modules (or the classes they export).
_CLOCK_ATTRS = frozenset(
    {"time", "perf_counter", "perf_counter_ns", "monotonic",
     "monotonic_ns", "process_time", "process_time_ns", "now", "utcnow",
     "today"}
)

#: Module names whose attributes count as clock sources for the check
#: above.  :mod:`repro.obs` is deliberately absent: its injected clock is
#: the sanctioned way for a node to see time.
_CLOCK_MODULES = frozenset({"time", "datetime"})


@dataclass(frozen=True)
class PurityVerdict:
    """The certificate (or refusal) for one callable."""

    status: str  # "pure" | "impure" | "unknown"
    reasons: tuple[str, ...] = ()

    @property
    def is_pure(self) -> bool:
        return self.status == "pure"

    def render(self) -> str:
        if not self.reasons:
            return self.status
        return f"{self.status}: " + "; ".join(self.reasons)


_PURE = PurityVerdict("pure")


def _unknown(reason: str) -> PurityVerdict:
    return PurityVerdict("unknown", (reason,))


@dataclass
class _Scan:
    """Mutable state for one certification walk."""

    reasons: list[str] = field(default_factory=list)
    visited: set[CodeType] = field(default_factory=set)


class PurityAnalyser:
    """Certify callables as pure without executing them.

    One analyser instance may certify many callables; parsed module ASTs
    are cached per source path and verdicts per ``(code, self type)``
    pair, so re-certifying the node lambdas of every wrangler in a
    process parses each defining file once.
    """

    #: How many ``self.<method>`` hops to follow from the node lambda.
    max_hops: int = 1

    def __init__(self) -> None:
        self._ast_cache: dict[str, ast.Module | None] = {}
        self._verdicts: dict[tuple[CodeType, type | None], PurityVerdict] = {}

    # -- entry point -----------------------------------------------------

    def analyse(self, fn: Callable[..., Any]) -> PurityVerdict:
        """The purity verdict for ``fn``."""
        fn = self._unwrap(fn)
        code = getattr(fn, "__code__", None)
        if not isinstance(code, CodeType):
            return _unknown("no Python code object (builtin or C callable)")
        self_obj = self._resolve_self(fn)
        key = (code, type(self_obj) if self_obj is not None else None)
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        verdict = self._analyse_code(fn, code, self_obj)
        self._verdicts[key] = verdict
        return verdict

    # -- callable plumbing ----------------------------------------------

    @staticmethod
    def _unwrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        while True:
            if hasattr(fn, "func") and not hasattr(fn, "__code__"):
                fn = fn.func  # functools.partial
            elif inspect.ismethod(fn):
                fn = fn.__func__
            else:
                return fn

    @staticmethod
    def _resolve_self(fn: Callable[..., Any]) -> Any:
        """The object ``self`` refers to inside ``fn``, when decidable.

        Node bodies are typically ``lambda inputs: self._stage(...)``
        closures created inside a method, so ``self`` lives in a closure
        cell; bound methods carry it as ``__self__``.
        """
        bound = getattr(fn, "__self__", None)
        if bound is not None:
            return bound
        code = getattr(fn, "__code__", None)
        closure = getattr(fn, "__closure__", None)
        if code is None or not closure:
            return None
        try:
            index = code.co_freevars.index("self")
        except ValueError:
            return None
        try:
            return closure[index].cell_contents
        except ValueError:  # empty cell
            return None

    # -- AST location ----------------------------------------------------

    def _module_tree(self, filename: str) -> ast.Module | None:
        if filename in self._ast_cache:
            return self._ast_cache[filename]
        tree: ast.Module | None = None
        if os.path.isfile(filename):
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=filename)
            except (OSError, SyntaxError, ValueError):
                tree = None
        self._ast_cache[filename] = tree
        return tree

    def _locate(self, code: CodeType) -> ast.AST | None:
        """The AST node whose compilation produced ``code``, or ``None``."""
        tree = self._module_tree(code.co_filename)
        if tree is None:
            return None
        line = code.co_firstlineno
        matches: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Lambda):
                if code.co_name == "<lambda>" and node.lineno == line:
                    matches.append(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name != code.co_name:
                    continue
                first = node.lineno
                if node.decorator_list:
                    first = min(first, node.decorator_list[0].lineno)
                if first == line or node.lineno == line:
                    matches.append(node)
        if len(matches) != 1:
            return None  # ambiguous (two lambdas on one line) or missing
        return matches[0]

    # -- the certification walk -----------------------------------------

    def _analyse_code(
        self, fn: Callable[..., Any], code: CodeType, self_obj: Any
    ) -> PurityVerdict:
        node = self._locate(code)
        if node is None:
            return _unknown(
                f"cannot locate source of {code.co_name!r} "
                f"({code.co_filename}:{code.co_firstlineno})"
            )
        scan = _Scan()
        scan.visited.add(code)
        fn_globals = getattr(fn, "__globals__", {}) or {}
        body = node.body if isinstance(node, ast.Lambda) else node
        self._scan(body, fn_globals, self_obj, scan, hops=self.max_hops)
        if scan.reasons:
            return PurityVerdict("impure", tuple(dict.fromkeys(scan.reasons)))
        return _PURE

    def _scan(
        self,
        root: ast.AST,
        fn_globals: dict[str, Any],
        self_obj: Any,
        scan: _Scan,
        hops: int,
    ) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.Global):
                scan.reasons.append(
                    f"declares global {', '.join(node.names)}"
                )
            elif isinstance(node, ast.Nonlocal):
                scan.reasons.append(
                    f"declares nonlocal {', '.join(node.names)}"
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self._check_import(node, scan)
            elif isinstance(node, ast.Call):
                self._check_call(node, fn_globals, self_obj, scan, hops)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._check_assignment(node, fn_globals, scan)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                resolved = fn_globals.get(node.id)
                root_name = self._module_root(resolved)
                if root_name in _IO_MODULE_ROOTS:
                    scan.reasons.append(
                        f"touches I/O module {root_name!r} via {node.id!r}"
                    )

    @staticmethod
    def _module_root(obj: Any) -> str | None:
        if isinstance(obj, ModuleType):
            return obj.__name__.split(".", 1)[0]
        return None

    @staticmethod
    def _check_import(
        node: ast.Import | ast.ImportFrom, scan: _Scan
    ) -> None:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module or ""]
        for name in names:
            root = name.split(".", 1)[0]
            if root in _IO_MODULE_ROOTS:
                scan.reasons.append(f"imports I/O module {name!r} in body")

    def _check_assignment(
        self,
        node: ast.Assign | ast.AugAssign,
        fn_globals: dict[str, Any],
        scan: _Scan,
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            base = target.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                resolved = fn_globals.get(base.id)
                if isinstance(resolved, ModuleType):
                    scan.reasons.append(
                        f"assigns attribute of module {base.id!r}"
                    )

    def _check_call(
        self,
        node: ast.Call,
        fn_globals: dict[str, Any],
        self_obj: Any,
        scan: _Scan,
        hops: int,
    ) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _IO_BUILTINS and func.id not in fn_globals:
                scan.reasons.append(f"calls I/O builtin {func.id}()")
                return
            resolved = fn_globals.get(func.id)
            if isinstance(resolved, FunctionType) and hops > 0:
                module_name = getattr(resolved, "__module__", "") or ""
                if module_name.startswith("repro"):
                    self._follow(resolved, self_obj, scan, hops - 1)
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # self.<method>(...): follow the method body one hop.
        if (
            isinstance(base, ast.Name)
            and base.id == "self"
            and self_obj is not None
            and hops > 0
        ):
            method = inspect.getattr_static(type(self_obj), func.attr, None)
            if isinstance(method, FunctionType):
                self._follow(method, self_obj, scan, hops - 1)
            return
        # module.attr(...) where the module is forbidden or a clock.
        root = base
        while isinstance(root, ast.Attribute):
            root = root.value
        if not isinstance(root, ast.Name):
            return
        resolved = fn_globals.get(root.id)
        root_name = self._module_root(resolved)
        if root_name in _IO_MODULE_ROOTS:
            scan.reasons.append(
                f"calls into I/O module {root_name!r} via {root.id!r}"
            )
            return
        if func.attr in _CLOCK_ATTRS:
            if root_name in _CLOCK_MODULES or self._is_clock_class(resolved):
                scan.reasons.append(
                    f"reads the clock via {root.id}.{func.attr}() "
                    "(inject time through repro.obs instead)"
                )

    @staticmethod
    def _is_clock_class(obj: Any) -> bool:
        """Whether ``obj`` is one of datetime's exported classes, so that
        ``date.today()`` / ``datetime.now()`` via from-imports are caught."""
        return (
            isinstance(obj, type)
            and getattr(obj, "__module__", None) == "datetime"
        )

    def _follow(
        self,
        fn: FunctionType,
        self_obj: Any,
        scan: _Scan,
        hops: int,
    ) -> None:
        code = fn.__code__
        if code in scan.visited:
            return
        scan.visited.add(code)
        node = self._locate(code)
        if node is None:
            return  # unreadable callee: the certificate covers one hop
        fn_globals = getattr(fn, "__globals__", {}) or {}
        self._scan(node, fn_globals, self_obj, scan, hops)


def certify_callable(
    fn: Callable[..., Any], analyser: PurityAnalyser | None = None
) -> PurityVerdict:
    """One-shot certification (creates a throwaway analyser if needed)."""
    return (analyser or PurityAnalyser()).analyse(fn)


def certify_dataflow(
    dataflow: Any, analyser: PurityAnalyser | None = None
) -> dict[str, PurityVerdict]:
    """Certify every node callable of a dataflow and record the verdicts.

    Works through the dataflow's own :meth:`certify` hook when it has
    one (so the engine records verdicts on its nodes); otherwise falls
    back to analysing ``node_callables()`` if exposed.  Returns the
    verdict map either way.
    """
    analyser = analyser or PurityAnalyser()
    if hasattr(dataflow, "certify"):
        return dict(dataflow.certify(analyser=analyser))
    callables: Iterable[tuple[str, Callable[..., Any]]] = ()
    if hasattr(dataflow, "node_callables"):
        callables = dataflow.node_callables()
    return {name: analyser.analyse(fn) for name, fn in callables}
