"""The schema-flow type rules: the ``TC`` catalogue.

Each rule names one class of composition defect the type checker can
prove statically — a data shape flowing between pipeline stages that the
receiving stage cannot interpret.  The checker in
:mod:`repro.analysis.typecheck.checker` emits them through the shared
:class:`~repro.analysis.diagnostics.Diagnostic` engine, so validator,
linter, and typechecker findings render uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.diagnostics import Severity

__all__ = ["TypeRule", "TYPECHECK_RULES"]


@dataclass(frozen=True)
class TypeRule:
    """One registered schema-flow invariant."""

    rule_id: str
    name: str
    severity: Severity
    description: str


def _catalogue(*rules: TypeRule) -> Mapping[str, TypeRule]:
    return {r.rule_id: r for r in rules}


#: Rule catalogue for the typechecker (mirrored in docs/ANALYSIS.md).
TYPECHECK_RULES: Mapping[str, TypeRule] = _catalogue(
    TypeRule(
        "TC001",
        "source-schema-unknown",
        Severity.WARNING,
        "A plan-selected source has no statically inferable schema (its "
        "probe failed or never ran): downstream checks for that source "
        "are suppressed rather than guessed.",
    ),
    TypeRule(
        "TC002",
        "mapping-reads-missing-attribute",
        Severity.ERROR,
        "A mapping reads a source attribute absent from the inferred "
        "input schema: the mapped column would be all-missing.",
    ),
    TypeRule(
        "TC003",
        "matched-types-never-coercible",
        Severity.ERROR,
        "Matched attributes have DataTypes that can never coerce "
        "(e.g. BOOLEAN into INTEGER): every mapped value is a guaranteed "
        "TypeInferenceError at runtime.",
    ),
    TypeRule(
        "TC004",
        "transform-type-mismatch",
        Severity.ERROR,
        "A mapping transform is applied to a DataType outside its "
        "declared input domain, or produces a DataType that can never "
        "coerce to the target attribute's type.",
    ),
    TypeRule(
        "TC005",
        "er-attribute-missing",
        Severity.ERROR,
        "An entity-resolution comparison is keyed on an attribute absent "
        "from the resolved (translated) schema.",
    ),
    TypeRule(
        "TC006",
        "er-attribute-type-incompatible",
        Severity.ERROR,
        "An entity-resolution comparison is keyed on a type-incompatible "
        "attribute: a transient type (URL/DATE/CURRENCY) used as identity "
        "evidence, or a measure whose domain excludes the attribute's "
        "DataType.",
    ),
    TypeRule(
        "TC007",
        "fusion-attribute-unproduced",
        Severity.ERROR,
        "Fusion is configured over an attribute (strategy override or "
        "recency attribute) that no upstream mapping of any selected "
        "source produces: the configuration can never take effect.",
    ),
    TypeRule(
        "TC008",
        "fusion-strategy-unsatisfiable",
        Severity.ERROR,
        "The fusion strategy's type requirement is unsatisfiable: median "
        "fusion with no numeric-capable attribute in scope, or recency "
        "fusion keyed on a non-DATE attribute.",
    ),
    TypeRule(
        "TC009",
        "required-attribute-unproduced",
        Severity.WARNING,
        "A required target attribute is produced by no mapping of any "
        "selected source: the wrangled column will be entirely missing.",
    ),
    TypeRule(
        "TC010",
        "node-purity-uncertified",
        Severity.ERROR,
        "A dataflow node failed purity certification (impure: error; "
        "unknown: warning): the engine cannot safely cache or replay its "
        "memoised value.",
    ),
)
