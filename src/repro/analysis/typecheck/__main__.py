"""``python -m repro.analysis.typecheck`` delegates to the CLI."""

import sys

from repro.analysis.typecheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
