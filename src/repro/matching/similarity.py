"""String and value similarity measures used across matching and resolution.

All measures return scores in ``[0, 1]``, are symmetric, and score 1.0 on
identical non-empty inputs — properties the test suite enforces — so they
can be pooled as evidence (Section 2.3) without per-measure calibration.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "jaccard",
    "dice",
    "token_set",
    "tfidf_cosine",
    "monge_elkan",
    "numeric_similarity",
    "name_similarity",
]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Tokens that carry no identity signal in entity names.
_STOPWORDS = frozenset(
    {"the", "a", "an", "of", "and", "at", "in", "on", "for", "ltd", "inc", "co"}
)

#: Bounded memo caches keyed by the raw string — the tokenisation
#: identity of a record attribute value.  Entity resolution compares
#: each record against many candidates, so without these every record's
#: value is re-tokenised once *per pair* instead of once per resolver
#: pass (the regression test pins the once-per-record contract).  FIFO
#: eviction at a fixed bound keeps long-running processes flat.
_CACHE_LIMIT = 4096
_token_set_cache: dict[str, frozenset[str]] = {}
_name_token_cache: dict[str, tuple[str, ...]] = {}


def _cache_put(cache: dict, key: str, value) -> None:
    if len(cache) >= _CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = value


#: Memoised document frequencies keyed by corpus identity.  A matching
#: pass calls :func:`tfidf_cosine` once per candidate pair against the
#: *same* corpus object, and recomputing the document-frequency Counter
#: is O(corpus) per call — quadratic overall.  Each entry keeps a strong
#: reference to the corpus itself so a recycled ``id()`` can never alias
#: a dead corpus to a live one's table; the bound is small because a
#: pass compares against a handful of corpora, not thousands.
_IDF_CACHE_LIMIT = 8
_idf_cache: dict[int, tuple[object, Counter]] = {}


def _doc_frequencies(corpus: Sequence[Sequence[str]]) -> Counter:
    """Document frequency of every token in ``corpus`` (memoised)."""
    entry = _idf_cache.get(id(corpus))
    if entry is not None and entry[0] is corpus:
        return entry[1]
    doc_freq: Counter[str] = Counter()
    for doc in corpus:
        doc_freq.update(set(doc))
    if len(_idf_cache) >= _IDF_CACHE_LIMIT:
        _idf_cache.pop(next(iter(_idf_cache)))
    _idf_cache[id(corpus)] = (corpus, doc_freq)
    return doc_freq


def token_set(text: str) -> frozenset[str]:
    """Lower-cased alphanumeric tokens of ``text`` (memoised)."""
    cached = _token_set_cache.get(text)
    if cached is None:
        cached = frozenset(_TOKEN_RE.findall(text.lower()))
        _cache_put(_token_set_cache, text, cached)
    return cached


def _name_tokens(text: str) -> tuple[str, ...]:
    """Ordered, stopword-stripped name tokens of ``text`` (memoised).

    The Monge–Elkan tokenisation: order preserved (unlike
    :func:`token_set`), stopwords dropped unless the name is made only
    of them.
    """
    cached = _name_token_cache.get(text)
    if cached is None:
        tokens = _TOKEN_RE.findall(text.lower())
        kept = [t for t in tokens if t not in _STOPWORDS]
        cached = tuple(kept or tokens)
        _cache_put(_name_token_cache, text, cached)
    return cached


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a ``[0, 1]`` similarity."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity — robust to transpositions in short strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len(a)
    matched_b = [False] * len(b)
    matches = 0
    for i, char in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if matched_b[j] or b[j] != char:
                continue
            matched_a[i] = matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, was_matched in enumerate(matched_a):
        if not was_matched:
            continue
        while not matched_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted by a shared prefix (up to 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard overlap of two token collections."""
    set_a, set_b = frozenset(a), frozenset(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def dice(a: Iterable[str], b: Iterable[str]) -> float:
    """Sørensen–Dice coefficient of two token collections."""
    set_a, set_b = frozenset(a), frozenset(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def tfidf_cosine(
    doc_a: Sequence[str], doc_b: Sequence[str], corpus: Sequence[Sequence[str]]
) -> float:
    """Cosine similarity of two token sequences under corpus IDF weights.

    ``corpus`` is the collection of token sequences the IDF is computed
    over (typically all values of the two columns being compared); rare
    tokens dominate, so shared brand/model tokens count more than shared
    stop words.  The IDF table is memoised per corpus *identity* — pass
    the same corpus object for a whole matching pass (and a fresh object
    after mutating it) to get one O(corpus) scan instead of one per pair.
    """
    if not doc_a and not doc_b:
        return 1.0
    if not doc_a or not doc_b:
        return 0.0
    n_docs = max(len(corpus), 1)
    doc_freq = _doc_frequencies(corpus)

    def vectorise(doc: Sequence[str]) -> dict[str, float]:
        counts = Counter(doc)
        return {
            token: count * math.log((1 + n_docs) / (1 + doc_freq.get(token, 0)))
            for token, count in counts.items()
        }

    vec_a, vec_b = vectorise(doc_a), vectorise(doc_b)
    dot = sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())
    norm_a = math.sqrt(sum(w * w for w in vec_a.values()))
    norm_b = math.sqrt(sum(w * w for w in vec_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0 if vec_a == vec_b else 0.0
    return max(0.0, min(1.0, dot / (norm_a * norm_b)))


def monge_elkan(a: str, b: str, combine: str = "mean") -> float:
    """Symmetric Monge–Elkan similarity: tokens aligned by best Jaro–Winkler.

    Designed for entity names like product titles: a typo in one token
    barely dents the score, but a different model token ("Pro 123" vs
    "Max 999") pulls it down hard — exactly the separation whole-string
    measures lose on long names with shared prefixes.

    ``combine`` chooses how the two directed scores merge: ``"mean"``
    (default) is containment-friendly ("Acme TV" matches "Acme TV 42-inch"
    well); ``"min"`` demands that *both* names account for each other's
    tokens, which separates "QA Analyst" from "Junior QA Analyst" — use it
    for low-cardinality identity fields where one extra word means a
    different entity.
    """
    tokens_a = _name_tokens(a)
    tokens_b = _name_tokens(b)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0

    def token_sim(left: str, right: str) -> float:
        # Tokens carrying digits are codes (model numbers, house numbers,
        # postcode fragments): two different codes are different things,
        # however many characters they share.
        if any(c.isdigit() for c in left) or any(c.isdigit() for c in right):
            return 1.0 if left == right else 0.0
        score = jaro_winkler(left, right)
        # A word either IS the other word (with typos — scores near 1) or
        # it is a different word; mid-range Jaro between distinct words
        # ("engineer"/"scientist" ≈ 0.55) is noise, not half a match.
        return score if score >= 0.85 else 0.3 * score

    def directed(src: Sequence[str], dst: Sequence[str]) -> float:
        return sum(
            max(token_sim(token, other) for other in dst) for token in src
        ) / len(src)

    forward = directed(tokens_a, tokens_b)
    backward = directed(tokens_b, tokens_a)
    if combine == "min":
        return min(forward, backward)
    return (forward + backward) / 2.0


def numeric_similarity(a: float, b: float) -> float:
    """Relative closeness of two numbers (1.0 when equal)."""
    if a == b:
        return 1.0
    denominator = max(abs(a), abs(b))
    if denominator == 0.0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / denominator)


def name_similarity(a: str, b: str) -> float:
    """Similarity of two attribute/entity *names*.

    Combines token overlap (for multi-word names like ``offer_price`` vs
    ``price``) with Jaro–Winkler on the compacted strings (for
    abbreviations like ``cat`` vs ``category``), taking the max — either
    signal alone is enough for a name to be considered close.
    """
    norm_a = " ".join(sorted(token_set(a)))
    norm_b = " ".join(sorted(token_set(b)))
    if not norm_a or not norm_b:
        return 0.0
    if norm_a == norm_b:
        return 1.0
    overlap = jaccard(token_set(a), token_set(b))
    compact_a = norm_a.replace(" ", "")
    compact_b = norm_b.replace(" ", "")
    string_sim = jaro_winkler(compact_a, compact_b)
    containment = 0.0
    shorter_name, longer_name = sorted((a, b), key=lambda s: len("".join(token_set(s))))
    shorter = "".join(sorted(token_set(shorter_name)))
    longer_tokens = token_set(longer_name)
    if (
        len(shorter) >= 3
        and shorter not in longer_tokens  # whole-token overlap is jaccard's job
        and any(token.startswith(shorter) for token in longer_tokens)
    ):
        # Abbreviation: "cat" -> "category", "desc" -> "description".
        longest = max(len(t) for t in longer_tokens)
        containment = 0.75 + 0.25 * len(shorter) / longest
    return max(overlap, string_sim, containment)
