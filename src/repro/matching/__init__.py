"""Schema matching: similarity measures and evidence-pooling matchers."""

from repro.matching.schema_matching import Correspondence, SchemaMatcher
from repro.matching.similarity import (
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    name_similarity,
    numeric_similarity,
    tfidf_cosine,
    token_set,
)

__all__ = [
    "Correspondence",
    "SchemaMatcher",
    "dice",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "monge_elkan",
    "name_similarity",
    "numeric_similarity",
    "tfidf_cosine",
    "token_set",
]
