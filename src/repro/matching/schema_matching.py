"""Schema matching with pluggable evidence channels (paper Section 2.3).

"A product types ontology could be used ... as an input to the matching of
sources that supplements syntactic matching."  The matcher therefore pools
independent evidence channels per candidate correspondence:

* **name** — string similarity between attribute names;
* **instance** — type and value-shape compatibility of the source column
  against the target attribute's declared type (plus vocabulary overlap
  when the data context supplies reference values);
* **ontology** — semantic similarity of the two names in the domain
  ontology;
* **feedback** — accumulated user/crowd verdicts on this correspondence.

Channels can be switched off individually, which is exactly the ablation
experiment E4 runs.  Evidence is pooled with the shared log-odds algebra
and a one-to-one assignment is chosen greedily.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.context.data_context import DataContext
from repro.errors import TypeInferenceError
from repro.model.records import Table
from repro.model.schema import Attribute, DataType, Schema, coerce, infer_type
from repro.model.uncertainty import Evidence, pool_evidence
from repro.matching.similarity import name_similarity, token_set, jaccard

__all__ = ["Correspondence", "SchemaMatcher"]

_match_counter = itertools.count(1)


@dataclass(frozen=True)
class Correspondence:
    """A scored candidate attribute correspondence."""

    source_attribute: str
    target_attribute: str
    confidence: float
    evidence: tuple[Evidence, ...] = ()
    match_id: str = field(
        default_factory=lambda: f"match-{next(_match_counter)}"
    )

    def evidence_kinds(self) -> frozenset[str]:
        """The evidence channels that contributed."""
        return frozenset(e.kind for e in self.evidence)


class SchemaMatcher:
    """Evidence-pooling schema matcher.

    ``channels`` selects the evidence channels to use; ``context``
    provides the ontology and reference vocabularies; ``feedback`` is a
    mapping ``(source_attr, target_attr) -> list of booleans`` (True =
    user confirmed, False = user rejected) maintained by the feedback
    propagation layer.
    """

    ALL_CHANNELS = ("name", "instance", "ontology", "feedback")

    def __init__(
        self,
        context: DataContext | None = None,
        channels: Sequence[str] = ALL_CHANNELS,
        threshold: float = 0.5,
        feedback: Mapping[tuple[str, str], Sequence[bool]] | None = None,
    ) -> None:
        unknown = set(channels) - set(self.ALL_CHANNELS)
        if unknown:
            raise ValueError(f"unknown evidence channels: {sorted(unknown)}")
        self.context = context
        self.channels = tuple(channels)
        self.threshold = threshold
        self.feedback = dict(feedback or {})

    # -- evidence channels -------------------------------------------------

    def _name_evidence(self, source: str, target: Attribute) -> Evidence | None:
        score = name_similarity(source, target.name)
        if target.description:
            # Descriptions are hints, not names: token overlap only, damped,
            # so "offer page" cannot hijack "offer_price".
            description_score = 0.9 * jaccard(
                token_set(source), token_set(target.description)
            )
            score = max(score, description_score)
        # Bound away from 0/1: a dissimilar name is mild counter-evidence,
        # never a veto (the other channels may know better).
        return Evidence("name", 0.05 + 0.9 * score, weight=1.0)

    def _instance_evidence(
        self, column: list[object], target: Attribute
    ) -> Evidence | None:
        values = [v for v in column if v is not None and str(v).strip()]
        if not values:
            return None
        sample = values[:50]
        coercible = 0
        for raw in sample:
            try:
                coerce(raw, target.dtype)
            except TypeInferenceError:
                continue
            coercible += 1
        type_score = coercible / len(sample)
        if target.dtype is DataType.STRING:
            # Everything coerces to string; look at the inferred type instead.
            inferred = {infer_type(raw) for raw in sample}
            type_score = 0.7 if inferred == {DataType.STRING} else 0.4
        score = type_score
        if self.context is not None:
            vocabulary = self.context.vocabulary(target.name)
            if vocabulary:
                hits = sum(1 for raw in sample if raw in vocabulary)
                vocab_score = hits / len(sample)
                score = 0.4 * type_score + 0.6 * vocab_score
        # Type compatibility alone is weak evidence: scale into [0.2, 0.8]
        # so it can support or damp, but never decide by itself.
        return Evidence("instance", 0.2 + 0.6 * score, weight=0.8)

    def _ontology_evidence(
        self, source: str, target: Attribute
    ) -> Evidence | None:
        if self.context is None or self.context.ontology is None:
            return None
        score = self.context.ontology.term_similarity(source, target.name)
        if score == 0.0:
            return None  # the ontology is silent, not negative
        return Evidence("ontology", min(score, 0.95), weight=1.2)

    def _feedback_evidence(
        self, source: str, target: Attribute
    ) -> Evidence | None:
        verdicts = self.feedback.get((source, target.name))
        if not verdicts:
            return None
        positive = sum(1 for v in verdicts if v)
        # Laplace-smoothed agreement rate, weighted by how much feedback
        # there is — one click is a hint, five are a decision that must be
        # able to overrule even a confident ontology correspondence.
        score = (positive + 1) / (len(verdicts) + 2)
        return Evidence(
            "feedback", score, weight=min(3.0, 0.75 * len(verdicts))
        )

    # -- matching -----------------------------------------------------------

    def score_pair(
        self, table: Table, source_attribute: str, target: Attribute
    ) -> Correspondence:
        """Score one candidate correspondence with all enabled channels."""
        evidence: list[Evidence] = []
        if "name" in self.channels:
            item = self._name_evidence(source_attribute, target)
            if item is not None:
                evidence.append(item)
        if "instance" in self.channels:
            raws = [v.raw for v in table.column(source_attribute)]
            item = self._instance_evidence(raws, target)
            if item is not None:
                evidence.append(item)
        if "ontology" in self.channels:
            item = self._ontology_evidence(source_attribute, target)
            if item is not None:
                evidence.append(item)
        if "feedback" in self.channels:
            item = self._feedback_evidence(source_attribute, target)
            if item is not None:
                evidence.append(item)
        confidence = pool_evidence(evidence, prior=0.5)
        return Correspondence(
            source_attribute, target.name, confidence, tuple(evidence)
        )

    def match(self, table: Table, target_schema: Schema) -> list[Correspondence]:
        """One-to-one correspondences from ``table`` into ``target_schema``.

        Greedy best-first assignment over all scored pairs; only pairs at
        or above the threshold survive.  Evaluation-only attributes
        (leading underscore) are never matched.
        """
        candidates: list[Correspondence] = []
        for source_attribute in table.schema.names:
            if source_attribute.startswith("_"):
                continue
            for target in target_schema:
                candidates.append(
                    self.score_pair(table, source_attribute, target)
                )
        candidates.sort(key=lambda c: -c.confidence)
        chosen: list[Correspondence] = []
        used_sources: set[str] = set()
        used_targets: set[str] = set()
        for candidate in candidates:
            if candidate.confidence < self.threshold:
                break
            if (
                candidate.source_attribute in used_sources
                or candidate.target_attribute in used_targets
            ):
                continue
            chosen.append(candidate)
            used_sources.add(candidate.source_attribute)
            used_targets.add(candidate.target_attribute)
        return chosen

    def match_tables(self, source: Table, target: Table) -> list[Correspondence]:
        """Correspondences between two instance tables.

        Adds a value-overlap channel on top of :meth:`match`'s scoring by
        comparing actual column contents (token Jaccard of sampled values).
        """
        correspondences = []
        for source_attribute in source.schema.names:
            if source_attribute.startswith("_"):
                continue
            source_tokens = frozenset().union(
                *(
                    token_set(str(v.raw))
                    for v in source.column(source_attribute)[:100]
                    if not v.is_missing
                )
            ) if len(source) else frozenset()
            for target_attr in target.schema:
                base = self.score_pair(source, source_attribute, target_attr)
                target_tokens = frozenset().union(
                    *(
                        token_set(str(v.raw))
                        for v in target.column(target_attr.name)[:100]
                        if not v.is_missing
                    )
                ) if len(target) else frozenset()
                overlap = jaccard(source_tokens, target_tokens)
                evidence = base.evidence + (
                    Evidence("value-overlap", 0.1 + 0.85 * overlap, weight=0.8),
                )
                correspondences.append(
                    Correspondence(
                        source_attribute,
                        target_attr.name,
                        pool_evidence(list(evidence), prior=0.5),
                        evidence,
                    )
                )
        correspondences.sort(key=lambda c: -c.confidence)
        chosen: list[Correspondence] = []
        used_sources: set[str] = set()
        used_targets: set[str] = set()
        for candidate in correspondences:
            if candidate.confidence < self.threshold:
                break
            if (
                candidate.source_attribute in used_sources
                or candidate.target_attribute in used_targets
            ):
                continue
            chosen.append(candidate)
            used_sources.add(candidate.source_attribute)
            used_targets.add(candidate.target_attribute)
        return chosen
