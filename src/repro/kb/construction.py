"""Knowledge-base construction from wrangled tables.

The KBC pipeline of Section 3.1, built on the wrangler's outputs: each
fused record becomes an entity, each populated cell a candidate fact whose
prior confidence combines the cell's own confidence (extraction + mapping +
fusion lineage) with data-context validation — the Knowledge-Vault move of
fusing extractor confidence with prior plausibility.
"""

from __future__ import annotations

from repro.context.data_context import DataContext
from repro.kb.kb import Fact, KnowledgeBase
from repro.model.records import Table
from repro.model.uncertainty import log_odds_pool

__all__ = ["KBConstructor"]


class KBConstructor:
    """Builds / extends a :class:`KnowledgeBase` from wrangled tables."""

    def __init__(
        self,
        context: DataContext | None = None,
        entity_attribute: str | None = None,
        min_confidence: float = 0.0,
    ) -> None:
        self.context = context
        self.entity_attribute = entity_attribute
        self.min_confidence = min_confidence

    def _entity_id(self, record, table_name: str) -> str:  # type: ignore[no-untyped-def]
        if self.entity_attribute is not None:
            raw = record.raw(self.entity_attribute)
            if raw is not None:
                return str(raw)
        return f"{table_name}/{record.rid}"

    def fact_confidence(self, attribute: str, value) -> float:  # type: ignore[no-untyped-def]
        """Pool the cell's lineage confidence with context plausibility."""
        cell_confidence = value.confidence
        if self.context is None:
            return cell_confidence
        plausibility = self.context.validate_value(attribute, value.raw)
        return log_odds_pool([cell_confidence, plausibility], prior=0.5)

    def ingest(self, table: Table, kb: KnowledgeBase | None = None) -> KnowledgeBase:
        """Turn every populated cell of ``table`` into a KB fact."""
        if kb is None:
            kb = KnowledgeBase(f"kb-{table.name}")
        for record in table:
            entity = self._entity_id(record, table.name)
            for attribute in table.schema.names:
                if attribute.startswith("_"):
                    continue
                value = record.get(attribute)
                if value.is_missing:
                    continue
                confidence = self.fact_confidence(attribute, value)
                if confidence < self.min_confidence:
                    continue
                kb.assert_fact(
                    Fact(entity, attribute, value.raw, confidence, value.provenance)
                )
        return kb
