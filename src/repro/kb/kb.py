"""An entity-centric knowledge base with probabilistic facts.

Section 3.1 relates wrangling to knowledge-base construction (YAGO,
Elementary, Knowledge Vault): "combine candidate facts from web data
sources to create or extend descriptions of entities ... taking account of
the associated uncertainties".  This KB stores ``(entity, property,
value)`` facts with confidences and provenance, fusing repeated assertions
by noisy-or — the Knowledge-Vault recipe in miniature.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

from repro.model.provenance import Provenance
from repro.model.uncertainty import noisy_or

__all__ = ["Fact", "KnowledgeBase"]


@dataclass(frozen=True)
class Fact:
    """One probabilistic assertion about an entity."""

    entity: str
    property: str
    value: object
    confidence: float
    provenance: Provenance = field(default_factory=Provenance.generated)

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("fact confidence must be in [0,1]")


class KnowledgeBase:
    """Facts indexed by entity and property, with noisy-or assimilation."""

    def __init__(self, name: str = "kb") -> None:
        self.name = name
        self._facts: dict[tuple[str, str, object], Fact] = {}
        self._by_entity: dict[str, set[tuple[str, str, object]]] = defaultdict(set)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts.values())

    def assert_fact(self, fact: Fact) -> Fact:
        """Add a fact; a repeated assertion *raises* the stored confidence
        (independent supporting evidence combines by noisy-or)."""
        key = (fact.entity, fact.property, fact.value)
        existing = self._facts.get(key)
        if existing is None:
            stored = fact
        else:
            stored = Fact(
                fact.entity,
                fact.property,
                fact.value,
                noisy_or([existing.confidence, fact.confidence]),
                fact.provenance,
            )
        self._facts[key] = stored
        self._by_entity[fact.entity].add(key)
        return stored

    def entities(self) -> list[str]:
        """All entity ids, sorted."""
        return sorted(self._by_entity)

    def facts_about(self, entity: str) -> list[Fact]:
        """All facts about one entity."""
        return sorted(
            (self._facts[key] for key in self._by_entity.get(entity, ())),
            key=lambda f: (f.property, str(f.value)),
        )

    def candidates(self, entity: str, property_name: str) -> list[Fact]:
        """All competing values for one property, most confident first."""
        return sorted(
            (
                fact
                for fact in self.facts_about(entity)
                if fact.property == property_name
            ),
            key=lambda f: -f.confidence,
        )

    def best(self, entity: str, property_name: str) -> Fact | None:
        """The most confident value for a property, if any."""
        ranked = self.candidates(entity, property_name)
        return ranked[0] if ranked else None

    def at_confidence(self, threshold: float) -> list[Fact]:
        """All facts at or above a confidence threshold — the "published"
        slice of the KB (Knowledge Vault publishes only high-confidence
        triples)."""
        return sorted(
            (f for f in self._facts.values() if f.confidence >= threshold),
            key=lambda f: (f.entity, f.property, str(f.value)),
        )

    def summary(self) -> dict[str, float]:
        """Entity/fact counts and mean confidence."""
        confidences = [f.confidence for f in self._facts.values()]
        return {
            "entities": float(len(self._by_entity)),
            "facts": float(len(self._facts)),
            "mean_confidence": (
                sum(confidences) / len(confidences) if confidences else 1.0
            ),
        }
