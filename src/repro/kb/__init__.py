"""Knowledge-base construction over wrangled data (paper Section 3.1)."""

from repro.kb.construction import KBConstructor
from repro.kb.kb import Fact, KnowledgeBase

__all__ = ["Fact", "KBConstructor", "KnowledgeBase"]
