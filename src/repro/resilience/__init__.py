"""repro.resilience — fault tolerance for the acquisition edge.

The paper's Veracity premise made operational: with "potentially
thousands of sources", some are down, slow, or malformed at any moment,
and the pipeline must complete pay-as-you-go instead of crashing.  Four
pieces:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (seeded
  exponential backoff on the injectable Clock), :class:`Deadline`
  (per-fetch / per-run budgets), :class:`CircuitBreaker`
  (closed/open/half-open per source).
* :mod:`repro.resilience.wrap` — :func:`resilient`, the transparent
  source wrapper applying the policy around every physical access.
* :mod:`repro.resilience.ledger` — the :class:`DegradationLedger`
  recording every attempt/outcome, surfaced as
  ``WrangleResult.degradation``.
* :mod:`repro.resilience.chaos` — :class:`ChaosSource`, deterministic
  seeded fault injection for tests and the E11 benchmark.

See ``docs/RESILIENCE.md`` for the full tour.
"""

from repro.resilience.chaos import ChaosSource, FaultPlan
from repro.resilience.ledger import (
    DISPOSITION_FAILED,
    DISPOSITION_OK,
    DISPOSITION_RECOVERED,
    DISPOSITION_SHORT_CIRCUITED,
    AttemptRecord,
    DegradationLedger,
    SourceDisposition,
)
from repro.resilience.policy import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.resilience.wrap import (
    ResilientDocumentSource,
    ResilientStructuredSource,
    is_transient,
    resilient,
)

__all__ = [
    "AttemptRecord",
    "BreakerState",
    "ChaosSource",
    "CircuitBreaker",
    "Deadline",
    "DegradationLedger",
    "DISPOSITION_FAILED",
    "DISPOSITION_OK",
    "DISPOSITION_RECOVERED",
    "DISPOSITION_SHORT_CIRCUITED",
    "FaultPlan",
    "ResilientDocumentSource",
    "ResilientStructuredSource",
    "RetryPolicy",
    "SourceDisposition",
    "is_transient",
    "resilient",
]
