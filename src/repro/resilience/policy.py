"""Resilience policies: retries, deadlines, and circuit breakers.

The acquisition edge of Figure 1 talks to "potentially thousands of
sources", and Veracity means some of them are down, slow, or rate-limited
at any moment.  This module holds the three policy primitives the
:mod:`repro.resilience` wrappers apply around every physical access:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  seeded jitter.  Delays are *computed* here and *spent* through the
  injectable :class:`repro.obs.Clock` (``clock.wait``), so a manual clock
  makes every retry schedule deterministic and instantaneous in tests.
* :class:`Deadline` — a time budget on the same clock, for one fetch or
  one whole run.
* :class:`CircuitBreaker` — the per-source closed/open/half-open state
  machine that stops hammering a source that keeps failing, with a
  clock-based cooldown before traffic is re-admitted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.errors import CircuitOpenError, DeadlineExceededError, SourceError
from repro.obs.clock import Clock

__all__ = ["BreakerState", "CircuitBreaker", "Deadline", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a source failed.

    ``max_attempts`` counts physical attempts (1 = no retries).  The delay
    before attempt ``n+1`` is ``base_delay * multiplier**(n-1)`` capped at
    ``max_delay``, plus up to ``jitter`` of itself drawn from a generator
    seeded with ``seed`` and the source name — identical runs back off
    identically.  ``fetch_deadline``/``run_deadline`` bound one access /
    one whole run in clock seconds (``None`` = unbounded).  The breaker
    knobs configure each wrapped source's :class:`CircuitBreaker`.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    seed: int = 2016
    fetch_deadline: float | None = None
    run_deadline: float | None = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SourceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise SourceError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise SourceError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise SourceError("jitter is a fraction of the delay, in [0, 1]")
        if self.breaker_threshold < 1:
            raise SourceError("breaker_threshold must be >= 1")
        for name in ("fetch_deadline", "run_deadline", "breaker_cooldown"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise SourceError(f"{name} must be non-negative")

    def rng_for(self, source_name: str) -> random.Random:
        """The jitter generator for one source — seeded, so deterministic."""
        return random.Random(f"{self.seed}:{source_name}")

    def backoff(self, failures: int, rng: random.Random) -> float:
        """Seconds to wait after the ``failures``-th failed attempt."""
        if failures < 1:
            return 0.0
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (failures - 1)
        )
        return delay + delay * self.jitter * rng.random()


class Deadline:
    """A time budget on an injected clock.

    Created when the budgeted work starts; :meth:`check` raises
    :class:`~repro.errors.DeadlineExceededError` once the clock has moved
    past the budget.
    """

    def __init__(self, clock: Clock, budget: float, label: str = "") -> None:
        if budget < 0:
            raise SourceError(f"deadline budget must be non-negative: {budget}")
        self._clock = clock
        self._expires = clock.current_time() + budget
        self.label = label

    def remaining(self) -> float:
        """Clock seconds left before the budget runs out (never negative)."""
        return max(0.0, self._expires - self._clock.current_time())

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._clock.current_time() >= self._expires

    def check(self, doing: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget has run out."""
        if self.expired:
            what = doing or self.label or "work"
            raise DeadlineExceededError(
                f"deadline exceeded while {what} "
                f"(budget expired at t={self._expires:g})"
            )


class BreakerState(str, Enum):
    """The circuit breaker's three states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-source failure circuit: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`admit` raises :class:`~repro.errors.CircuitOpenError`
    without touching the source.  After ``cooldown`` clock seconds the
    next admit moves to half-open: one trial call is let through, and its
    outcome closes the circuit again or re-opens it for another cooldown.
    """

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise SourceError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise SourceError("cooldown must be non-negative")
        self._clock = clock
        self._threshold = failure_threshold
        self._cooldown = cooldown
        self.name = name
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        #: How many times the circuit has opened over its lifetime.
        self.times_opened = 0

    @property
    def state(self) -> BreakerState:
        """The current state (open circuits report open until admitted)."""
        return self._state

    def admit(self) -> None:
        """Gate one call: raise :class:`CircuitOpenError` while open.

        An open circuit whose cooldown has elapsed transitions to
        half-open and admits the call as the trial.
        """
        if self._state is not BreakerState.OPEN:
            return
        elapsed = self._clock.current_time() - (self._opened_at or 0.0)
        if elapsed >= self._cooldown:
            self._state = BreakerState.HALF_OPEN
            return
        raise CircuitOpenError(
            f"circuit for source {self.name!r} is open "
            f"({self._cooldown - elapsed:.3g}s of cooldown remaining)"
        )

    def record_success(self) -> None:
        """A call succeeded: close the circuit and forget the failures."""
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A call failed: count it, opening the circuit at the threshold.

        A half-open trial failure re-opens immediately — the source has
        not recovered, so the cooldown starts over.
        """
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self._threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = self._clock.current_time()
            self.times_opened += 1
