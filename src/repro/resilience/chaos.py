"""Deterministic chaos: seeded fault injection for source acquisition.

Baumer's ETL-grammar argument (PAPERS.md) applies to fault handling too:
a resilience claim is only reproducible if the *faults* are reproducible.
:class:`ChaosSource` wraps a structured source and injects failures from
a :class:`FaultPlan` — dead sources, fail-N-then-succeed, seeded
intermittent failure rates, latency spent through the injected
:class:`~repro.obs.Clock`, and malformed payloads built from the same
seeded :mod:`repro.datagen.corrupt` primitives the synthetic worlds use.
Two runs with the same plan observe byte-identical fault sequences, so
the chaos e2e tests and the E11 benchmark assert exact outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.corrupt import maybe, misspell
from repro.errors import InjectedCrashError, SourceError, TransientSourceError
from repro.model.provenance import Step
from repro.model.records import Record, Table
from repro.obs.clock import Clock, system_clock
from repro.sources.base import StructuredSource

__all__ = ["ChaosSource", "FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """One source's scripted misbehaviour.

    * ``dead`` — every load raises a *permanent* :class:`SourceError`.
    * ``fail_first`` — the first N loads raise
      :class:`TransientSourceError`, then the source recovers (models a
      momentary outage; exercises retry-until-success).
    * ``failure_rate`` — each later load fails transiently with this
      probability, drawn from a generator seeded with ``seed`` and the
      source name.
    * ``latency`` — clock seconds injected per load through ``clock.wait``
      (free and deterministic under a manual clock).
    * ``corrupt_rate`` — per-record probability of a malformed payload:
      one string cell is misspelled via :func:`repro.datagen.corrupt.misspell`.
    * ``die_at_step`` — the Nth load raises
      :class:`~repro.errors.InjectedCrashError`, a scripted process death
      that (unlike every fault above) escapes the resilience engine and
      the wrangler's degradation handlers entirely; 0 never dies.  The
      crash-recovery suite uses this to kill a run mid-acquisition.
    """

    dead: bool = False
    fail_first: int = 0
    failure_rate: float = 0.0
    latency: float = 0.0
    corrupt_rate: float = 0.0
    die_at_step: int = 0
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.fail_first < 0:
            raise SourceError("fail_first must be non-negative")
        if self.die_at_step < 0:
            raise SourceError("die_at_step must be non-negative")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise SourceError("failure_rate is a probability in [0, 1]")
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise SourceError("corrupt_rate is a probability in [0, 1]")
        if self.latency < 0:
            raise SourceError("latency must be non-negative")


class ChaosSource(StructuredSource):
    """A structured source that misbehaves exactly as scripted.

    Wraps an inner :class:`StructuredSource`; each load consults the
    :class:`FaultPlan` in a fixed order (latency, dead, fail-first,
    intermittent, corruption) so the injected fault sequence is a pure
    function of the plan, the seed, and the load count.
    """

    def __init__(
        self,
        inner: StructuredSource,
        plan: FaultPlan,
        clock: Clock | None = None,
    ) -> None:
        super().__init__(inner.metadata)
        self._inner = inner
        self.plan = plan
        self._clock = clock or system_clock
        self._rng = random.Random(f"{plan.seed}:{inner.name}")
        self._loads = 0

    @property
    def loads(self) -> int:
        """How many loads (physical attempts) have been made so far."""
        return self._loads

    def delta_cursor(self) -> str | None:
        return self._inner.delta_cursor()

    def with_cursor(self, attribute: str) -> "ChaosSource":
        self._inner.with_cursor(attribute)
        return self

    def _content_token(self) -> object:
        return self._inner._content_token()

    def _load(self) -> Table:
        self._loads += 1
        if self.plan.die_at_step and self._loads == self.plan.die_at_step:
            raise InjectedCrashError(
                f"chaos: process death at load #{self._loads} of source "
                f"{self.name!r}"
            )
        if self.plan.latency:
            self._clock.wait(self.plan.latency)
        if self.plan.dead:
            raise SourceError(
                f"chaos: source {self.name!r} is dead (load #{self._loads})"
            )
        if self._loads <= self.plan.fail_first:
            raise TransientSourceError(
                f"chaos: source {self.name!r} failing transiently "
                f"(load #{self._loads} of the first {self.plan.fail_first})"
            )
        if self.plan.failure_rate and maybe(self._rng, self.plan.failure_rate):
            raise TransientSourceError(
                f"chaos: source {self.name!r} failed intermittently "
                f"(load #{self._loads}, rate {self.plan.failure_rate:g})"
            )
        table = self._inner._load()
        if self.plan.corrupt_rate:
            table = self._corrupt(table)
        return table

    def _corrupt(self, table: Table) -> Table:
        """Misspell one string cell per hit record — malformed payloads."""
        rng = self._rng

        def mangle(record: Record) -> Record:
            if not maybe(rng, self.plan.corrupt_rate):
                return record
            for attribute in record.cells:
                value = record.get(attribute)
                if (
                    value.is_missing
                    or not isinstance(value.raw, str)
                    or len(value.raw) < 3  # too short for misspell to mangle
                ):
                    continue
                return record.with_cells({
                    attribute: value.with_raw(
                        misspell(value.raw, rng), Step.SOURCE,
                        "chaos-corruption",
                    )
                })
            return record

        return table.map_records(mangle)
