"""The degradation ledger: what acquisition actually went through.

Pay-as-you-go wrangling over flaky sources must *complete and account*
rather than crash: every physical attempt (probe or fetch), its outcome,
the backoff spent, the breaker state, and each source's final disposition
are recorded here.  ``Wrangler.run`` surfaces the export as
``WrangleResult.degradation`` so a caller can see exactly which sources
degraded and how hard the pipeline worked to keep them.

The export is a plain, deterministically ordered dict — two runs with the
same seeds and the same manual clock produce byte-identical JSON.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "AttemptRecord",
    "DegradationLedger",
    "SourceDisposition",
    "DISPOSITION_OK",
    "DISPOSITION_RECOVERED",
    "DISPOSITION_FAILED",
    "DISPOSITION_SHORT_CIRCUITED",
]

#: Final dispositions a source can settle on.
DISPOSITION_OK = "ok"
DISPOSITION_RECOVERED = "recovered"
DISPOSITION_FAILED = "failed"
DISPOSITION_SHORT_CIRCUITED = "short-circuited"

#: Dispositions that count as surviving the run.
_SURVIVING = {DISPOSITION_OK, DISPOSITION_RECOVERED}


@dataclass(frozen=True)
class AttemptRecord:
    """One physical attempt against one source."""

    op: str  # "fetch" | "probe"
    attempt: int  # 1-based attempt number within the call
    outcome: str  # "success" | "transient-failure" | "permanent-failure"
    #              | "short-circuit" | "deadline"
    error: str = ""
    backoff: float = 0.0  # clock seconds waited *after* this attempt

    def to_dict(self) -> dict[str, object]:
        """The exported shape (stable key order)."""
        return {
            "op": self.op,
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error": self.error,
            "backoff": round(self.backoff, 6),
        }


@dataclass
class SourceDisposition:
    """Everything the ledger knows about one source."""

    name: str
    attempts: list[AttemptRecord] = field(default_factory=list)
    breaker_state: str = "closed"
    disposition: str = DISPOSITION_OK

    @property
    def survived(self) -> bool:
        """Whether the source ultimately delivered data this run."""
        return self.disposition in _SURVIVING

    def to_dict(self) -> dict[str, object]:
        """The exported shape (stable key order)."""
        return {
            "attempts": [record.to_dict() for record in self.attempts],
            "breaker_state": self.breaker_state,
            "disposition": self.disposition,
            "survived": self.survived,
        }


class DegradationLedger:
    """Per-source attempt/outcome accounting for one wrangler's lifetime.

    Written by the :class:`~repro.resilience.wrap` wrappers, read by
    ``Wrangler`` for quorum enforcement and result reporting.
    """

    def __init__(self) -> None:
        self._sources: dict[str, SourceDisposition] = {}
        # Concurrent acquisition writes from one thread per source, but
        # the entry map itself is shared — guard its mutations.
        self._lock = threading.Lock()

    def _entry(self, name: str) -> SourceDisposition:
        with self._lock:
            entry = self._sources.get(name)
            if entry is None:
                entry = SourceDisposition(name)
                self._sources[name] = entry
            return entry

    def record_attempt(self, name: str, record: AttemptRecord) -> None:
        """Append one physical attempt's record for ``name``."""
        self._entry(name).attempts.append(record)

    def settle(self, name: str, disposition: str, breaker_state: str) -> None:
        """Set a source's latest disposition and breaker state."""
        entry = self._entry(name)
        entry.disposition = disposition
        entry.breaker_state = breaker_state

    def disposition(self, name: str) -> SourceDisposition | None:
        """The entry for ``name``, or ``None`` if never touched."""
        return self._sources.get(name)

    def names(self) -> list[str]:
        """Every source the ledger has seen, sorted."""
        return sorted(self._sources)

    def survivors(self, names: list[str]) -> list[str]:
        """The subset of ``names`` that survived (untouched = survived)."""
        kept = []
        for name in names:
            entry = self._sources.get(name)
            if entry is None or entry.survived:
                kept.append(name)
        return kept

    def dead(self, names: list[str]) -> list[str]:
        """The subset of ``names`` that did not survive."""
        surviving = set(self.survivors(names))
        return [name for name in names if name not in surviving]

    def clear(self) -> None:
        """Forget everything (a fresh measurement window)."""
        self._sources.clear()

    def export(self) -> dict[str, dict[str, object]]:
        """The full ledger as a deterministically ordered plain dict."""
        return {
            name: self._sources[name].to_dict()
            for name in sorted(self._sources)
        }
