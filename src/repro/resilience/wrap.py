"""Transparent resilient wrappers around data sources.

:func:`resilient` wraps any :class:`~repro.sources.base.DataSource` so
that every ``fetch``/``probe`` runs under a :class:`RetryPolicy`: bounded
attempts, exponential seeded backoff spent through the injected
:class:`~repro.obs.Clock`, a per-source :class:`CircuitBreaker`, and
per-fetch/per-run :class:`Deadline` budgets.  The wrapper is shape
preserving — a wrapped :class:`StructuredSource` *is* a
``StructuredSource`` — so the wrangler's pipeline needs no changes to run
over wrapped registries.

Accounting stays honest: each *physical* attempt is delegated to the
inner source's own ``fetch``/``probe``, so ``cost_per_access`` is charged
per attempt and the wrapper reports the inner source's accumulated cost.
Every attempt, outcome, backoff, and final disposition lands in the
shared :class:`~repro.resilience.ledger.DegradationLedger` and in
``resilience.*`` metrics and trace spans.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    SourceError,
    TransientSourceError,
    WranglingError,
)
from repro.obs import Telemetry
from repro.resilience.ledger import (
    DISPOSITION_FAILED,
    DISPOSITION_OK,
    DISPOSITION_RECOVERED,
    DISPOSITION_SHORT_CIRCUITED,
    AttemptRecord,
    DegradationLedger,
)
from repro.resilience.policy import BreakerState, CircuitBreaker, Deadline, RetryPolicy
from repro.sources.base import DataSource, Document, DocumentSource, StructuredSource
from repro.model.records import Table

__all__ = [
    "ResilientDocumentSource",
    "ResilientStructuredSource",
    "is_transient",
    "resilient",
]

T = TypeVar("T")

#: Numeric breaker-state encoding for the per-source state gauge.
_BREAKER_GAUGE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


def is_transient(failure: BaseException) -> bool:
    """Whether a failure is worth retrying.

    :class:`TransientSourceError` is the declared retryable taxonomy;
    raw :class:`OSError` from a source that has not adopted it is treated
    as transient too (I/O hiccups are the canonical transient failure).
    """
    return isinstance(failure, (TransientSourceError, OSError))


class _Resilience:
    """The retry/breaker/deadline engine shared by both wrapper shapes."""

    def __init__(
        self,
        inner: DataSource,
        policy: RetryPolicy,
        telemetry: Telemetry | None = None,
        ledger: DegradationLedger | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.telemetry = telemetry or Telemetry()
        self.ledger = ledger or DegradationLedger()
        self.rng = policy.rng_for(inner.name)
        self.breaker = CircuitBreaker(
            self.telemetry.clock,
            failure_threshold=policy.breaker_threshold,
            cooldown=policy.breaker_cooldown,
            name=inner.name,
        )
        #: A shared per-run deadline, set by the wrangler before each run.
        self.run_deadline: Deadline | None = None

    # -- bookkeeping -------------------------------------------------------

    def _settle(self, disposition: str) -> None:
        self.ledger.settle(
            self.inner.name, disposition, self.breaker.state.value
        )
        self.telemetry.metrics.gauge(
            f"resilience.breaker.state.{self.inner.name}"
        ).set(_BREAKER_GAUGE[self.breaker.state])

    def _record(
        self, op: str, attempt: int, outcome: str,
        error: str = "", backoff: float = 0.0,
    ) -> None:
        self.ledger.record_attempt(
            self.inner.name,
            AttemptRecord(op, attempt, outcome, error=error, backoff=backoff),
        )

    # -- the engine --------------------------------------------------------

    def execute(self, op: str, call: Callable[[], T]) -> T:
        """Run one logical access under the policy; raise on final failure."""
        metrics = self.telemetry.metrics
        clock = self.telemetry.clock
        name = self.inner.name
        fetch_deadline = (
            Deadline(clock, self.policy.fetch_deadline, label=f"{op} {name}")
            if self.policy.fetch_deadline is not None
            else None
        )
        with self.telemetry.tracer.span(
            f"resilience.{op}", source=name
        ) as span:
            try:
                self.breaker.admit()
            except CircuitOpenError as refusal:
                metrics.counter("resilience.short_circuits").increment()
                self._record(op, 0, "short-circuit", error=str(refusal))
                self._settle(DISPOSITION_SHORT_CIRCUITED)
                span.set_attribute("outcome", "short-circuit")
                raise
            failures = 0
            while True:
                attempt = failures + 1
                self._check_deadlines(op, attempt, fetch_deadline)
                metrics.counter("resilience.attempts").increment()
                if attempt > 1:
                    metrics.counter("resilience.retries").increment()
                try:
                    value = call()
                except (WranglingError, OSError) as failure:
                    failures += 1
                    self._on_failure(
                        op, failures, failure, fetch_deadline, span
                    )
                    continue
                self.breaker.record_success()
                self._record(op, attempt, "success")
                self._settle(
                    DISPOSITION_RECOVERED if failures else DISPOSITION_OK
                )
                metrics.counter("resilience.successes").increment()
                span.set_attribute("outcome", "success")
                span.set_attribute("attempts", attempt)
                return value

    def _check_deadlines(
        self, op: str, attempt: int, fetch_deadline: Deadline | None
    ) -> None:
        for deadline in (self.run_deadline, fetch_deadline):
            if deadline is None or not deadline.expired:
                continue
            self._record(op, attempt, "deadline")
            self._settle(DISPOSITION_FAILED)
            self.telemetry.metrics.counter(
                "resilience.deadline_exceeded"
            ).increment()
            deadline.check(f"{op} of source {self.inner.name!r}")

    def _on_failure(
        self,
        op: str,
        failures: int,
        failure: BaseException,
        fetch_deadline: Deadline | None,
        span,
    ) -> None:
        """Classify one failed attempt; backoff or raise."""
        metrics = self.telemetry.metrics
        name = self.inner.name
        opened_before = self.breaker.times_opened
        self.breaker.record_failure()
        if self.breaker.times_opened > opened_before:
            metrics.counter("resilience.breaker.opened").increment()
        transient = is_transient(failure)
        retryable = transient and failures < self.policy.max_attempts
        backoff = self.policy.backoff(failures, self.rng) if retryable else 0.0
        outcome = "transient-failure" if transient else "permanent-failure"
        self._record(op, failures, outcome, error=str(failure), backoff=backoff)
        metrics.counter(f"resilience.failures.{outcome}").increment()
        if not retryable:
            self._settle(DISPOSITION_FAILED)
            span.set_attribute("outcome", outcome)
            span.set_attribute("attempts", failures)
            if isinstance(failure, WranglingError):
                raise failure
            raise SourceError(
                f"source {name!r} failed with {type(failure).__name__}: "
                f"{failure}"
            ) from failure
        # Never sleep past a deadline: if the backoff cannot fit in the
        # remaining budget, the retry could not run anyway — stop now.
        for deadline in (self.run_deadline, fetch_deadline):
            if deadline is not None and backoff >= deadline.remaining():
                self._record(op, failures, "deadline")
                self._settle(DISPOSITION_FAILED)
                metrics.counter("resilience.deadline_exceeded").increment()
                span.set_attribute("outcome", "deadline")
                raise DeadlineExceededError(
                    f"backoff of {backoff:.3g}s for source {name!r} exceeds "
                    f"the remaining {deadline.remaining():.3g}s budget"
                ) from failure
        metrics.histogram("resilience.backoff.seconds").observe(backoff)
        self.telemetry.clock.wait(backoff)


class ResilientStructuredSource(StructuredSource):
    """A :class:`StructuredSource` guarded by a resilience policy.

    Delegates every physical attempt to the inner source (which charges
    its own ``cost_per_access``), and reports the inner source's access
    accounting as its own.
    """

    def __init__(
        self,
        inner: StructuredSource,
        policy: RetryPolicy,
        telemetry: Telemetry | None = None,
        ledger: DegradationLedger | None = None,
    ) -> None:
        super().__init__(inner.metadata)
        self.engine = _Resilience(inner, policy, telemetry, ledger)

    @property
    def inner(self) -> StructuredSource:
        """The wrapped source."""
        return self.engine.inner  # type: ignore[return-value]

    @property
    def accesses(self) -> float:
        return self.inner.accesses

    @property
    def total_cost(self) -> float:
        return self.inner.total_cost

    def _load(self) -> Table:
        return self.inner.fetch()

    def fetch(self) -> Table:
        return self.engine.execute("fetch", self.inner.fetch)

    def probe(self, limit: int = 25) -> Table:
        return self.engine.execute("probe", lambda: self.inner.probe(limit))

    def size_hint(self) -> int:
        return self.inner.size_hint()

    def delta_cursor(self) -> str | None:
        return self.inner.delta_cursor()

    def with_cursor(self, attribute: str) -> "ResilientStructuredSource":
        self.inner.with_cursor(attribute)
        return self

    def _content_token(self) -> object:
        return self.inner._content_token()

    def fetch_delta(self, watermark=None):
        return self.engine.execute(
            "fetch_delta", lambda: self.inner.fetch_delta(watermark)
        )


class ResilientDocumentSource(DocumentSource):
    """A :class:`DocumentSource` guarded by a resilience policy."""

    def __init__(
        self,
        inner: DocumentSource,
        policy: RetryPolicy,
        telemetry: Telemetry | None = None,
        ledger: DegradationLedger | None = None,
    ) -> None:
        super().__init__(inner.metadata)
        self.engine = _Resilience(inner, policy, telemetry, ledger)

    @property
    def inner(self) -> DocumentSource:
        """The wrapped source."""
        return self.engine.inner  # type: ignore[return-value]

    @property
    def accesses(self) -> float:
        return self.inner.accesses

    @property
    def total_cost(self) -> float:
        return self.inner.total_cost

    def _load(self) -> Sequence[Document]:
        return self.inner.fetch()

    def fetch(self) -> list[Document]:
        return self.engine.execute("fetch", self.inner.fetch)

    def probe(self, limit: int = 2) -> list[Document]:
        return self.engine.execute("probe", lambda: self.inner.probe(limit))


def resilient(
    source: DataSource,
    policy: RetryPolicy,
    telemetry: Telemetry | None = None,
    ledger: DegradationLedger | None = None,
) -> DataSource:
    """Wrap ``source`` in the resilient wrapper matching its shape.

    Idempotent: an already-wrapped source is returned unchanged, so a
    registry can be re-wrapped safely.
    """
    if isinstance(source, (ResilientStructuredSource, ResilientDocumentSource)):
        return source
    if isinstance(source, StructuredSource):
        return ResilientStructuredSource(source, policy, telemetry, ledger)
    if isinstance(source, DocumentSource):
        return ResilientDocumentSource(source, policy, telemetry, ledger)
    raise SourceError(
        f"cannot wrap source of type {type(source).__name__}: expected a "
        "StructuredSource or DocumentSource"
    )
