"""Schema mappings: executable translations into the target schema.

A :class:`Mapping` reshapes one source table into the user context's
target schema — projection, renaming, and type normalisation — while
preserving per-cell provenance (a ``MAPPING`` step is appended) and
discounting confidence by the certainty of the underlying correspondences.
"This is the paper's "tentative ... mappings" made explicit: a mapping is
an uncertain artifact with a confidence, not a trusted program.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import MappingError, TypeInferenceError
from repro.matching.schema_matching import Correspondence
from repro.model.provenance import Step
from repro.model.records import Record, Table
from repro.model.schema import Schema, coerce
from repro.model.values import MISSING, Value

__all__ = ["AttributeMap", "Mapping"]

_mapping_counter = itertools.count(1)


@dataclass(frozen=True)
class AttributeMap:
    """One target attribute's derivation from a source attribute."""

    target: str
    source: str
    confidence: float = 1.0
    transform: Callable[[object], object] | None = None


@dataclass(frozen=True)
class Mapping:
    """An executable, uncertain schema mapping for one source."""

    source_name: str
    target_schema: Schema
    attribute_maps: tuple[AttributeMap, ...]
    confidence: float = 1.0
    mapping_id: str = field(
        default_factory=lambda: f"mapping-{next(_mapping_counter)}"
    )

    @classmethod
    def from_correspondences(
        cls,
        source_name: str,
        target_schema: Schema,
        correspondences: Sequence[Correspondence],
        sample_table: Table | None = None,
    ) -> "Mapping":
        """Build a mapping from matcher output.

        The mapping's confidence is the mean correspondence confidence over
        the *required* target attributes it covers (uncovered required
        attributes pull it down to reflect incompleteness).

        With a ``sample_table``, each attribute map also gets a suggested
        value transform when the source values only fit the target type
        after reshaping (e.g. prices embedded in text) — Variety handled
        at mapping-generation time rather than left as low-confidence
        cells.
        """
        from repro.mapping.transforms import suggest_transform

        maps = []
        for c in correspondences:
            transform = None
            if (
                sample_table is not None
                and c.source_attribute in sample_table.schema
            ):
                samples = sample_table.raw_column(c.source_attribute)[:50]
                target_attribute = target_schema.get(c.target_attribute)
                if target_attribute is not None:
                    transform = suggest_transform(samples, target_attribute)
            maps.append(
                AttributeMap(
                    c.target_attribute,
                    c.source_attribute,
                    c.confidence,
                    transform=transform,
                )
            )
        maps = tuple(maps)
        covered = {m.target for m in maps}
        required = [a.name for a in target_schema if a.required]
        scores = [m.confidence for m in maps]
        for name in required:
            if name not in covered:
                scores.append(0.0)
        confidence = sum(scores) / len(scores) if scores else 0.0
        return cls(source_name, target_schema, maps, confidence)

    def covered_attributes(self) -> frozenset[str]:
        """Target attributes this mapping populates."""
        return frozenset(m.target for m in self.attribute_maps)

    def coverage(self) -> float:
        """Fraction of the target schema this mapping populates."""
        if not len(self.target_schema):
            return 1.0
        return len(self.covered_attributes()) / len(self.target_schema)

    def covers_required(self) -> bool:
        """Whether every required target attribute is populated."""
        covered = self.covered_attributes()
        return all(
            attr.name in covered for attr in self.target_schema if attr.required
        )

    def map_for(self, target: str) -> AttributeMap | None:
        """The attribute map producing ``target``, if any."""
        for attribute_map in self.attribute_maps:
            if attribute_map.target == target:
                return attribute_map
        return None

    def apply_record(self, record: Record) -> Record:
        """Translate one record into the target schema."""
        cells: dict[str, Value] = {}
        for attribute in self.target_schema:
            attribute_map = self.map_for(attribute.name)
            if attribute_map is None:
                cells[attribute.name] = MISSING
                continue
            value = record.get(attribute_map.source)
            if value.is_missing:
                cells[attribute.name] = MISSING
                continue
            raw = value.raw
            if attribute_map.transform is not None:
                raw = attribute_map.transform(raw)
            confidence_penalty = 1.0
            try:
                raw = coerce(raw, attribute.dtype)
            except TypeInferenceError:
                # Keep the raw value but flag it as dubious; the quality
                # component will surface it rather than silently dropping it.
                confidence_penalty = 0.5
            cells[attribute.name] = Value(
                raw,
                attribute.dtype,
                min(
                    1.0,
                    value.confidence
                    * attribute_map.confidence
                    * confidence_penalty,
                ),
                value.provenance.derive(Step.MAPPING, self.mapping_id),
            )
        # Carry evaluation-only lineage columns through untouched.
        for name, value in record.cells.items():
            if name.startswith("_"):
                cells[name] = value
        return Record(record.rid, record.source, cells)

    def apply(self, table: Table) -> Table:
        """Translate a whole table into the target schema."""
        if table.name != self.source_name:
            raise MappingError(
                f"mapping {self.mapping_id} is for source "
                f"{self.source_name!r}, not {table.name!r}"
            )
        return Table(
            self.source_name,
            self.target_schema,
            [self.apply_record(record) for record in table.records],
        )

    def describe(self) -> str:
        """A readable ``target <- source`` summary."""
        parts = ", ".join(
            f"{m.target}<-{m.source}({m.confidence:.2f})"
            for m in self.attribute_maps
        )
        return (
            f"mapping {self.mapping_id} [{self.source_name}] "
            f"confidence={self.confidence:.2f}: {parts}"
        )
