"""Value transforms for mappings, and transform *suggestion*.

A correspondence says which source attribute feeds which target attribute;
a transform says how the values must be reshaped on the way (Variety is
about formats as much as names).  This module provides the common
reshaping functions as named, composable transforms, plus
:func:`suggest_transform`, which inspects sample values and proposes the
transform that makes them coercible to the target type — so mapping
generation can repair format mismatches automatically instead of leaving
low-confidence raw values behind.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import MappingError, TypeInferenceError
from repro.extraction.patterns import recogniser
from repro.model.schema import Attribute, DataType, coerce

__all__ = ["Transform", "TRANSFORMS", "get_transform", "suggest_transform"]


@dataclass(frozen=True)
class Transform:
    """A named, documented value transform.

    ``input_dtypes`` declares which :class:`DataType` columns the transform
    is meaningful on (``None`` = any), and ``output_dtype`` the type of the
    values it produces (``None`` = same shape as its input).  The static
    type checker uses both to flag transforms applied to the wrong type
    before any value flows.
    """

    name: str
    fn: Callable[[object], object]
    description: str
    input_dtypes: tuple[DataType, ...] | None = None
    output_dtype: DataType | None = None

    def __call__(self, value: object) -> object:
        if value is None:
            return None
        return self.fn(value)


def _titlecase(value: object) -> object:
    return str(value).title()


def _lowercase(value: object) -> object:
    return str(value).lower()


def _strip_html(value: object) -> object:
    return re.sub(r"<[^>]+>", " ", str(value)).strip()


def _collapse_whitespace(value: object) -> object:
    return " ".join(str(value).split())


def _extract_price(value: object) -> object:
    found = recogniser("price").find(str(value))
    return found if found is not None else value


def _extract_date(value: object) -> object:
    found = recogniser("date").find(str(value))
    return found if found is not None else value


def _extract_url(value: object) -> object:
    found = recogniser("url").find(str(value))
    return found if found is not None else value


def _extract_geo(value: object) -> object:
    found = recogniser("geo").find(str(value))
    return found if found is not None else value


def _pennies_to_pounds(value: object) -> object:
    try:
        return float(value) / 100.0  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return value


def _thousands(value: object) -> object:
    try:
        return float(value) * 1000.0  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return value


_NUMERIC_INPUTS = (
    DataType.INTEGER,
    DataType.FLOAT,
    DataType.CURRENCY,
    DataType.STRING,
)

TRANSFORMS: dict[str, Transform] = {
    t.name: t
    for t in (
        Transform("titlecase", _titlecase, "Title-Case The Words",
                  input_dtypes=(DataType.STRING,),
                  output_dtype=DataType.STRING),
        Transform("lowercase", _lowercase, "lowercase the value",
                  input_dtypes=(DataType.STRING,),
                  output_dtype=DataType.STRING),
        Transform("strip_html", _strip_html, "remove HTML tags",
                  input_dtypes=(DataType.STRING,),
                  output_dtype=DataType.STRING),
        Transform("collapse_whitespace", _collapse_whitespace,
                  "normalise runs of whitespace",
                  input_dtypes=(DataType.STRING,),
                  output_dtype=DataType.STRING),
        Transform("extract_price", _extract_price,
                  "pull the price out of surrounding text",
                  input_dtypes=(DataType.STRING, DataType.CURRENCY),
                  output_dtype=DataType.CURRENCY),
        Transform("extract_date", _extract_date,
                  "pull the date out of surrounding text",
                  input_dtypes=(DataType.STRING, DataType.DATE),
                  output_dtype=DataType.DATE),
        Transform("extract_url", _extract_url,
                  "pull the URL out of surrounding text",
                  input_dtypes=(DataType.STRING, DataType.URL),
                  output_dtype=DataType.URL),
        Transform("extract_geo", _extract_geo,
                  "pull the lat/lon pair out of surrounding text",
                  input_dtypes=(DataType.STRING, DataType.GEO),
                  output_dtype=DataType.GEO),
        Transform("pennies_to_pounds", _pennies_to_pounds,
                  "divide a minor-unit integer amount by 100",
                  input_dtypes=_NUMERIC_INPUTS,
                  output_dtype=DataType.FLOAT),
        Transform("thousands", _thousands,
                  "multiply by 1000 (salary given in k)",
                  input_dtypes=_NUMERIC_INPUTS,
                  output_dtype=DataType.FLOAT),
    )
}


def get_transform(name: str) -> Transform:
    """The built-in transform called ``name``."""
    if name not in TRANSFORMS:
        raise MappingError(
            f"unknown transform {name!r}; known: {sorted(TRANSFORMS)}"
        )
    return TRANSFORMS[name]


_EXTRACTOR_FOR_DTYPE = {
    DataType.CURRENCY: "extract_price",
    DataType.DATE: "extract_date",
    DataType.URL: "extract_url",
    DataType.GEO: "extract_geo",
}


def _coercible_fraction(
    values: Sequence[object], dtype: DataType, transform: Transform | None
) -> float:
    present = [v for v in values if v is not None and str(v).strip()]
    if not present:
        return 0.0
    ok = 0
    for value in present:
        candidate = transform(value) if transform is not None else value
        try:
            coerce(candidate, dtype)
        except TypeInferenceError:
            continue
        ok += 1
    return ok / len(present)


def suggest_transform(
    values: Sequence[object],
    target: Attribute,
    min_gain: float = 0.2,
) -> Transform | None:
    """Propose the transform that makes sample values fit the target type.

    Candidates are tried in order of specificity; a transform is suggested
    only when it raises the coercible fraction by at least ``min_gain``
    over using the raw values — no transform is better than a pointless
    one.  Returns ``None`` when the values already fit (or nothing helps).
    """
    baseline = _coercible_fraction(values, target.dtype, None)
    if baseline >= 0.95:
        return None
    candidates: list[str] = []
    extractor = _EXTRACTOR_FOR_DTYPE.get(target.dtype)
    if extractor is not None:
        candidates.append(extractor)
    if target.dtype.is_numeric():
        candidates.append("thousands")
    if target.dtype is DataType.STRING:
        candidates.extend(["strip_html", "collapse_whitespace"])
    best: Transform | None = None
    best_fraction = baseline
    for name in candidates:
        transform = TRANSFORMS[name]
        fraction = _coercible_fraction(values, target.dtype, transform)
        if fraction > best_fraction:
            best, best_fraction = transform, fraction
    if best is not None and best_fraction - baseline >= min_gain:
        return best
    return None
