"""Schema mappings: generation from correspondences, execution, and
context-aware selection."""

from repro.mapping.mapping import AttributeMap, Mapping
from repro.mapping.selection import MappingSelector, ScoredMapping

__all__ = ["AttributeMap", "Mapping", "MappingSelector", "ScoredMapping"]
