"""Context-aware mapping selection (paper Sections 2.1 and 4.1).

"The selection of which mappings to use must take into account information
from the user context, such as the number of results required, the budget
for accessing sources, and quality requirements."  Candidate mappings are
scored on the user's quality dimensions — accuracy, completeness,
timeliness, cost, relevance — from what the working data currently
believes (annotations, source reliability), filtered by the context's hard
floors, and picked under the budget by weighted rank or TOPSIS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.context.decision import Alternative, pareto_front, rank, topsis
from repro.context.user_context import UserContext
from repro.mapping.mapping import Mapping
from repro.model.annotations import AnnotationStore, Dimension
from repro.sources.registry import SourceRegistry

__all__ = ["ScoredMapping", "MappingSelector"]


@dataclass(frozen=True)
class ScoredMapping:
    """A mapping with its per-dimension scores and final utility."""

    mapping: Mapping
    scores: dict[Dimension, float]
    utility: float


class MappingSelector:
    """Scores and selects mappings against a user context."""

    def __init__(
        self,
        registry: SourceRegistry,
        annotations: AnnotationStore,
        max_cost: float = 10.0,
    ) -> None:
        self.registry = registry
        self.annotations = annotations
        self.max_cost = max_cost

    # -- scoring -----------------------------------------------------------

    def score(self, mapping: Mapping) -> dict[Dimension, float]:
        """Estimate a mapping's quality profile from current evidence."""
        source = mapping.source_name
        target = f"source:{source}"

        reliability = (
            self.registry.reliability(source).mean
            if source in self.registry
            else 0.5
        )
        annotated_accuracy = self.annotations.score(
            target, Dimension.ACCURACY, default=reliability
        )
        accuracy = (
            annotated_accuracy + reliability + min(1.0, mapping.confidence)
        ) / 3.0

        completeness = mapping.coverage()
        completeness = 0.6 * completeness + 0.4 * self.annotations.score(
            target, Dimension.COMPLETENESS, default=completeness
        )

        if source in self.registry:
            metadata = self.registry.get(source).metadata
            cheapness = 1.0 - min(metadata.cost_per_access, self.max_cost) / self.max_cost
            # High change rate means the snapshot decays fast; the
            # timeliness annotation (from quality analysis) dominates when
            # present.
            timeliness = self.annotations.score(
                target, Dimension.TIMELINESS, default=0.8
            )
        else:
            cheapness = 0.5
            timeliness = 0.5

        relevance = self.annotations.score(
            target, Dimension.RELEVANCE, default=0.5
        )
        consistency = self.annotations.score(
            target, Dimension.CONSISTENCY, default=0.7
        )
        return {
            Dimension.ACCURACY: accuracy,
            Dimension.COMPLETENESS: completeness,
            Dimension.TIMELINESS: timeliness,
            Dimension.COST: cheapness,
            Dimension.RELEVANCE: relevance,
            Dimension.CONSISTENCY: consistency,
        }

    # -- selection ----------------------------------------------------------

    def select(
        self,
        candidates: list[Mapping],
        context: UserContext,
        limit: int | None = None,
    ) -> list[ScoredMapping]:
        """Choose the mappings to run for ``context``.

        Floors filter, the context's decision method ranks, and the budget
        truncates (each mapping costs its source's access cost).  Mappings
        that do not populate the required target attributes are rejected
        outright — they cannot produce fit-for-purpose data.
        """
        viable: list[tuple[Mapping, dict[Dimension, float]]] = []
        for mapping in candidates:
            if not mapping.covers_required():
                continue
            scores = self.score(mapping)
            if not context.meets_floors(scores):
                continue
            viable.append((mapping, scores))

        alternatives = [
            Alternative(mapping.mapping_id, scores, payload=(mapping, scores))
            for mapping, scores in viable
        ]
        if context.decision_method == "topsis":
            ranked = topsis(alternatives, dict(context.weights))
        else:
            ranked = rank(alternatives, dict(context.weights))

        selected: list[ScoredMapping] = []
        budget = context.budget
        for alternative, utility in ranked:
            mapping, scores = alternative.payload  # type: ignore[misc]
            cost = (
                self.registry.get(mapping.source_name).metadata.cost_per_access
                if mapping.source_name in self.registry
                else 0.0
            )
            if cost > budget:
                continue
            budget -= cost
            selected.append(ScoredMapping(mapping, scores, utility))
            if limit is not None and len(selected) >= limit:
                break
        return selected

    def pareto(self, candidates: list[Mapping]) -> list[ScoredMapping]:
        """The non-dominated mapping set, for users who decline weights.

        Section 2.1 allows that users may not commit to trade-offs up
        front; the Pareto front presents exactly the alternatives where
        choosing one thing costs another, with dominated candidates
        removed.  Utilities are reported as 0 (no weighting happened).
        """
        viable = [
            (mapping, self.score(mapping))
            for mapping in candidates
            if mapping.covers_required()
        ]
        alternatives = [
            Alternative(mapping.mapping_id, scores, payload=(mapping, scores))
            for mapping, scores in viable
        ]
        front = pareto_front(alternatives)
        return [
            ScoredMapping(alt.payload[0], alt.payload[1], 0.0)  # type: ignore[index]
            for alt in front
        ]
