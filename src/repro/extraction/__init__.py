"""Data extraction: DOM parsing, field recognisers, wrapper induction,
and joint wrapper/data repair (the Data Extraction box of Figure 1)."""

from repro.extraction.dom import DomNode, parse_html
from repro.extraction.induction import ExampleAnnotation, auto_induce, induce_wrapper
from repro.extraction.patterns import (
    RECOGNISERS,
    Recogniser,
    best_recogniser,
    recognise,
    recogniser,
)
from repro.extraction.repair import RepairAction, RepairReport, WrapperRepairer
from repro.extraction.wrapper import FieldRule, Wrapper

__all__ = [
    "DomNode",
    "ExampleAnnotation",
    "FieldRule",
    "RECOGNISERS",
    "Recogniser",
    "RepairAction",
    "RepairReport",
    "Wrapper",
    "WrapperRepairer",
    "auto_induce",
    "best_recogniser",
    "induce_wrapper",
    "parse_html",
    "recognise",
    "recogniser",
]
