"""Joint wrapper and data repair, after WADaR (Ortona et al., PVLDB 2015).

Section 4.1: "existing knowledge bases and intermediate products of data
cleaning and integration processes can be used to improve the quality of
wrapper induction".  Here the data context diagnoses extraction defects —
mis-segmented fields (the price stuck inside the title), swapped columns,
type-violating values — and repairs **both** the wrapper (so future
extractions are right) and the already-extracted data (so this run is
right), recording every change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.context.data_context import DataContext
from repro.errors import TypeInferenceError
from repro.extraction.patterns import recognise, recogniser
from repro.extraction.wrapper import FieldRule, Wrapper
from repro.model.provenance import Step
from repro.model.records import Table
from repro.model.schema import DataType, coerce
from repro.sources.base import Document

__all__ = ["RepairAction", "RepairReport", "WrapperRepairer"]

#: Which recogniser re-segments values of a given expected type.
_RECOGNISER_FOR_DTYPE = {
    DataType.CURRENCY: "price",
    DataType.DATE: "date",
    DataType.URL: "url",
    DataType.GEO: "geo",
    DataType.FLOAT: "rating",
}


@dataclass(frozen=True)
class RepairAction:
    """One repair applied to a wrapper or to extracted data."""

    kind: str  # "segment" | "swap" | "value"
    attribute: str
    detail: str


@dataclass
class RepairReport:
    """Everything a repair pass did, with before/after validity."""

    actions: list[RepairAction]
    validity_before: dict[str, float]
    validity_after: dict[str, float]

    @property
    def improved(self) -> bool:
        """Whether overall validity went up."""
        if not self.validity_before:
            return False
        before = sum(self.validity_before.values()) / len(self.validity_before)
        after_map = self.validity_after or self.validity_before
        after = sum(after_map.values()) / len(after_map)
        return after > before


class WrapperRepairer:
    """Diagnoses and repairs a wrapper against the data context."""

    def __init__(self, context: DataContext, min_validity: float = 0.7) -> None:
        self.context = context
        self.min_validity = min_validity

    # -- diagnosis ----------------------------------------------------------

    def expected_dtype(self, attribute: str, declared: DataType) -> DataType:
        """The type an attribute *should* have, preferring the ontology."""
        if self.context.ontology is not None:
            expected = self.context.ontology.expected_dtype(attribute)
            if expected is not None:
                return expected
        return declared

    def _value_valid(self, attribute: str, raw: object, expected: DataType) -> bool:
        if raw is None:
            return True  # missing is a completeness issue, not a validity one
        try:
            coerce(raw, expected)
        except TypeInferenceError:
            return False
        vocabulary = self.context.vocabulary(attribute)
        if vocabulary and raw not in vocabulary:
            return False
        return True

    def validity(self, table: Table) -> dict[str, float]:
        """Per-attribute fraction of values consistent with the context."""
        scores: dict[str, float] = {}
        for attribute in table.schema.names:
            expected = self.expected_dtype(attribute, table.schema[attribute].dtype)
            values = [v.raw for v in table.column(attribute) if not v.is_missing]
            if not values:
                scores[attribute] = 1.0
                continue
            valid = sum(
                1 for raw in values if self._value_valid(attribute, raw, expected)
            )
            scores[attribute] = valid / len(values)
        return scores

    # -- repair -----------------------------------------------------------

    def repair(
        self, wrapper: Wrapper, documents: Sequence[Document]
    ) -> tuple[Wrapper, Table, RepairReport]:
        """Repair ``wrapper`` against ``documents`` and the data context.

        Returns the (possibly) repaired wrapper, the table extracted with
        it (with residual bad values value-repaired), and the report.
        """
        table = wrapper.extract(documents)
        before = self.validity(table)
        actions: list[RepairAction] = []

        wrapper = self._repair_segmentation(wrapper, documents, before, actions)
        wrapper = self._repair_swaps(wrapper, documents, actions)
        wrapper = self._discover_embedded_fields(wrapper, documents, actions)

        table = wrapper.extract(documents)
        table, value_actions = self._repair_values(table)
        actions.extend(value_actions)

        after = self.validity(table)
        return wrapper, table, RepairReport(actions, before, after)

    def _repair_segmentation(
        self,
        wrapper: Wrapper,
        documents: Sequence[Document],
        validity: dict[str, float],
        actions: list[RepairAction],
    ) -> Wrapper:
        """Attach recognisers to rules whose values embed the real field."""
        for rule in list(wrapper.rules):
            score = validity.get(rule.attribute, 1.0)
            if score >= self.min_validity:
                continue
            expected = self.expected_dtype(rule.attribute, rule.dtype)
            rec_name = _RECOGNISER_FOR_DTYPE.get(expected)
            if rec_name is None or rule.recogniser_name == rec_name:
                continue
            candidate = wrapper.with_rule(
                FieldRule(
                    rule.attribute,
                    rule.rel_path,
                    rule.index,
                    recogniser_name=rec_name,
                    attr_source=rule.attr_source,
                    dtype=expected,
                )
            )
            old_table = wrapper.extract(documents)
            new_table = candidate.extract(documents)
            old_yield = sum(
                1 for v in old_table.column(rule.attribute) if not v.is_missing
            )
            new_yield = sum(
                1 for v in new_table.column(rule.attribute) if not v.is_missing
            )
            new_validity = self.validity(new_table)
            # A repair that silences the column is not a repair: require the
            # recogniser to keep at least half of the previous yield.
            if new_yield < max(1, old_yield // 2):
                continue
            if new_validity.get(rule.attribute, 0.0) > score:
                wrapper = candidate
                actions.append(
                    RepairAction(
                        "segment",
                        rule.attribute,
                        f"attached recogniser {rec_name!r} "
                        f"(validity {score:.2f} -> "
                        f"{new_validity[rule.attribute]:.2f})",
                    )
                )
        return wrapper

    def _repair_swaps(
        self,
        wrapper: Wrapper,
        documents: Sequence[Document],
        actions: list[RepairAction],
    ) -> Wrapper:
        """Swap rule paths when two attributes validate better crosswise."""
        table = wrapper.extract(documents)
        validity = self.validity(table)
        attributes = [
            rule.attribute
            for rule in wrapper.rules
            if validity.get(rule.attribute, 1.0) < self.min_validity
        ]
        for i, attr_a in enumerate(attributes):
            for attr_b in attributes[i + 1:]:
                rule_a = wrapper.rule_for(attr_a)
                rule_b = wrapper.rule_for(attr_b)
                if rule_a is None or rule_b is None:
                    continue
                swapped = wrapper.with_rule(
                    FieldRule(
                        attr_a, rule_b.rel_path, rule_b.index,
                        rule_b.recogniser_name, rule_b.attr_source, rule_a.dtype,
                    )
                ).with_rule(
                    FieldRule(
                        attr_b, rule_a.rel_path, rule_a.index,
                        rule_a.recogniser_name, rule_a.attr_source, rule_b.dtype,
                    )
                )
                new_validity = self.validity(swapped.extract(documents))
                old = validity.get(attr_a, 0.0) + validity.get(attr_b, 0.0)
                new = new_validity.get(attr_a, 0.0) + new_validity.get(attr_b, 0.0)
                if new > old:
                    wrapper = swapped
                    validity = new_validity
                    actions.append(
                        RepairAction(
                            "swap",
                            f"{attr_a}<->{attr_b}",
                            f"swapped rule paths (validity {old:.2f} -> {new:.2f})",
                        )
                    )
        return wrapper

    def _discover_embedded_fields(
        self,
        wrapper: Wrapper,
        documents: Sequence[Document],
        actions: list[RepairAction],
        min_hit_rate: float = 0.7,
    ) -> Wrapper:
        """Add rules for recognisable fields hiding inside text blobs.

        A fully automatic wrapper over a messy layout often captures
        "Acme TV — now only £219.50 (in stock)" as one text field; if a
        recogniser fires inside most values of such a field and no
        existing rule produces that field type, a new rule is synthesised
        on the same path.  This is the "identify previously unknown
        [fields]" half of context-informed extraction (Example 3).
        """
        table = wrapper.extract(documents)
        existing = {
            rule.recogniser_name for rule in wrapper.rules
            if rule.recogniser_name
        } | {
            _RECOGNISER_FOR_DTYPE.get(rule.dtype) for rule in wrapper.rules
        }
        for rule in list(wrapper.rules):
            if rule.dtype is not DataType.STRING or rule.attr_source:
                continue
            values = [
                str(v.raw)
                for v in table.column(rule.attribute)
                if not v.is_missing
            ]
            if len(values) < 3:
                continue
            found = [recognise(value) for value in values]
            candidates: dict[str, int] = {}
            for hits in found:
                for name in hits:
                    candidates[name] = candidates.get(name, 0) + 1
            for rec_name, hits in sorted(candidates.items()):
                if rec_name in existing or rec_name in (
                    r.attribute for r in wrapper.rules
                ):
                    continue
                if hits / len(values) < min_hit_rate:
                    continue
                if rec_name not in _RECOGNISER_FOR_DTYPE.values():
                    continue  # only promote high-precision field types
                from repro.extraction.patterns import recogniser as get_rec

                rec = get_rec(rec_name)
                wrapper = wrapper.with_rule(
                    FieldRule(
                        rec_name,
                        rule.rel_path,
                        rule.index,
                        recogniser_name=rec_name,
                        dtype=rec.dtype,
                    )
                )
                existing.add(rec_name)
                actions.append(
                    RepairAction(
                        "discover",
                        rec_name,
                        f"found {rec_name} embedded in {rule.attribute!r} "
                        f"({hits}/{len(values)} values)",
                    )
                )
        return wrapper

    def _repair_values(
        self, table: Table
    ) -> tuple[Table, list[RepairAction]]:
        """Last-resort per-value repair for residual violations."""
        actions: list[RepairAction] = []
        repaired_counts: dict[str, int] = {}

        expected_types = {
            attribute: self.expected_dtype(attribute, table.schema[attribute].dtype)
            for attribute in table.schema.names
        }

        def fix(record):  # type: ignore[no-untyped-def]
            updates = {}
            for attribute in table.schema.names:
                value = record.get(attribute)
                if value.is_missing:
                    continue
                expected = expected_types[attribute]
                if self._value_valid(attribute, value.raw, expected):
                    continue
                rec_name = _RECOGNISER_FOR_DTYPE.get(expected)
                if rec_name is None:
                    continue
                found = recogniser(rec_name).find(str(value.raw))
                if found is None:
                    continue
                updates[attribute] = value.with_raw(
                    found, Step.REPAIR, f"value-repair:{rec_name}"
                )
                repaired_counts[attribute] = repaired_counts.get(attribute, 0) + 1
            if updates:
                return record.with_cells(updates)
            return record

        repaired = table.map_records(fix)
        for attribute, count in sorted(repaired_counts.items()):
            actions.append(
                RepairAction(
                    "value", attribute, f"re-segmented {count} stored values"
                )
            )
        return repaired, actions
