"""Wrapper induction: learning extraction programs from pages.

Two entry points, mirroring the two regimes the paper discusses:

* :func:`induce_wrapper` — supervised induction from a handful of
  annotated example records ("pay" a few examples, get a wrapper: the
  extraction end of pay-as-you-go, cf. Crescenzi et al. [12]);
* :func:`auto_induce` — fully automatic induction that detects the page's
  dominant repeating structure and types its fields with the built-in
  recognisers (the DIADEM-style "thousands of websites to a single
  database" regime [19]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ExtractionError
from repro.extraction.dom import DomNode, parse_html
from repro.extraction.patterns import best_recogniser
from repro.extraction.wrapper import FieldRule, Wrapper
from repro.model.schema import DataType
from repro.sources.base import Document

__all__ = ["ExampleAnnotation", "induce_wrapper", "auto_induce"]


@dataclass(frozen=True)
class ExampleAnnotation:
    """A user-annotated example record on one page: ``{attribute: text}``."""

    url: str
    fields: Mapping[str, str]


def _normalise(text: str) -> str:
    return " ".join(text.split()).lower()


def _find_value_candidates(root: DomNode, value: str) -> list[DomNode]:
    """All tight elements whose text carries ``value``, best first.

    A value like a date may occur in *every* record of a listing page;
    the caller disambiguates by affinity to the other annotated fields.
    """
    wanted = _normalise(value)
    if not wanted:
        return []
    exact: list[DomNode] = []
    containing: list[DomNode] = []
    for node in root.elements():
        text = _normalise(node.text())
        if not text:
            continue
        if text == wanted:
            exact.append(node)
        elif wanted in text:
            containing.append(node)
    if exact:
        return sorted(exact, key=lambda n: -n.depth())
    return sorted(containing, key=lambda n: len(n.text()))


def _lowest_common_ancestor(nodes: Sequence[DomNode]) -> DomNode:
    if not nodes:
        raise ExtractionError("cannot take LCA of no nodes")
    paths: list[list[DomNode]] = []
    for node in nodes:
        chain = [node] + list(node.ancestors())
        paths.append(list(reversed(chain)))
    lca = paths[0][0]
    for depth in range(min(len(p) for p in paths)):
        candidate = paths[0][depth]
        if all(p[depth] is candidate for p in paths):
            lca = candidate
        else:
            break
    return lca


def _relative_signature_path(
    node: DomNode, ancestor: DomNode
) -> tuple[str, ...]:
    steps: list[str] = []
    current: DomNode | None = node
    while current is not None and current is not ancestor:
        if not current.is_text:
            steps.append(current.signature)
        current = current.parent
    return tuple(reversed(steps))


def _common_suffix(paths: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
    if not paths:
        return ()
    suffix: list[str] = []
    for position in range(1, min(len(p) for p in paths) + 1):
        step = paths[0][-position]
        if all(p[-position] == step for p in paths):
            suffix.append(step)
        else:
            break
    return tuple(reversed(suffix))


def _majority(values: Sequence[object]) -> object:
    counts: dict[object, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return max(counts, key=lambda v: counts[v])


def induce_wrapper(
    documents: Sequence[Document],
    examples: Sequence[ExampleAnnotation],
    source: str | None = None,
) -> Wrapper:
    """Induce a wrapper from annotated examples.

    For each example, the annotated field texts are located in the page,
    their lowest common ancestor becomes the record node, and relative
    field paths are generalised across examples (common suffix; occurrence
    index by majority).  The wrapper's confidence is the fraction of
    example fields it re-extracts correctly.
    """
    if not examples:
        raise ExtractionError("wrapper induction needs at least one example")
    pages = {doc.url: doc for doc in documents}
    record_paths: list[tuple[str, ...]] = []
    field_observations: dict[str, list[tuple[tuple[str, ...], int, str, str]]] = {}

    for example in examples:
        if example.url not in pages:
            raise ExtractionError(f"no document for example url {example.url!r}")
        root = parse_html(pages[example.url].html)
        candidates: dict[str, list[DomNode]] = {}
        for attribute, value in example.fields.items():
            found = _find_value_candidates(root, value)
            if found:
                candidates[attribute] = found
        if not candidates:
            continue
        # Resolve ambiguous fields (a date occurring in every record) by
        # affinity: anchor on the least ambiguous field, then prefer
        # candidates sharing the deepest ancestor with what is chosen.
        nodes: dict[str, DomNode] = {}
        for attribute in sorted(candidates, key=lambda a: len(candidates[a])):
            options = candidates[attribute]
            if not nodes:
                nodes[attribute] = options[0]
                continue
            anchor = _lowest_common_ancestor(list(nodes.values()))

            def shared_depth(node: DomNode) -> int:
                return _lowest_common_ancestor([node, anchor]).depth()

            nodes[attribute] = max(
                options, key=lambda n: (shared_depth(n), n.depth())
            )
        record_node = _lowest_common_ancestor(list(nodes.values()))
        # A record node that IS one of the field nodes is too tight: lift it.
        if record_node in nodes.values() and record_node.parent is not None:
            record_node = record_node.parent
        record_paths.append(record_node.path())
        for attribute, node in nodes.items():
            rel = _relative_signature_path(node, record_node)
            siblings = []
            for candidate in record_node.elements():
                if candidate is record_node or not rel:
                    continue
                if candidate.signature != rel[-1]:
                    continue
                rel_c = _relative_signature_path(candidate, record_node)
                if rel_c[len(rel_c) - len(rel):] == rel:
                    siblings.append(candidate)
            index = next(
                (i for i, cand in enumerate(siblings) if cand is node), 0
            )
            node_text = _normalise(node.text())
            field_observations.setdefault(attribute, []).append(
                (rel, index, example.fields[attribute], node_text)
            )

    if not record_paths:
        raise ExtractionError(
            "could not locate any annotated values in the documents"
        )

    record_path = _common_suffix(record_paths)
    if not record_path:
        record_path = (_majority([p[-1] for p in record_paths]),)

    rules: list[FieldRule] = []
    for attribute, observations in field_observations.items():
        rel = _common_suffix([obs[0] for obs in observations])
        if not rel and observations[0][0]:
            rel = (_majority([obs[0][-1] for obs in observations]),)
        index = int(_majority([obs[1] for obs in observations]))  # type: ignore[arg-type]
        sample_values = [obs[2] for obs in observations]
        needs_segmentation = any(
            _normalise(value) != text for __, __, value, text in observations
        )
        rec = best_recogniser(sample_values) if needs_segmentation else None
        typed = rec or best_recogniser(sample_values)
        dtype = typed.dtype if typed is not None else DataType.STRING
        rules.append(
            FieldRule(
                attribute,
                rel,
                index=index,
                recogniser_name=rec.name if rec else None,
                dtype=dtype,
            )
        )

    wrapper = Wrapper(
        source or (documents[0].source if documents else "unknown"),
        record_path,
        tuple(sorted(rules, key=lambda r: r.attribute)),
    )
    return wrapper.with_confidence(_induction_confidence(wrapper, pages, examples))


def _induction_confidence(
    wrapper: Wrapper,
    pages: Mapping[str, Document],
    examples: Sequence[ExampleAnnotation],
) -> float:
    """Fraction of annotated fields the induced wrapper reproduces."""
    checked = 0
    correct = 0
    for example in examples:
        document = pages.get(example.url)
        if document is None:
            continue
        extracted = wrapper.extract_document(document)
        for attribute, value in example.fields.items():
            checked += 1
            wanted = _normalise(value)
            for record in extracted:
                raw = record.raw(attribute)
                if raw is None:
                    continue
                got = _normalise(str(raw))
                if got == wanted or wanted in got or got in wanted:
                    correct += 1
                    break
    if checked == 0:
        return 0.0
    return correct / checked


def auto_induce(
    documents: Sequence[Document],
    source: str | None = None,
    min_records: int = 3,
) -> Wrapper:
    """Fully automatic wrapper induction from unannotated pages.

    Finds the page's dominant repeating element signature (the candidate
    record node), collects the text-bearing descendant signatures shared by
    most instances as candidate fields, and types/names them with the field
    recognisers.  Attributes a recogniser cannot claim are named
    ``text_0``, ``text_1``, ... in document order.
    """
    if not documents:
        raise ExtractionError("auto induction needs at least one document")
    root = parse_html(documents[0].html)
    groups: dict[tuple[str, ...], list[DomNode]] = {}
    for node in root.elements():
        if node.tag in ("html", "body", "head", "#document"):
            continue
        groups.setdefault(node.path(), []).append(node)
    candidates = {
        path: nodes
        for path, nodes in groups.items()
        if len(nodes) >= min_records and any(n.text() for n in nodes)
    }
    if not candidates:
        raise ExtractionError(
            f"no repeating structure with >= {min_records} instances found"
        )

    def richness(item: tuple[tuple[str, ...], list[DomNode]]) -> tuple[int, int]:
        path, nodes = item
        distinct_children = len(
            {child.signature for node in nodes for child in node.elements() if child is not node}
        )
        return (distinct_children, len(nodes))

    record_sig_path, record_nodes = max(candidates.items(), key=richness)

    # Candidate fields: (relative path, occurrence index) slots present in
    # most record instances.  The occurrence index is what makes bare
    # repeated cells (four <td>s per row) come out as four fields instead
    # of one.
    slot_counts: dict[tuple[tuple[str, ...], int], int] = {}
    slot_samples: dict[tuple[tuple[str, ...], int], list[str]] = {}
    for node in record_nodes:
        occurrence: dict[tuple[str, ...], int] = {}
        for descendant in node.elements():
            if descendant is node:
                continue
            has_own_text = any(
                child.is_text and child.text_content.strip()
                for child in descendant.children
            )
            if not has_own_text:
                continue
            rel = _relative_signature_path(descendant, node)
            index = occurrence.get(rel, 0)
            occurrence[rel] = index + 1
            slot = (rel, index)
            slot_counts[slot] = slot_counts.get(slot, 0) + 1
            slot_samples.setdefault(slot, []).append(descendant.text())
    threshold = max(min_records, len(record_nodes) // 2)
    field_slots = [
        slot for slot, count in slot_counts.items() if count >= threshold
    ]
    if not field_slots:
        raise ExtractionError("repeating structure has no stable fields")

    rules = []
    used_names: set[str] = set()
    anonymous = 0
    for rel, index in sorted(field_slots, key=lambda s: (len(s[0]), s[0], s[1])):
        samples = slot_samples[(rel, index)]
        rec = best_recogniser(samples)
        if rec is not None and rec.name not in used_names:
            name = rec.name
            used_names.add(name)
        else:
            name = f"text_{anonymous}"
            anonymous += 1
        rules.append(
            FieldRule(
                name,
                rel,
                index=index,
                recogniser_name=rec.name if rec else None,
                dtype=rec.dtype if rec else DataType.STRING,
            )
        )
    # Self-assessment: how regularly do the rules fire across instances?
    wrapper = Wrapper(
        source or documents[0].source,
        record_sig_path[-1:],
        tuple(rules),
    )
    fires = 0
    slots = 0
    for node in record_nodes:
        for rule in rules:
            slots += 1
            if rule.extract(node) is not None:
                fires += 1
    return wrapper.with_confidence(fires / slots if slots else 0.0)
