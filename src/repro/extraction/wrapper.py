"""Wrappers: executable extraction programs over DOM trees.

A :class:`Wrapper` turns one source's web pages into a
:class:`~repro.model.records.Table` — "providing syntactically consistent
representations that can then be brought together by the Data Integration
component" (Section 4).  Wrappers are data, not code: a record-node path
plus per-attribute :class:`FieldRule` objects, so they can be induced from
examples, annotated with quality scores, repaired, and stored in the
working data like any other artifact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.extraction.dom import DomNode, parse_html
from repro.extraction.patterns import Recogniser, recogniser
from repro.model.provenance import Provenance, Step
from repro.model.records import Record, Table
from repro.model.schema import Attribute, DataType, Schema
from repro.model.values import Value
from repro.sources.base import Document

__all__ = ["FieldRule", "Wrapper"]

_wrapper_counter = itertools.count(1)


def _path_ends_with(path: tuple[str, ...], suffix: tuple[str, ...]) -> bool:
    if len(suffix) > len(path):
        return False
    return path[len(path) - len(suffix):] == suffix


def _relative_path(node: DomNode, ancestor: DomNode) -> tuple[str, ...] | None:
    steps: list[str] = []
    current: DomNode | None = node
    while current is not None and current is not ancestor:
        if not current.is_text:
            steps.append(current.signature)
        current = current.parent
    if current is None:
        return None
    return tuple(reversed(steps))


@dataclass(frozen=True)
class FieldRule:
    """How to pull one attribute out of a record node.

    ``rel_path`` is a signature suffix located under the record node;
    ``index`` picks among multiple matches; ``recogniser_name`` optionally
    post-processes the node text (e.g. pull the price out of
    ``"£399 — in stock"``); ``attr_source`` reads an HTML attribute (e.g.
    ``href``) instead of the text.
    """

    attribute: str
    rel_path: tuple[str, ...]
    index: int = 0
    recogniser_name: str | None = None
    attr_source: str | None = None
    dtype: DataType = DataType.STRING
    confidence: float = 1.0

    def select(self, record_node: DomNode) -> DomNode | None:
        """The DOM node this rule reads within ``record_node``."""
        if not self.rel_path:
            return record_node
        matches = []
        for node in record_node.elements():
            if node is record_node:
                continue
            if node.signature != self.rel_path[-1]:
                continue
            rel = _relative_path(node, record_node)
            if rel is not None and _path_ends_with(rel, self.rel_path):
                matches.append(node)
        if self.index < len(matches):
            return matches[self.index]
        return None

    def extract(self, record_node: DomNode) -> object | None:
        """The normalised raw value for this attribute, or ``None``."""
        node = self.select(record_node)
        if node is None:
            return None
        if self.attr_source is not None:
            raw = node.attrs.get(self.attr_source)
            return raw if raw else None
        text = node.text()
        if not text:
            return None
        if self.recogniser_name is not None:
            return recogniser(self.recogniser_name).find(text)
        return text


@dataclass(frozen=True)
class Wrapper:
    """An induced extraction program for one source's page layout."""

    source: str
    record_path: tuple[str, ...]
    rules: tuple[FieldRule, ...]
    confidence: float = 1.0
    wrapper_id: str = field(
        default_factory=lambda: f"wrapper-{next(_wrapper_counter)}"
    )

    def schema(self) -> Schema:
        """The relational schema this wrapper produces."""
        return Schema(
            tuple(
                Attribute(rule.attribute, rule.dtype) for rule in self.rules
            )
        )

    def record_nodes(self, root: DomNode) -> list[DomNode]:
        """All record nodes in a parsed page."""
        return [
            node
            for node in root.elements()
            if node.signature == self.record_path[-1]
            and _path_ends_with(node.path(), self.record_path)
        ]

    def extract_document(self, document: Document) -> list[Record]:
        """Extract all records from one document."""
        root = parse_html(document.html)
        provenance = Provenance.source(self.source).derive(
            Step.EXTRACTION, self.wrapper_id
        )
        records = []
        for node in self.record_nodes(root):
            cells: dict[str, Value] = {}
            for rule in self.rules:
                raw = rule.extract(node)
                cells[rule.attribute] = Value(
                    raw,
                    rule.dtype,
                    min(self.confidence, rule.confidence),
                    provenance,
                )
            if any(not value.is_missing for value in cells.values()):
                records.append(
                    Record.of(cells, source=self.source)
                )
        return records

    def extract(self, documents: Sequence[Document]) -> Table:
        """Extract a table from a batch of documents."""
        table = Table(self.source, self.schema())
        for document in documents:
            table.extend(self.extract_document(document))
        return table

    def with_rule(self, rule: FieldRule) -> "Wrapper":
        """A copy with the rule for ``rule.attribute`` replaced (or added)."""
        kept = tuple(r for r in self.rules if r.attribute != rule.attribute)
        return replace(self, rules=kept + (rule,))

    def rule_for(self, attribute: str) -> FieldRule | None:
        """The rule extracting ``attribute``, if any."""
        for rule in self.rules:
            if rule.attribute == attribute:
                return rule
        return None

    def with_confidence(self, confidence: float) -> "Wrapper":
        """A copy carrying a revised overall confidence."""
        return replace(self, confidence=confidence)
