"""Field recognisers: regular grammars for common long-tail data fields.

"Recent advances in web data extraction have shown that fully-automated,
large scale collection of long-tail, business-related data, e.g., products,
jobs or locations, is possible" (Section 2.2).  These recognisers spot and
normalise the field types that dominate such data — prices, dates, phone
numbers, postcodes, ratings, geo coordinates — inside noisy extracted text.
They serve three masters: wrapper induction (typing candidate fields),
extraction post-processing, and WADaR-style repair (re-segmenting
mis-extracted values).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.model.schema import DataType

__all__ = ["Recogniser", "RECOGNISERS", "recognise", "best_recogniser", "recogniser"]


@dataclass(frozen=True)
class Recogniser:
    """A named field recogniser.

    ``pattern`` locates the field inside arbitrary text; ``parse`` maps the
    matched text to a normalised Python value.
    """

    name: str
    dtype: DataType
    pattern: re.Pattern[str]
    parse: Callable[[re.Match[str]], object]

    def find(self, text: str) -> object | None:
        """The first normalised occurrence in ``text``, or ``None``."""
        if not text:
            return None
        match = self.pattern.search(text)
        if match is None:
            return None
        return self.parse(match)

    def find_span(self, text: str) -> tuple[int, int] | None:
        """The character span of the first occurrence, or ``None``."""
        if not text:
            return None
        match = self.pattern.search(text)
        return match.span() if match else None

    def matches_fully(self, text: str) -> bool:
        """Whether ``text`` is nothing but this field (modulo whitespace)."""
        if not text:
            return False
        match = self.pattern.fullmatch(text.strip())
        return match is not None


def _parse_price(match: re.Match[str]) -> float:
    return float(match.group("amount").replace(",", ""))


def _parse_rating(match: re.Match[str]) -> float:
    return float(match.group("score"))


def _parse_geo(match: re.Match[str]) -> tuple[float, float]:
    return (float(match.group("lat")), float(match.group("lon")))


def _parse_phone(match: re.Match[str]) -> str:
    return re.sub(r"[\s().-]", "", match.group(0))


_PRICE = Recogniser(
    "price",
    DataType.CURRENCY,
    re.compile(
        r"(?:[$€£¥]|USD|EUR|GBP)\s*(?P<amount>\d{1,3}(?:,\d{3})+(?:\.\d{1,2})?|\d+(?:\.\d{1,2})?)"
        r"|(?P<amount2>\d{1,3}(?:,\d{3})+(?:\.\d{1,2})?|\d+(?:\.\d{1,2})?)\s*(?:[$€£¥]|USD|EUR|GBP)"
    ),
    lambda m: float(
        (m.group("amount") or m.group("amount2")).replace(",", "")
    ),
)

_DATE = Recogniser(
    "date",
    DataType.DATE,
    re.compile(
        r"\b(\d{4}-\d{2}-\d{2}|\d{1,2}/\d{1,2}/\d{4}|"
        r"(?:Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec)[a-z]* \d{1,2},? \d{4})\b"
    ),
    lambda m: m.group(0),
)

_PHONE = Recogniser(
    "phone",
    DataType.STRING,
    re.compile(r"(?:\+?\d{1,3}[\s.-]?)?(?:\(\d{2,4}\)[\s.-]?)?\d{3,4}[\s.-]\d{3,7}(?:[\s.-]\d{3,4})?"),
    _parse_phone,
)

_UK_POSTCODE = Recogniser(
    "uk_postcode",
    DataType.STRING,
    re.compile(r"\b[A-Z]{1,2}\d{1,2}[A-Z]?\s*\d[A-Z]{2}\b"),
    lambda m: re.sub(r"\s+", " ", m.group(0)),
)

_EMAIL = Recogniser(
    "email",
    DataType.STRING,
    re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.]+\b"),
    lambda m: m.group(0).lower(),
)

_URL = Recogniser(
    "url",
    DataType.URL,
    re.compile(r"https?://[^\s\"'<>]+"),
    lambda m: m.group(0),
)

_RATING = Recogniser(
    "rating",
    DataType.FLOAT,
    re.compile(r"(?P<score>[0-5](?:\.\d)?)\s*(?:/\s*5|stars?|★)", re.IGNORECASE),
    _parse_rating,
)

_GEO = Recogniser(
    "geo",
    DataType.GEO,
    re.compile(
        r"(?P<lat>[+-]?\d{1,2}\.\d{3,8})\s*,\s*(?P<lon>[+-]?\d{1,3}\.\d{3,8})"
    ),
    _parse_geo,
)

#: All built-in recognisers, most specific first — order matters when
#: several recognisers could claim the same text.
RECOGNISERS: tuple[Recogniser, ...] = (
    _URL,
    _EMAIL,
    _GEO,
    _PRICE,
    _RATING,
    _DATE,
    _UK_POSTCODE,
    _PHONE,
)

_BY_NAME = {r.name: r for r in RECOGNISERS}


def recogniser(name: str) -> Recogniser:
    """The built-in recogniser called ``name``."""
    if name not in _BY_NAME:
        raise KeyError(f"no recogniser named {name!r}")
    return _BY_NAME[name]


def recognise(text: str) -> dict[str, object]:
    """All fields any recogniser finds in ``text``, keyed by recogniser name."""
    found: dict[str, object] = {}
    for rec in RECOGNISERS:
        value = rec.find(text)
        if value is not None:
            found[rec.name] = value
    return found


def best_recogniser(values: list[str]) -> Recogniser | None:
    """The recogniser that fully matches the majority of ``values``.

    Used during wrapper induction to type a candidate field from sample
    values; returns ``None`` when no recogniser claims more than half.
    """
    non_empty = [v for v in values if v and v.strip()]
    if not non_empty:
        return None
    best: Recogniser | None = None
    best_hits = 0
    for rec in RECOGNISERS:
        hits = sum(1 for v in non_empty if rec.matches_fully(v))
        if hits > best_hits:
            best, best_hits = rec, hits
    if best is not None and best_hits * 2 > len(non_empty):
        return best
    return None
