"""A small DOM built on the standard library's HTML parser.

Web data extraction (Section 2.2) needs a document model: wrappers select
repeating record nodes and field nodes inside them.  :class:`DomNode` keeps
parents, children, tag/class signatures, and absolute paths, which is all
the wrapper-induction algorithm requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Iterator

from repro.errors import ExtractionError

__all__ = ["DomNode", "parse_html"]

_VOID_TAGS = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}


@dataclass
class DomNode:
    """One element (or text run) in the parsed document tree."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["DomNode"] = field(default_factory=list)
    parent: "DomNode | None" = None
    text_content: str = ""

    @property
    def is_text(self) -> bool:
        """Whether this node is a text run rather than an element."""
        return self.tag == "#text"

    @property
    def classes(self) -> tuple[str, ...]:
        """The element's CSS classes."""
        return tuple(self.attrs.get("class", "").split())

    @property
    def signature(self) -> str:
        """``tag.first-class`` — the shape used to align nodes across pages."""
        classes = self.classes
        return f"{self.tag}.{classes[0]}" if classes else self.tag

    def text(self) -> str:
        """All text beneath this node, whitespace-normalised."""
        if self.is_text:
            return " ".join(self.text_content.split())
        parts = [child.text() for child in self.children]
        return " ".join(part for part in parts if part)

    def walk(self) -> Iterator["DomNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def elements(self) -> Iterator["DomNode"]:
        """All element (non-text) nodes beneath and including this one."""
        for node in self.walk():
            if not node.is_text:
                yield node

    def find_all(
        self, tag: str | None = None, class_: str | None = None
    ) -> list["DomNode"]:
        """All descendant elements matching ``tag`` and/or ``class_``."""
        matches = []
        for node in self.elements():
            if node is self:
                continue
            if tag is not None and node.tag != tag:
                continue
            if class_ is not None and class_ not in node.classes:
                continue
            matches.append(node)
        return matches

    def find(self, tag: str | None = None, class_: str | None = None) -> "DomNode | None":
        """The first matching descendant element, or ``None``."""
        found = self.find_all(tag, class_)
        return found[0] if found else None

    def child_index(self) -> int:
        """This node's position among same-signature siblings."""
        if self.parent is None:
            return 0
        same = [
            child
            for child in self.parent.children
            if not child.is_text and child.signature == self.signature
        ]
        for index, node in enumerate(same):
            if node is self:
                return index
        return 0

    def path(self) -> tuple[str, ...]:
        """Absolute signature path from the root to this node."""
        steps: list[str] = []
        node: DomNode | None = self
        while node is not None and node.tag != "#document":
            if not node.is_text:
                steps.append(node.signature)
            node = node.parent
        return tuple(reversed(steps))

    def ancestors(self) -> Iterator["DomNode"]:
        """All ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Distance from the document root."""
        return sum(1 for __ in self.ancestors())


class _TreeBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = DomNode("#document")
        self._stack = [self.root]

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        node = DomNode(tag, {k: (v or "") for k, v in attrs})
        node.parent = self._stack[-1]
        self._stack[-1].children.append(node)
        if tag not in _VOID_TAGS:
            self._stack.append(node)

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        node = DomNode(tag, {k: (v or "") for k, v in attrs})
        node.parent = self._stack[-1]
        self._stack[-1].children.append(node)

    def handle_endtag(self, tag: str) -> None:
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return
        # Unmatched close tag: tolerate, real web pages are messy.

    def handle_data(self, data: str) -> None:
        if not data.strip():
            return
        node = DomNode("#text", text_content=data)
        node.parent = self._stack[-1]
        self._stack[-1].children.append(node)


def parse_html(html: str) -> DomNode:
    """Parse an HTML string into a :class:`DomNode` tree.

    Tolerant of unclosed tags (like browsers are); raises
    :class:`ExtractionError` only for empty input.
    """
    if not html or not html.strip():
        raise ExtractionError("cannot parse empty document")
    builder = _TreeBuilder()
    builder.feed(html)
    builder.close()
    return builder.root
