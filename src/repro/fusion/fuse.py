"""Entity fusion: one clean record per resolved entity.

Takes the clusters produced by entity resolution and reconciles each
attribute with a conflict-resolution strategy, producing the *Wrangled
Data* of Figure 1 — every fused cell carries a ``FUSION`` provenance node
over the contributing claims and a confidence from the vote it won.
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.fusion.strategies import Candidate, resolve
from repro.model.provenance import Provenance, Step
from repro.model.records import Record, Table
from repro.model.schema import DataType, Schema
from repro.model.values import MISSING, Value
from repro.resolution.er import EntityCluster

if TYPE_CHECKING:  # typing only: fusion must not import core at runtime
    from repro.core.executor import Executor

__all__ = ["EntityFuser"]


def _fuse_chunk(payload: tuple["EntityFuser", Sequence[EntityCluster]]):
    """Worker body for one shipped chunk of clusters."""
    fuser, clusters = payload
    return [fuser.fuse_cluster(cluster) for cluster in clusters]


class EntityFuser:
    """Fuses entity clusters into a single table under a target schema.

    ``default_strategy`` applies unless ``strategy_overrides`` names a
    different one for an attribute; ``reliabilities`` are per-source trust
    scores (from the registry's posteriors or a truth-discovery run);
    ``recency_attribute`` names the DATE attribute used to compute claim
    freshness for the ``recent`` strategy.
    """

    def __init__(
        self,
        target_schema: Schema,
        reliabilities: Mapping[str, float] | None = None,
        default_strategy: str = "weighted",
        strategy_overrides: Mapping[str, str] | None = None,
        recency_attribute: str | None = None,
    ) -> None:
        self.target_schema = target_schema
        self.reliabilities = dict(reliabilities or {})
        self.default_strategy = default_strategy
        self.strategy_overrides = dict(strategy_overrides or {})
        self.recency_attribute = recency_attribute

    def _strategy_for(self, attribute: str) -> str:
        return self.strategy_overrides.get(attribute, self.default_strategy)

    def _recencies(self, records: Sequence[Record]) -> list[float]:
        """Per-record freshness in [0, 1] from the recency attribute."""
        if self.recency_attribute is None:
            return [0.5] * len(records)
        dates: list[_dt.date | None] = []
        for record in records:
            value = record.get(self.recency_attribute)
            raw = value.raw
            if isinstance(raw, _dt.datetime):
                dates.append(raw.date())
            elif isinstance(raw, _dt.date):
                dates.append(raw)
            else:
                dates.append(None)
        known = [d for d in dates if d is not None]
        if not known:
            return [0.5] * len(records)
        newest, oldest = max(known), min(known)
        span = max((newest - oldest).days, 1)
        return [
            0.5 if d is None else 1.0 - (newest - d).days / (span * 2)
            for d in dates
        ]

    def fuse_cluster(self, cluster: EntityCluster) -> Record:
        """Fuse one cluster into a single record."""
        recencies = self._recencies(cluster.records)
        cells: dict[str, Value] = {}
        for attribute in self.target_schema:
            candidates = []
            for record, recency in zip(cluster.records, recencies):
                value = record.get(attribute.name)
                if value.is_missing:
                    continue
                candidates.append(
                    Candidate(
                        value,
                        record.source,
                        self.reliabilities.get(record.source, 0.5),
                        recency,
                    )
                )
            if not candidates:
                cells[attribute.name] = MISSING
                continue
            choice = resolve(self._strategy_for(attribute.name), candidates)
            # Provenance covers the supporting claims only: feedback on the
            # fused value then credits/blames exactly the sources that put
            # it there.
            supporting = [
                c for c in candidates if c.source in choice.supporters
            ] or list(candidates)
            provenance = Provenance.combine(
                Step.FUSION,
                f"{self._strategy_for(attribute.name)}:{cluster.cluster_id}",
                tuple(c.value.provenance for c in supporting),
            )
            cells[attribute.name] = Value(
                choice.value.raw,
                attribute.dtype,
                min(1.0, choice.confidence),
                provenance,
            )
        # Evaluation-only lineage: carry the majority truth id, if present.
        truth_ids = [
            record.raw("_truth")
            for record in cluster.records
            if record.raw("_truth") is not None
        ]
        if truth_ids:
            majority_truth = Counter(truth_ids).most_common(1)[0][0]
            cells["_truth"] = Value.of(majority_truth)
        return Record.of(
            cells, source="fused", rid=cluster.cluster_id
        )

    def fuse(
        self,
        clusters: Sequence[EntityCluster],
        name: str = "wrangled",
        executor: "Executor | None" = None,
    ) -> Table:
        """Fuse all clusters into the wrangled table.

        With an ``executor``, clusters are fanned out in contiguous
        chunks — gated on ``fuse_cluster``'s parallel certificate — and
        the fused records are concatenated in chunk order, so the output
        table is identical to the sequential loop.
        """
        table = Table(name, self.target_schema)
        for record in self._fused_records(list(clusters), executor):
            table.append(record)
        return table

    def _fused_records(
        self,
        clusters: list[EntityCluster],
        executor: "Executor | None",
    ) -> list[Record]:
        if executor is not None and len(clusters) > 1:
            if executor.gate_process("fuse", self.fuse_cluster):
                payloads = [
                    (self, chunk) for chunk in executor.chunk(clusters)
                ]
                if executor.ship_or_note("fuse", payloads[0]):
                    executor.note_fan_out("fuse")
                    shards = executor.map(_fuse_chunk, payloads)
                    return [record for shard in shards for record in shard]
        return [self.fuse_cluster(cluster) for cluster in clusters]
