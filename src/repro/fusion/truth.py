"""Truth discovery: estimating source trust and value truth jointly.

Section 2.3 cites Yin, Han & Yu's TruthFinder [36] as the kind of evidence
assimilation wrangling needs; Section 4.2 demands that uncertainty "is
represented explicitly and reasoned with systematically".  Two models:

* :class:`TruthFinder` — the iterative trust/confidence fixpoint of [36],
  with value-implication between numerically close claims;
* :class:`AccuEM` — an EM estimator of per-source accuracy under the
  single-true-value assumption (AccuVote-style, after Dong et al.).

Both consume the same :class:`Claim` triples, so benchmarks can compare
them and naive voting on identical inputs (experiment E9).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import FusionError

__all__ = ["Claim", "TruthResult", "TruthFinder", "AccuEM", "majority_baseline"]


@dataclass(frozen=True)
class Claim:
    """``source`` claims that ``data_item`` has ``value``."""

    source: str
    data_item: str
    value: object


@dataclass
class TruthResult:
    """Chosen value and confidence per data item, plus source trust."""

    values: dict[str, object]
    confidences: dict[str, float]
    source_trust: dict[str, float]
    iterations: int

    def accuracy_against(self, truth: Mapping[str, object]) -> float:
        """Fraction of data items resolved to the true value."""
        if not truth:
            return 1.0
        correct = sum(
            1
            for item, value in truth.items()
            if self.values.get(item) == value
        )
        return correct / len(truth)


def _index(claims: Sequence[Claim]):
    by_item: dict[str, dict[object, set[str]]] = defaultdict(lambda: defaultdict(set))
    by_source: dict[str, list[Claim]] = defaultdict(list)
    for claim in claims:
        by_item[claim.data_item][claim.value].add(claim.source)
        by_source[claim.source].append(claim)
    return by_item, by_source


def majority_baseline(claims: Sequence[Claim]) -> TruthResult:
    """Plain voting: the baseline every truth-discovery model must beat."""
    if not claims:
        raise FusionError("no claims to resolve")
    by_item, by_source = _index(claims)
    values: dict[str, object] = {}
    confidences: dict[str, float] = {}
    for item, value_sources in by_item.items():
        best = max(value_sources, key=lambda v: len(value_sources[v]))
        values[item] = best
        total = sum(len(s) for s in value_sources.values())
        confidences[item] = len(value_sources[best]) / total
    trust = {source: 0.5 for source in by_source}
    return TruthResult(values, confidences, trust, iterations=0)


def _value_similarity(a: object, b: object) -> float:
    try:
        fa, fb = float(a), float(b)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0
    denominator = max(abs(fa), abs(fb))
    if denominator == 0:
        return 1.0
    return max(0.0, 1.0 - abs(fa - fb) / denominator)


class TruthFinder:
    """The iterative trust fixpoint of Yin et al. (TKDE 2008), simplified.

    Source trustworthiness is the mean confidence of its claims; a claim's
    confidence pools the trust of its supporting sources (in log space, as
    in the paper) plus an implication bonus from numerically similar
    claims, squashed back to (0, 1).
    """

    def __init__(
        self,
        dampening: float = 0.3,
        implication_weight: float = 0.5,
        max_iterations: int = 20,
        tolerance: float = 1e-4,
    ) -> None:
        self.dampening = dampening
        self.implication_weight = implication_weight
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def run(self, claims: Sequence[Claim]) -> TruthResult:
        """Resolve all data items in ``claims``."""
        if not claims:
            raise FusionError("no claims to resolve")
        by_item, by_source = _index(claims)
        trust = {source: 0.8 for source in by_source}

        claim_confidence: dict[tuple[str, object], float] = {}
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Claim confidence from source trust.
            for item, value_sources in by_item.items():
                raw_scores: dict[object, float] = {}
                for value, sources in value_sources.items():
                    score = -sum(
                        math.log(max(1e-9, 1.0 - self.dampening * trust[s]))
                        for s in sources
                    )
                    raw_scores[value] = score
                # Implication between similar values.
                adjusted: dict[object, float] = {}
                for value, score in raw_scores.items():
                    bonus = sum(
                        other_score * _value_similarity(value, other)
                        for other, other_score in raw_scores.items()
                        if other != value
                    )
                    adjusted[value] = score + self.implication_weight * bonus
                for value, score in adjusted.items():
                    claim_confidence[(item, value)] = 1.0 - math.exp(-score)

            # Source trust from claim confidence.
            new_trust = {}
            for source, source_claims in by_source.items():
                confs = [
                    claim_confidence[(claim.data_item, claim.value)]
                    for claim in source_claims
                ]
                new_trust[source] = sum(confs) / len(confs)
            delta = max(
                abs(new_trust[s] - trust[s]) for s in trust
            )
            trust = new_trust
            if delta < self.tolerance:
                break

        values: dict[str, object] = {}
        confidences: dict[str, float] = {}
        for item, value_sources in by_item.items():
            best = max(
                value_sources, key=lambda v: claim_confidence[(item, v)]
            )
            values[item] = best
            confidences[item] = claim_confidence[(item, best)]
        return TruthResult(values, confidences, trust, iterations)


class AccuEM:
    """EM estimation of source accuracy with a single true value per item.

    E-step: P(value is true) from current source accuracies (a source votes
    its accuracy for its claim and spreads the remaining mass over the
    other observed values).  M-step: source accuracy is the mean
    probability of its claims.  Converges in a handful of iterations on
    wrangling-sized inputs.
    """

    def __init__(
        self,
        max_iterations: int = 30,
        tolerance: float = 1e-5,
        prior_strength: float = 2.0,
        accuracy_cap: float = 0.95,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        # Laplace-style smoothing toward 0.5 and a hard cap keep the EM from
        # becoming overconfident on few items, where a couple of
        # coincidentally shared errors can otherwise flip the ranking.
        self.prior_strength = prior_strength
        self.accuracy_cap = accuracy_cap

    def run(self, claims: Sequence[Claim]) -> TruthResult:
        """Resolve all data items in ``claims``."""
        if not claims:
            raise FusionError("no claims to resolve")
        by_item, by_source = _index(claims)
        accuracy = {source: 0.8 for source in by_source}

        item_probs: dict[str, dict[object, float]] = {}
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # E-step: value probabilities per item.
            for item, value_sources in by_item.items():
                n_values = len(value_sources)
                scores: dict[object, float] = {}
                for value in value_sources:
                    log_score = 0.0
                    for other_value, sources in value_sources.items():
                        for source in sources:
                            acc = min(max(accuracy[source], 1e-6), 1 - 1e-6)
                            if other_value == value:
                                log_score += math.log(acc)
                            else:
                                spread = (1.0 - acc) / max(1, n_values - 1)
                                log_score += math.log(max(spread, 1e-9))
                    scores[value] = log_score
                peak = max(scores.values())
                exp_scores = {
                    value: math.exp(score - peak) for value, score in scores.items()
                }
                total = sum(exp_scores.values())
                item_probs[item] = {
                    value: score / total for value, score in exp_scores.items()
                }

            # M-step: smoothed, capped source accuracies.
            new_accuracy = {}
            for source, source_claims in by_source.items():
                probs = [
                    item_probs[claim.data_item][claim.value]
                    for claim in source_claims
                ]
                smoothed = (sum(probs) + 0.5 * self.prior_strength) / (
                    len(probs) + self.prior_strength
                )
                new_accuracy[source] = min(smoothed, self.accuracy_cap)
            delta = max(abs(new_accuracy[s] - accuracy[s]) for s in accuracy)
            accuracy = new_accuracy
            if delta < self.tolerance:
                break

        values: dict[str, object] = {}
        confidences: dict[str, float] = {}
        for item, probs in item_probs.items():
            best = max(probs, key=lambda v: probs[v])
            values[item] = best
            confidences[item] = probs[best]
        return TruthResult(values, confidences, accuracy, iterations)
