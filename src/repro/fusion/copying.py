"""Copy detection between sources (after Dong, Berti-Équille & Srivastava).

Experiment E9 demonstrates the failure mode the paper's Section 4.2
gestures at: once several sources *copy* the same stale feed, their
agreement looks like independent confirmation and both voting and naive
accuracy-EM lock onto the copied error.  The classical fix is to detect
dependence first: sources that share **false** values far more often than
independent errors could explain are copier suspects, and their votes are
discounted.

The detector here is the standard intuition made executable: for each
source pair, agreement on *minority* values (values not shared by most
sources) is evidence of copying, because independent sources err
independently.  Each source receives an independence weight in ``(0, 1]``
that :class:`~repro.fusion.truth.AccuEM` and voting can apply.
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fusion.truth import Claim, TruthResult

__all__ = ["CopyReport", "detect_copying", "copy_aware_em"]


@dataclass
class CopyReport:
    """Pairwise dependence scores and per-source independence weights."""

    dependence: dict[tuple[str, str], float]
    independence_weight: dict[str, float]

    def suspects(self, threshold: float = 0.5) -> list[tuple[str, str]]:
        """Source pairs whose dependence exceeds ``threshold``."""
        return sorted(
            pair
            for pair, score in self.dependence.items()
            if score > threshold
        )


def detect_copying(
    claims: Sequence[Claim],
    trusted: Mapping[str, object] | None = None,
    default_accuracy: float = 0.7,
) -> CopyReport:
    """Estimate which sources copy one another.

    Two coherent blocs of sources are *unidentifiable* from claims alone —
    a lying majority looks exactly like an honest one (this is why
    experiment E9's plain EM collapses).  The wrangler therefore anchors
    on whatever trusted items exist: ``trusted`` maps a few data items to
    verified values (from master data or consolidated user feedback —
    Section 2.3's "use all the available information").

    A pair's dependence is its mutual agreement rate scaled by both
    sources' *untrustworthiness* on the anchored items: high agreement
    between two demonstrably inaccurate sources can only be copying,
    while agreement between accurate sources is just both being right.
    Each source's independence weight is ``1 / (1 + Σ dependence)``, so a
    bloc of k mutual copiers votes with roughly the strength of one.

    Without ``trusted``, all accuracies fall back to ``default_accuracy``
    and the detector degrades to a mild agreement-based discount —
    honest, but unable to break a coherent majority.
    """
    by_item: dict[str, dict[str, object]] = defaultdict(dict)
    for claim in claims:
        by_item[claim.data_item][claim.source] = claim.value

    sources = sorted({claim.source for claim in claims})

    anchored_accuracy: dict[str, float] = {}
    for source in sources:
        if not trusted:
            anchored_accuracy[source] = default_accuracy
            continue
        checked = 0
        correct = 0
        for item, value in trusted.items():
            claimed = by_item.get(item, {}).get(source)
            if claimed is None:
                continue
            checked += 1
            if claimed == value:
                correct += 1
        anchored_accuracy[source] = (
            (correct + 1) / (checked + 2) if checked else default_accuracy
        )

    dependence: dict[tuple[str, str], float] = {}
    for left, right in itertools.combinations(sources, 2):
        co_covered = 0
        agreed = 0
        for votes in by_item.values():
            if left not in votes or right not in votes:
                continue
            co_covered += 1
            if votes[left] == votes[right]:
                agreed += 1
        if co_covered == 0:
            dependence[(left, right)] = 0.0
            continue
        agreement = agreed / co_covered
        untrustworthiness = (1.0 - anchored_accuracy[left]) * (
            1.0 - anchored_accuracy[right]
        )
        # Independent sources agree through shared *truth*; agreement in
        # excess of what their accuracies predict is dependence.
        expected = anchored_accuracy[left] * anchored_accuracy[right]
        excess = max(0.0, agreement - expected)
        dependence[(left, right)] = min(1.0, 4.0 * excess * untrustworthiness ** 0.5)

    independence_weight: dict[str, float] = {}
    for source in sources:
        total_dependence = sum(
            score for pair, score in dependence.items() if source in pair
        )
        independence_weight[source] = 1.0 / (1.0 + total_dependence)
    return CopyReport(dependence, independence_weight)


def copy_aware_em(
    claims: Sequence[Claim],
    max_iterations: int = 30,
    weights: Mapping[str, float] | None = None,
) -> TruthResult:
    """AccuEM with copier votes discounted by their independence weight.

    The weight scales a source's log-likelihood contribution in the
    E-step: a bloc of k mutual copiers contributes like ~1 source instead
    of k, so the coherent-stale-feed trap of experiment E9 is defused.
    """
    from repro.errors import FusionError

    if not claims:
        raise FusionError("no claims to resolve")
    if weights is None:
        weights = detect_copying(claims).independence_weight

    by_item: dict[str, dict[object, set[str]]] = defaultdict(
        lambda: defaultdict(set)
    )
    by_source: dict[str, list[Claim]] = defaultdict(list)
    for claim in claims:
        by_item[claim.data_item][claim.value].add(claim.source)
        by_source[claim.source].append(claim)

    accuracy = {source: 0.8 for source in by_source}
    item_probs: dict[str, dict[object, float]] = {}
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        for item, value_sources in by_item.items():
            n_values = len(value_sources)
            scores: dict[object, float] = {}
            for value in value_sources:
                log_score = 0.0
                for other_value, sources in value_sources.items():
                    for source in sources:
                        weight = weights.get(source, 1.0)
                        acc = min(max(accuracy[source], 1e-6), 1 - 1e-6)
                        if other_value == value:
                            log_score += weight * math.log(acc)
                        else:
                            spread = (1.0 - acc) / max(1, n_values - 1)
                            log_score += weight * math.log(max(spread, 1e-9))
                scores[value] = log_score
            peak = max(scores.values())
            exp_scores = {
                value: math.exp(score - peak)
                for value, score in scores.items()
            }
            total = sum(exp_scores.values())
            item_probs[item] = {
                value: score / total for value, score in exp_scores.items()
            }
        new_accuracy = {}
        for source, source_claims in by_source.items():
            probs = [
                item_probs[claim.data_item][claim.value]
                for claim in source_claims
            ]
            smoothed = (sum(probs) + 1.0) / (len(probs) + 2.0)
            new_accuracy[source] = min(smoothed, 0.95)
        delta = max(
            abs(new_accuracy[source] - accuracy[source])
            for source in accuracy
        )
        accuracy = new_accuracy
        if delta < 1e-5:
            break

    values: dict[str, object] = {}
    confidences: dict[str, float] = {}
    for item, probs in item_probs.items():
        best = max(probs, key=lambda v: probs[v])
        values[item] = best
        confidences[item] = probs[best]
    return TruthResult(values, confidences, accuracy, iterations)
