"""Data fusion and truth discovery: conflict resolution, TruthFinder,
source-accuracy EM, and entity fusion."""

from repro.fusion.copying import CopyReport, copy_aware_em, detect_copying
from repro.fusion.fuse import EntityFuser
from repro.fusion.strategies import (
    STRATEGIES,
    Candidate,
    FusedChoice,
    resolve,
)
from repro.fusion.truth import (
    AccuEM,
    Claim,
    TruthFinder,
    TruthResult,
    majority_baseline,
)

__all__ = [
    "AccuEM",
    "Candidate",
    "Claim",
    "CopyReport",
    "EntityFuser",
    "copy_aware_em",
    "detect_copying",
    "FusedChoice",
    "STRATEGIES",
    "TruthFinder",
    "TruthResult",
    "majority_baseline",
    "resolve",
]
