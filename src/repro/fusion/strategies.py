"""Conflict-resolution strategies for fusing one attribute of one entity.

The paper's Veracity: sources disagree, and "a guide to the fusion of
property values from records that have been obtained from different
sources" must pick (or construct) the value to publish, with an explicit
confidence.  Strategies receive the candidate values with their cell
confidences and per-source reliabilities, so context (e.g. reliabilities
learned from feedback) flows into every decision.
"""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import FusionError
from repro.model.schema import DataType
from repro.model.values import Value

__all__ = [
    "Candidate",
    "FusedChoice",
    "STRATEGIES",
    "STRATEGY_VALUE_DOMAINS",
    "resolve",
    "majority_vote",
    "weighted_vote",
    "most_recent",
    "highest_confidence",
    "numeric_median",
]


@dataclass(frozen=True)
class Candidate:
    """One source's claim for an attribute value."""

    value: Value
    source: str
    reliability: float = 0.5
    recency: float = 0.5  # 1.0 = freshest observation in the cluster


@dataclass(frozen=True)
class FusedChoice:
    """The chosen value and the support behind it."""

    value: Value
    confidence: float
    supporters: tuple[str, ...]


def _group_by_raw(candidates: Sequence[Candidate]) -> dict[object, list[Candidate]]:
    groups: dict[object, list[Candidate]] = defaultdict(list)
    for candidate in candidates:
        groups[candidate.value.raw].append(candidate)
    return dict(groups)


def majority_vote(candidates: Sequence[Candidate]) -> FusedChoice:
    """The most frequently claimed value; ties break on total reliability."""
    groups = _group_by_raw(candidates)
    best_raw = max(
        groups,
        key=lambda raw: (
            len(groups[raw]),
            sum(c.reliability for c in groups[raw]),
        ),
    )
    supporters = groups[best_raw]
    return FusedChoice(
        supporters[0].value,
        len(supporters) / len(candidates),
        tuple(sorted(c.source for c in supporters)),
    )


def weighted_vote(candidates: Sequence[Candidate]) -> FusedChoice:
    """Votes weighted by source reliability x cell confidence."""
    groups = _group_by_raw(candidates)
    weights = {
        raw: sum(c.reliability * c.value.confidence for c in group)
        for raw, group in groups.items()
    }
    total = sum(weights.values())
    best_raw = max(weights, key=lambda raw: weights[raw])
    supporters = groups[best_raw]
    confidence = weights[best_raw] / total if total > 0 else 0.0
    return FusedChoice(
        supporters[0].value,
        confidence,
        tuple(sorted(c.source for c in supporters)),
    )


def most_recent(candidates: Sequence[Candidate]) -> FusedChoice:
    """The freshest claim wins — the right call for transient data like
    prices (Section 3.1's critique of KBC's redundancy assumption)."""
    best = max(candidates, key=lambda c: (c.recency, c.reliability))
    agreeing = [c for c in candidates if c.value.raw == best.value.raw]
    return FusedChoice(
        best.value,
        0.5 + 0.5 * best.recency * best.reliability,
        tuple(sorted(c.source for c in agreeing)),
    )


def highest_confidence(candidates: Sequence[Candidate]) -> FusedChoice:
    """The single claim with the best reliability x confidence product."""
    best = max(
        candidates, key=lambda c: c.reliability * c.value.confidence
    )
    agreeing = [c for c in candidates if c.value.raw == best.value.raw]
    return FusedChoice(
        best.value,
        best.reliability * best.value.confidence,
        tuple(sorted(c.source for c in agreeing)),
    )


def numeric_median(candidates: Sequence[Candidate]) -> FusedChoice:
    """The reliability-weighted median of numeric claims — robust to the
    magnitude errors cheap aggregators make."""
    numeric: list[tuple[float, Candidate]] = []
    for candidate in candidates:
        try:
            numeric.append((float(candidate.value.raw), candidate))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
    if not numeric:
        return majority_vote(candidates)
    numeric.sort(key=lambda pair: pair[0])
    total_weight = sum(c.reliability for __, c in numeric)
    cumulative = 0.0
    chosen = numeric[-1][1]
    for number, candidate in numeric:
        cumulative += candidate.reliability
        if cumulative >= total_weight / 2:
            chosen = candidate
            break
    agreeing = [c for c in candidates if c.value.raw == chosen.value.raw]
    return FusedChoice(
        chosen.value,
        len(agreeing) / len(candidates),
        tuple(sorted(c.source for c in agreeing)),
    )


STRATEGIES: Mapping[str, Callable[[Sequence[Candidate]], FusedChoice]] = {
    "majority": majority_vote,
    "weighted": weighted_vote,
    "recent": most_recent,
    "confident": highest_confidence,
    "median": numeric_median,
}

#: The DataTypes whose values a strategy can genuinely operate on
#: (``None`` = any).  ``median`` orders candidates numerically, so it
#: needs numeric-capable values; the vote/recency strategies compare raw
#: values for equality and work on anything.  The static type checker
#: reports strategies whose domain no target attribute can satisfy.
STRATEGY_VALUE_DOMAINS: Mapping[str, frozenset[DataType] | None] = {
    "majority": None,
    "weighted": None,
    "recent": None,
    "confident": None,
    "median": frozenset(
        {DataType.INTEGER, DataType.FLOAT, DataType.CURRENCY}
    ),
}


def resolve(strategy: str, candidates: Sequence[Candidate]) -> FusedChoice:
    """Apply a named strategy to non-empty candidates."""
    if strategy not in STRATEGIES:
        raise FusionError(
            f"unknown fusion strategy {strategy!r}; known: {sorted(STRATEGIES)}"
        )
    cleaned = [c for c in candidates if not c.value.is_missing]
    if not cleaned:
        raise FusionError("cannot fuse an empty candidate set")
    return STRATEGIES[strategy](cleaned)
