"""Lightweight domain ontologies for the data context.

Example 4 in the paper: "there are ontologies that describe products, such
as The Product Types Ontology ... a product types ontology could be used to
inform the selection of sources based on their relevance, as an input to
the matching of sources that supplements syntactic matching, and as a guide
to the fusion of property values".

An :class:`Ontology` holds a subclass DAG of concepts, per-concept synonym
sets, and typed properties.  It answers the three questions the wrangler
asks: *do these two terms name the same concept/property?*, *how related
are two concepts?*, and *which concept does this value most plausibly
instantiate?*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from repro.errors import ContextError
from repro.model.schema import DataType

__all__ = ["Concept", "Property", "Ontology"]


def _normalise(term: str) -> str:
    return " ".join(term.lower().replace("_", " ").replace("-", " ").split())


@dataclass(frozen=True)
class Concept:
    """A named concept with its synonym set."""

    name: str
    synonyms: frozenset[str] = frozenset()
    description: str = ""

    def labels(self) -> frozenset[str]:
        """All normalised surface forms of the concept."""
        return frozenset({_normalise(self.name)} | {
            _normalise(s) for s in self.synonyms
        })


@dataclass(frozen=True)
class Property:
    """A typed property, attached to a domain concept."""

    name: str
    domain: str
    dtype: DataType = DataType.STRING
    synonyms: frozenset[str] = frozenset()

    def labels(self) -> frozenset[str]:
        """All normalised surface forms of the property."""
        return frozenset({_normalise(self.name)} | {
            _normalise(s) for s in self.synonyms
        })


class Ontology:
    """A subclass DAG of concepts with synonyms and typed properties."""

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._graph = nx.DiGraph()  # edge (child -> parent) = subclass-of
        self._concepts: dict[str, Concept] = {}
        self._properties: dict[str, Property] = {}
        self._label_index: dict[str, str] = {}
        self._property_label_index: dict[str, str] = {}

    # -- construction --------------------------------------------------

    def add_concept(
        self,
        name: str,
        parent: str | None = None,
        synonyms: Iterable[str] = (),
        description: str = "",
    ) -> Concept:
        """Add a concept, optionally as a subclass of ``parent``."""
        if name in self._concepts:
            raise ContextError(f"concept {name!r} already defined")
        concept = Concept(name, frozenset(synonyms), description)
        self._concepts[name] = concept
        self._graph.add_node(name)
        if parent is not None:
            if parent not in self._concepts:
                raise ContextError(f"unknown parent concept {parent!r}")
            self._graph.add_edge(name, parent)
            if not nx.is_directed_acyclic_graph(self._graph):
                self._graph.remove_edge(name, parent)
                raise ContextError(
                    f"subclass edge {name!r} -> {parent!r} creates a cycle"
                )
        for label in concept.labels():
            self._label_index.setdefault(label, name)
        return concept

    def add_property(
        self,
        name: str,
        domain: str,
        dtype: DataType = DataType.STRING,
        synonyms: Iterable[str] = (),
    ) -> Property:
        """Add a typed property to concept ``domain``."""
        if domain not in self._concepts:
            raise ContextError(f"unknown domain concept {domain!r}")
        if name in self._properties:
            raise ContextError(f"property {name!r} already defined")
        prop = Property(name, domain, dtype, frozenset(synonyms))
        self._properties[name] = prop
        for label in prop.labels():
            self._property_label_index.setdefault(label, name)
        return prop

    # -- lookups ---------------------------------------------------------

    @property
    def concepts(self) -> Mapping[str, Concept]:
        """All concepts by name."""
        return dict(self._concepts)

    @property
    def properties(self) -> Mapping[str, Property]:
        """All properties by name."""
        return dict(self._properties)

    def concept_of(self, term: str) -> str | None:
        """The concept whose label matches ``term``, if any."""
        return self._label_index.get(_normalise(term))

    def property_of(self, term: str) -> str | None:
        """The property whose label matches ``term``, if any."""
        return self._property_label_index.get(_normalise(term))

    def ancestors(self, concept: str) -> set[str]:
        """All superclasses of ``concept`` (transitively)."""
        self._require(concept)
        return set(nx.descendants(self._graph, concept))

    def descendants(self, concept: str) -> set[str]:
        """All subclasses of ``concept`` (transitively)."""
        self._require(concept)
        return set(nx.ancestors(self._graph, concept))

    def is_a(self, concept: str, ancestor: str) -> bool:
        """Whether ``concept`` is (a subclass of) ``ancestor``."""
        self._require(concept)
        self._require(ancestor)
        return concept == ancestor or ancestor in self.ancestors(concept)

    def _require(self, concept: str) -> None:
        if concept not in self._concepts:
            raise ContextError(f"unknown concept {concept!r}")

    # -- semantic similarity ----------------------------------------------

    def term_similarity(self, term_a: str, term_b: str) -> float:
        """Ontology-backed similarity of two attribute/term names.

        1.0 when both resolve to the same concept or property; otherwise a
        Wu–Palmer-style score over the subclass DAG; 0.0 when either term is
        unknown to the ontology (the ontology then contributes no evidence).
        """
        prop_a, prop_b = self.property_of(term_a), self.property_of(term_b)
        if prop_a is not None and prop_a == prop_b:
            return 1.0
        concept_a, concept_b = self.concept_of(term_a), self.concept_of(term_b)
        if prop_a is not None and prop_b is not None:
            concept_a = self._properties[prop_a].domain
            concept_b = self._properties[prop_b].domain
            if prop_a != prop_b:
                # Distinct properties are distinct even on related domains.
                return 0.25 * self.concept_similarity(concept_a, concept_b)
        if concept_a is None or concept_b is None:
            return 0.0
        return self.concept_similarity(concept_a, concept_b)

    def concept_similarity(self, concept_a: str, concept_b: str) -> float:
        """Wu–Palmer similarity over the subclass DAG."""
        self._require(concept_a)
        self._require(concept_b)
        if concept_a == concept_b:
            return 1.0
        up_a = {concept_a} | self.ancestors(concept_a)
        up_b = {concept_b} | self.ancestors(concept_b)
        common = up_a & up_b
        if not common:
            return 0.0
        depth = self._depths()
        lca_depth = max(depth[c] for c in common)
        return (
            2.0 * lca_depth / (depth[concept_a] + depth[concept_b])
            if (depth[concept_a] + depth[concept_b]) > 0
            else 0.0
        )

    def _depths(self) -> dict[str, int]:
        depths: dict[str, int] = {}
        for node in nx.topological_sort(self._graph.reverse()):
            parents = list(self._graph.successors(node))
            depths[node] = 1 + max(
                (depths[p] for p in parents), default=0
            )
        return depths

    def classify_value(self, value: object) -> str | None:
        """The concept a raw value most plausibly instantiates, by label."""
        if value is None:
            return None
        return self.concept_of(str(value))

    def expected_dtype(self, term: str) -> DataType | None:
        """The declared dtype of the property matching ``term``, if any."""
        prop = self.property_of(term)
        if prop is None:
            return None
        return self._properties[prop].dtype
