"""Declarative user contexts (paper Sections 2.1 and 4.2).

"The user context must provide a declarative specification of the user's
requirements and priorities, both functional (data) and non-functional
(such as quality and cost trade-offs), so that the components ... can be
automatically and flexibly composed."

A :class:`UserContext` therefore carries: the target schema (functional
requirement), criteria weights (elicited directly or through AHP),
hard floors per quality dimension, a cost budget, and an optional scope
restricting relevance (e.g. "only the products in our catalog",
Example 4).  Components never read user preferences from anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.context.ahp import AHPComparison
from repro.errors import ContextError
from repro.model.annotations import Dimension
from repro.model.records import Record
from repro.model.schema import Schema

__all__ = ["UserContext"]


def _normalised(weights: Mapping[Dimension, float]) -> dict[Dimension, float]:
    total = sum(weights.values())
    if total <= 0:
        raise ContextError("criteria weights must sum to a positive value")
    return {dim: w / total for dim, w in weights.items()}


@dataclass(frozen=True)
class UserContext:
    """The declarative requirements of one application user.

    ``weights`` sum to 1 and drive every multi-criteria decision;
    ``floors`` are hard requirements (a candidate below a floor is
    discarded outright); ``budget`` caps the total access + feedback cost
    the pipeline may spend; ``scope`` (attribute, predicate) restricts
    which records are relevant at all.
    """

    name: str
    target_schema: Schema
    weights: Mapping[Dimension, float] = field(
        default_factory=lambda: _normalised(
            {
                Dimension.ACCURACY: 1.0,
                Dimension.COMPLETENESS: 1.0,
                Dimension.TIMELINESS: 1.0,
                Dimension.COST: 1.0,
            }
        )
    )
    floors: Mapping[Dimension, float] = field(default_factory=dict)
    budget: float = float("inf")
    scope_attribute: str | None = None
    scope_predicate: Callable[[object], bool] | None = None
    decision_method: str = "weighted"

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", _normalised(dict(self.weights)))
        for dim, floor in self.floors.items():
            if not 0.0 <= floor <= 1.0:
                raise ContextError(
                    f"floor for {dim.value} must be in [0,1], got {floor}"
                )
        if self.budget < 0:
            raise ContextError("budget must be non-negative")
        if self.decision_method not in ("weighted", "topsis"):
            raise ContextError(
                f"unknown decision method {self.decision_method!r}"
            )

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_ahp(
        cls,
        name: str,
        target_schema: Schema,
        comparison: AHPComparison,
        require_consistency: bool = True,
        **kwargs: object,
    ) -> "UserContext":
        """Build a context whose weights come from AHP pairwise judgments."""
        if require_consistency and not comparison.is_consistent():
            raise ContextError(
                "AHP judgments are inconsistent "
                f"(CR={comparison.consistency():.3f} > 0.1); "
                "revise the pairwise comparisons"
            )
        weights = {
            Dimension(criterion): weight
            for criterion, weight in comparison.weights().items()
        }
        return cls(name, target_schema, weights=weights, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def precision_first(
        cls, name: str, target_schema: Schema, **kwargs: object
    ) -> "UserContext":
        """Example 2's "routine price comparison" profile: accuracy and
        timeliness over completeness."""
        weights = {
            Dimension.ACCURACY: 0.4,
            Dimension.TIMELINESS: 0.3,
            Dimension.CONSISTENCY: 0.1,
            Dimension.COMPLETENESS: 0.1,
            Dimension.COST: 0.1,
        }
        floors = {Dimension.ACCURACY: 0.6}
        return cls(
            name, target_schema, weights=weights, floors=floors, **kwargs
        )  # type: ignore[arg-type]

    @classmethod
    def completeness_first(
        cls, name: str, target_schema: Schema, **kwargs: object
    ) -> "UserContext":
        """Example 2's "issue investigation" profile: the most complete
        picture, accepting more incorrect or stale data."""
        weights = {
            Dimension.COMPLETENESS: 0.45,
            Dimension.RELEVANCE: 0.15,
            Dimension.ACCURACY: 0.15,
            Dimension.TIMELINESS: 0.1,
            Dimension.COST: 0.15,
        }
        return cls(name, target_schema, weights=weights, **kwargs)  # type: ignore[arg-type]

    # -- behaviour ---------------------------------------------------------

    def weight(self, dimension: Dimension) -> float:
        """The (normalised) weight of one criterion; 0 when not mentioned."""
        return self.weights.get(dimension, 0.0)

    def meets_floors(self, scores: Mapping[Dimension, float]) -> bool:
        """Whether candidate ``scores`` satisfy every hard floor."""
        return all(
            scores.get(dim, 0.0) >= floor for dim, floor in self.floors.items()
        )

    def in_scope(self, record: Record) -> bool:
        """Whether a record is relevant to this user at all."""
        if self.scope_attribute is None or self.scope_predicate is None:
            return True
        return bool(self.scope_predicate(record.raw(self.scope_attribute)))

    def with_budget(self, budget: float) -> "UserContext":
        """A copy of this context under a different budget."""
        return replace(self, budget=budget)

    def describe(self) -> str:
        """A one-paragraph, human-readable statement of the requirements."""
        parts = [f"user context {self.name!r}:"]
        ordered = sorted(self.weights.items(), key=lambda kv: -kv[1])
        parts.append(
            "priorities "
            + ", ".join(f"{dim.value}={w:.2f}" for dim, w in ordered)
        )
        if self.floors:
            parts.append(
                "floors "
                + ", ".join(
                    f"{dim.value}>={floor:.2f}"
                    for dim, floor in sorted(
                        self.floors.items(), key=lambda kv: kv[0].value
                    )
                )
            )
        if self.budget != float("inf"):
            parts.append(f"budget {self.budget:.1f}")
        if self.scope_attribute:
            parts.append(f"scoped by {self.scope_attribute!r}")
        return "; ".join(parts)
