"""Multi-criteria decision making over wrangling alternatives.

Section 2.1 argues that "adaptivity and multi-criteria optimisation are of
paramount importance for cost-effective wrangling processes".  This module
scores alternatives (candidate sources, mappings, pipeline configurations)
described by per-criterion scores against the weights of a user context,
using weighted sums, TOPSIS, and Pareto filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ContextError
from repro.model.annotations import Dimension

__all__ = ["Alternative", "weighted_score", "rank", "topsis", "pareto_front"]


@dataclass(frozen=True)
class Alternative:
    """One candidate decision with its per-criterion scores.

    All scores are benefit-oriented in ``[0, 1]`` — cost must be inverted
    by the caller before it gets here (the quality layer already stores
    "cheapness" rather than cost).
    """

    key: str
    scores: Mapping[Dimension, float]
    payload: object = None

    def score_for(self, dimension: Dimension, default: float = 0.5) -> float:
        """The alternative's score on one criterion."""
        return self.scores.get(dimension, default)


def weighted_score(
    alternative: Alternative, weights: Mapping[Dimension, float]
) -> float:
    """Weighted-sum utility of one alternative under the given weights."""
    if not weights:
        raise ContextError("criteria weights must be non-empty")
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ContextError("criteria weights must sum to a positive value")
    return (
        sum(
            weight * alternative.score_for(dimension)
            for dimension, weight in weights.items()
        )
        / total_weight
    )


def rank(
    alternatives: Sequence[Alternative], weights: Mapping[Dimension, float]
) -> list[tuple[Alternative, float]]:
    """Alternatives sorted by weighted score, best first (stable on ties)."""
    scored = [(alt, weighted_score(alt, weights)) for alt in alternatives]
    return sorted(scored, key=lambda pair: -pair[1])


def topsis(
    alternatives: Sequence[Alternative], weights: Mapping[Dimension, float]
) -> list[tuple[Alternative, float]]:
    """Rank by TOPSIS: closeness to the ideal / distance from the anti-ideal.

    More discriminating than a weighted sum when criteria conflict, because
    it penalises alternatives that are extremely bad on any one criterion.
    """
    if not alternatives:
        return []
    dims = sorted(weights, key=lambda d: d.value)
    if not dims:
        raise ContextError("criteria weights must be non-empty")
    weight_vec = np.array([weights[d] for d in dims], dtype=float)
    if weight_vec.sum() <= 0:
        raise ContextError("criteria weights must sum to a positive value")
    weight_vec = weight_vec / weight_vec.sum()
    matrix = np.array(
        [[alt.score_for(d) for d in dims] for alt in alternatives], dtype=float
    )
    norms = np.linalg.norm(matrix, axis=0)
    norms[norms == 0.0] = 1.0
    weighted = (matrix / norms) * weight_vec
    ideal = weighted.max(axis=0)
    anti_ideal = weighted.min(axis=0)
    dist_ideal = np.linalg.norm(weighted - ideal, axis=1)
    dist_anti = np.linalg.norm(weighted - anti_ideal, axis=1)
    denom = dist_ideal + dist_anti
    closeness = np.where(denom == 0.0, 1.0, dist_anti / np.where(denom == 0, 1, denom))
    scored = list(zip(alternatives, closeness.tolist()))
    return sorted(scored, key=lambda pair: -pair[1])


def pareto_front(alternatives: Sequence[Alternative]) -> list[Alternative]:
    """The non-dominated subset of ``alternatives``.

    Alternative A dominates B when A is at least as good on every criterion
    mentioned by either and strictly better on at least one.  The front is
    what the wrangler presents when the user context declines to commit to
    weights.
    """
    dims = sorted(
        {d for alt in alternatives for d in alt.scores}, key=lambda d: d.value
    )

    def dominates(a: Alternative, b: Alternative) -> bool:
        at_least_as_good = all(
            a.score_for(d) >= b.score_for(d) for d in dims
        )
        strictly_better = any(a.score_for(d) > b.score_for(d) for d in dims)
        return at_least_as_good and strictly_better

    front: list[Alternative] = []
    for candidate in alternatives:
        if not any(
            dominates(other, candidate)
            for other in alternatives
            if other is not candidate
        ):
            front.append(candidate)
    return front
