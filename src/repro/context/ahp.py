"""The Analytic Hierarchy Process (Saaty) for eliciting criteria weights.

Section 2.1: "in the widely used Analytic Hierarchy Process, users compare
criteria (such as timeliness or completeness) in terms of their relative
importance, which can be taken into account when making decisions (such as
which mappings to use in data integration)".

Users supply pairwise judgments on Saaty's 1–9 scale; the principal
eigenvector of the reciprocal comparison matrix yields the weight vector,
and the consistency ratio flags incoherent judgment sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ContextError

__all__ = ["AHPComparison", "ahp_weights", "consistency_ratio"]

# Saaty's random consistency index, by matrix order (0- and 1-indexed
# entries are zero by convention).
_RANDOM_INDEX = (0.0, 0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49)

#: Judgments above this consistency ratio are conventionally rejected.
CONSISTENCY_THRESHOLD = 0.1


@dataclass
class AHPComparison:
    """A pairwise-comparison matrix builder over named criteria.

    ``prefer(a, b, strength)`` records that criterion ``a`` is ``strength``
    times as important as ``b`` (Saaty scale: 1 equal ... 9 extreme).  The
    reciprocal entry is maintained automatically.
    """

    criteria: Sequence[str]
    _matrix: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if len(self.criteria) < 2:
            raise ContextError("AHP needs at least two criteria")
        if len(set(self.criteria)) != len(self.criteria):
            raise ContextError("AHP criteria must be distinct")
        self._matrix = np.ones((len(self.criteria), len(self.criteria)))

    def _index(self, criterion: str) -> int:
        try:
            return list(self.criteria).index(criterion)
        except ValueError as exc:
            raise ContextError(f"unknown criterion: {criterion!r}") from exc

    def prefer(self, over: str, under: str, strength: float) -> "AHPComparison":
        """Record that ``over`` is ``strength`` x as important as ``under``."""
        if not 1.0 / 9.0 <= strength <= 9.0:
            raise ContextError(
                f"Saaty strengths lie in [1/9, 9], got {strength}"
            )
        i, j = self._index(over), self._index(under)
        if i == j:
            raise ContextError("cannot compare a criterion with itself")
        self._matrix[i, j] = strength
        self._matrix[j, i] = 1.0 / strength
        return self

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the current reciprocal comparison matrix."""
        return self._matrix.copy()

    def weights(self) -> dict[str, float]:
        """Criterion weights from the principal eigenvector (sum to 1)."""
        vector = ahp_weights(self._matrix)
        return {name: float(w) for name, w in zip(self.criteria, vector)}

    def consistency(self) -> float:
        """The consistency ratio of the recorded judgments."""
        return consistency_ratio(self._matrix)

    def is_consistent(self, threshold: float = CONSISTENCY_THRESHOLD) -> bool:
        """Whether the judgments are coherent enough to act on."""
        return self.consistency() <= threshold


def ahp_weights(matrix: np.ndarray) -> np.ndarray:
    """The normalised principal eigenvector of a reciprocal matrix."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ContextError("AHP matrix must be square")
    if np.any(matrix <= 0):
        raise ContextError("AHP matrix entries must be positive")
    eigenvalues, eigenvectors = np.linalg.eig(matrix)
    principal = int(np.argmax(eigenvalues.real))
    vector = np.abs(eigenvectors[:, principal].real)
    total = vector.sum()
    if total == 0:
        raise ContextError("degenerate AHP matrix")
    return vector / total


def consistency_ratio(matrix: np.ndarray) -> float:
    """Saaty's consistency ratio; 0 means perfectly consistent judgments."""
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    if n < 3:
        return 0.0
    eigenvalues = np.linalg.eigvals(matrix)
    lambda_max = float(np.max(eigenvalues.real))
    consistency_index = (lambda_max - n) / (n - 1)
    random_index = (
        _RANDOM_INDEX[n] if n < len(_RANDOM_INDEX) else _RANDOM_INDEX[-1]
    )
    if random_index == 0.0:
        return 0.0
    return max(0.0, consistency_index / random_index)
