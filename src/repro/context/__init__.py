"""User and data contexts — the auxiliary data of the paper's Figure 1.

"Comprehensive support for context awareness within data wrangling" is one
of the paper's two headline requirements.  This package provides the user
context (declarative multi-criteria requirements, elicited directly or via
AHP), the data context (master data, reference data, domain ontology), and
the multi-criteria decision machinery every component uses to act on them.
"""

from repro.context.ahp import AHPComparison, ahp_weights, consistency_ratio
from repro.context.data_context import DataContext
from repro.context.decision import (
    Alternative,
    pareto_front,
    rank,
    topsis,
    weighted_score,
)
from repro.context.ontology import Concept, Ontology, Property
from repro.context.user_context import UserContext

__all__ = [
    "AHPComparison",
    "Alternative",
    "Concept",
    "DataContext",
    "Ontology",
    "Property",
    "UserContext",
    "ahp_weights",
    "consistency_ratio",
    "pareto_front",
    "rank",
    "topsis",
    "weighted_score",
]
