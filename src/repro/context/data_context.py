"""The data context: master data, reference data, and domain ontologies.

Example 4 of the paper: "the data context includes not only the data that
the application seeks to use, but also local and third party sources that
provide additional information about the domain", e.g. a product catalog
treated as master data, schema.org-style formats, and product ontologies.

Components consult the :class:`DataContext` for three things: reference
vocabularies (legal values of an attribute), master records (trusted
entities that scope relevance and anchor accuracy measurement), and the
ontology (semantic matching evidence and expected types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.context.ontology import Ontology
from repro.errors import ContextError
from repro.model.records import Table

__all__ = ["DataContext"]


@dataclass
class DataContext:
    """All auxiliary information available to inform the wrangling process."""

    name: str = "data-context"
    master_data: dict[str, Table] = field(default_factory=dict)
    reference_data: dict[str, Table] = field(default_factory=dict)
    ontology: Ontology | None = None

    # -- construction ------------------------------------------------------

    def add_master(self, key: str, table: Table) -> "DataContext":
        """Register a master-data table (trusted, curated entities)."""
        if key in self.master_data:
            raise ContextError(f"master data {key!r} already registered")
        self.master_data[key] = table
        return self

    def add_reference(self, key: str, table: Table) -> "DataContext":
        """Register a reference table (vocabularies, code lists, formats)."""
        if key in self.reference_data:
            raise ContextError(f"reference data {key!r} already registered")
        self.reference_data[key] = table
        return self

    def with_ontology(self, ontology: Ontology) -> "DataContext":
        """Attach the domain ontology."""
        self.ontology = ontology
        return self

    # -- queries -------------------------------------------------------------

    def master(self, key: str) -> Table:
        """The master table registered under ``key``."""
        if key not in self.master_data:
            raise ContextError(f"no master data registered under {key!r}")
        return self.master_data[key]

    def master_values(self, key: str, attribute: str) -> set[Any]:
        """Distinct trusted values of ``attribute`` in master table ``key``."""
        return self.master(key).distinct_raw(attribute)

    def vocabulary(self, attribute: str) -> set[Any]:
        """The union of legal values for ``attribute`` across all reference
        tables that define it."""
        values: set[Any] = set()
        for table in self.reference_data.values():
            if attribute in table.schema:
                values |= table.distinct_raw(attribute)
        return values

    def knows_attribute(self, attribute: str) -> bool:
        """Whether any reference table or the ontology mentions ``attribute``."""
        if any(
            attribute in table.schema for table in self.reference_data.values()
        ):
            return True
        if self.ontology is not None:
            return (
                self.ontology.property_of(attribute) is not None
                or self.ontology.concept_of(attribute) is not None
            )
        return False

    def validate_value(self, attribute: str, value: Any) -> float:
        """Plausibility of ``value`` for ``attribute`` given the context.

        Returns 1.0 when a reference vocabulary confirms the value, 0.0
        when a non-empty vocabulary excludes it, and 0.5 when the context
        is silent — "the ontology may not quite represent the user's
        conceptualisation" (Section 4.2), so absence of evidence is not
        evidence of absence.
        """
        vocabulary = self.vocabulary(attribute)
        if vocabulary:
            return 1.0 if value in vocabulary else 0.0
        if self.ontology is not None:
            expected = self.ontology.expected_dtype(attribute)
            if expected is not None and value is not None:
                from repro.model.schema import coerce
                from repro.errors import TypeInferenceError

                try:
                    coerce(value, expected)
                    return 0.8
                except TypeInferenceError:
                    return 0.1
        return 0.5

    def summary(self) -> dict[str, int]:
        """Sizes of the registered auxiliary data."""
        return {
            "master_tables": len(self.master_data),
            "reference_tables": len(self.reference_data),
            "ontology_concepts": (
                len(self.ontology.concepts) if self.ontology else 0
            ),
            "ontology_properties": (
                len(self.ontology.properties) if self.ontology else 0
            ),
        }
