"""Comparison baselines: the classical ETL pipeline the paper critiques."""

from repro.baselines.static_etl import StaticETL

__all__ = ["StaticETL"]
