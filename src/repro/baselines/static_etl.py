"""The baseline: a classical, hand-wired, context-blind ETL pipeline.

This is what the paper argues against: "ETL platforms ... tend to limit
their scope to supporting the specification of wrangling workflows by
expert developers" with "manual intervention at some stage".  The static
pipeline fetches *every* source, matches on attribute names only, keeps
every mapping, deduplicates with one fixed threshold, fuses by plain
majority, and ignores context, quality annotations, and feedback entirely.
Benchmarks E1/E2/E12 measure what that costs.
"""

from __future__ import annotations

from typing import Sequence

from repro.context.user_context import UserContext
from repro.errors import PlanningError
from repro.extraction.induction import auto_induce
from repro.fusion.fuse import EntityFuser
from repro.mapping.mapping import Mapping
from repro.matching.schema_matching import SchemaMatcher
from repro.model.records import Table
from repro.model.schema import Schema
from repro.resolution.comparison import default_comparator
from repro.resolution.er import EntityResolver
from repro.resolution.rules import ThresholdRule
from repro.sources.base import DataSource, DocumentSource, StructuredSource

__all__ = ["StaticETL"]


class StaticETL:
    """A fixed extract-transform-load workflow with no context awareness."""

    def __init__(
        self,
        target_schema: Schema,
        match_threshold: float = 0.5,
        er_threshold: float = 0.8,
    ) -> None:
        self.target_schema = target_schema
        self.match_threshold = match_threshold
        self.er_threshold = er_threshold
        self.sources: list[DataSource] = []
        self.manual_actions = 0  # proxy for developer effort (experiment E1)

    def add_source(self, source: DataSource) -> "StaticETL":
        """Wire in one source — a manual developer action."""
        self.sources.append(source)
        self.manual_actions += 1
        return self

    def run(self) -> Table:
        """Fetch everything, map everything, dedupe, majority-fuse."""
        if not self.sources:
            raise PlanningError("no sources wired into the ETL workflow")
        matcher = SchemaMatcher(
            context=None,  # no data context: name evidence only
            channels=("name",),
            threshold=self.match_threshold,
        )
        translated = Table("translated", self.target_schema)
        for source in self.sources:
            if isinstance(source, StructuredSource):
                table = source.fetch().infer_schema()
            elif isinstance(source, DocumentSource):
                documents = source.fetch()
                wrapper = auto_induce(documents, source=source.name)
                table = wrapper.extract(documents).infer_schema()
            else:
                raise PlanningError(
                    f"unsupported source type: {type(source).__name__}"
                )
            correspondences = matcher.match(table, self.target_schema)
            mapping = Mapping.from_correspondences(
                source.name, self.target_schema, correspondences
            )
            for record in mapping.apply(table):
                translated.append(record)

        resolver = EntityResolver(
            comparator=default_comparator(self.target_schema),
            rule=ThresholdRule(self.er_threshold),
        )
        resolution = resolver.resolve(translated)
        fuser = EntityFuser(self.target_schema, default_strategy="majority")
        return fuser.fuse(resolution.clusters, name="etl-output")

    def run_for(self, user: UserContext) -> Table:
        """The context is accepted — and ignored.  That is the point."""
        del user
        return self.run()
