"""Crash-safe incremental ingestion: the durable edge of the pipeline.

ROADMAP item 3 made concrete: acquisition becomes incremental and
recoverable.  :mod:`repro.ingest.cursor` holds per-source
``Watermark``/delta state so a fetch can ask only for rows past the last
committed high-water mark; :mod:`repro.ingest.checkpoint` journals run
progress durably (atomic write-temp-then-rename, versioned JSON,
corruption-detecting checksums) so an interrupted run resumes instead of
restarting; :mod:`repro.ingest.snapshots` stores every committed payload
content-addressed, so any past run replays byte-for-byte from its
snapshot id.  ``docs/INCREMENTAL.md`` is the contract.

Exports resolve lazily (PEP 562): :mod:`repro.sources.base` imports the
cursor types from inside ``fetch_delta`` while :mod:`repro.ingest.
incremental` imports the source shapes, and deferring the submodule
imports keeps that same-rank coupling acyclic at import time.
"""

from __future__ import annotations

_EXPORTS = {
    "DELTA_COST_FLOOR": "repro.ingest.cursor",
    "DeltaBatch": "repro.ingest.cursor",
    "Watermark": "repro.ingest.cursor",
    "cursor_after": "repro.ingest.cursor",
    "watermark_for": "repro.ingest.cursor",
    "SnapshotStore": "repro.ingest.snapshots",
    "decode_payload": "repro.ingest.snapshots",
    "encode_payload": "repro.ingest.snapshots",
    "CheckpointStore": "repro.ingest.checkpoint",
    "CrashPlan": "repro.ingest.checkpoint",
    "RunLog": "repro.ingest.checkpoint",
    "acquire_durable": "repro.ingest.incremental",
    "merge_delta": "repro.ingest.incremental",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
