"""The durable run journal: commit, crash anywhere, resume.

One ``journal.json`` per store holds everything that must survive a
process death: how many runs completed, each source's committed
:class:`~repro.ingest.cursor.Watermark` (with the snapshot id of the
view it describes), and the current run's committed steps.  Every commit
rewrites the journal atomically (payload snapshots first, then one
``os.replace``), so at any instant the file on disk describes a
consistent prefix of the run — the recovery invariant the
kill-at-every-checkpoint matrix in ``tests/ingest/test_crash_recovery.py``
proves.

A journal whose checksum does not match its body is *quarantined*, never
trusted: the store restarts from the watermark-free state rather than
resume from corrupt history.

:class:`CrashPlan` is the chaos hook: it names commit steps at which an
:class:`~repro.errors.InjectedCrashError` fires either *before* the
journal write (progress lost, work must redo) or *after* it (progress
durable, resume must not redo) — the two sides of every crash window.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import CheckpointError, InjectedCrashError
from repro.ingest.cursor import Watermark
from repro.ingest.snapshots import SnapshotStore, decode_payload, encode_payload
from repro.io import atomic_write_bytes
from repro.model.workingdata import canonical_bytes, content_digest

__all__ = ["CheckpointStore", "CrashPlan", "JOURNAL_VERSION", "RunLog"]

#: Version stamp of the journal layout; bump on any change so old stores
#: are detected, not misread.
JOURNAL_VERSION = 1

_JOURNAL_SCHEMA = "repro.ingest/journal"


@dataclass(frozen=True)
class CrashPlan:
    """Scripted process deaths at named checkpoint steps.

    ``before`` steps die with the commit's journal write still pending
    (the step's work is lost); ``after`` steps die with the write already
    durable (the step must not be redone on resume).  Each step fires at
    most once per plan instance, so a resumed run sails past the point
    that killed its predecessor.
    """

    before: frozenset = frozenset()
    after: frozenset = frozenset()
    _fired: set = field(default_factory=set, compare=False)

    @classmethod
    def at(cls, *steps: str, when: str = "after") -> "CrashPlan":
        """A plan that dies at the named steps (``when``: before/after)."""
        if when not in ("before", "after"):
            raise CheckpointError(f"unknown crash phase {when!r}")
        chosen = frozenset(steps)
        if when == "before":
            return cls(before=chosen)
        return cls(after=chosen)

    def check(self, phase: str, step: str) -> None:
        """Die if this (phase, step) is scripted and has not fired yet."""
        scripted = self.before if phase == "before" else self.after
        key = f"{phase}:{step}"
        if step in scripted and key not in self._fired:
            self._fired.add(key)
            raise InjectedCrashError(
                f"injected crash {phase} checkpoint {step!r}"
            )


def _fresh_body() -> dict[str, Any]:
    return {"runs_completed": 0, "watermarks": {}, "current": None}


class CheckpointStore:
    """Durable per-run progress plus committed per-source watermarks.

    Layout under ``root``: ``journal.json`` (the single mutable file),
    ``objects/`` (content-addressed snapshots), ``quarantine/`` (corrupt
    files moved aside).
    """

    def __init__(
        self,
        root: str | Path,
        telemetry: Any = None,
        crash_plan: CrashPlan | None = None,
    ) -> None:
        self.root = Path(root)
        self.telemetry = telemetry
        self.crash_plan = crash_plan
        self.snapshots = SnapshotStore(self.root)

    # -- journal I/O ------------------------------------------------------

    @property
    def _journal_path(self) -> Path:
        return self.root / "journal.json"

    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).increment(amount)

    def _crash(self, phase: str, step: str) -> None:
        if self.crash_plan is not None:
            self.crash_plan.check(phase, step)

    def load_state(self) -> dict[str, Any]:
        """The journal body, or a fresh one (corrupt journals quarantined)."""
        path = self._journal_path
        if not path.exists():
            return _fresh_body()
        data = path.read_bytes()
        try:
            envelope = json.loads(data)
            body = envelope["body"]
            ok = (
                envelope.get("schema") == _JOURNAL_SCHEMA
                and envelope.get("version") == JOURNAL_VERSION
                and envelope.get("checksum") == content_digest(body)
            )
        except (ValueError, KeyError, TypeError):
            ok = False
            body = None
        if not ok:
            quarantined = self.snapshots.quarantine(path)
            self._count("ingest.checkpoint.quarantined")
            raise CheckpointError(
                f"journal failed its integrity check; quarantined at "
                f"{quarantined} — restart ingestion from scratch or "
                f"restore the journal from backup"
            )
        return body

    def _store_state(self, body: Mapping[str, Any], step: str) -> None:
        self._crash("before", step)
        envelope = {
            "schema": _JOURNAL_SCHEMA,
            "version": JOURNAL_VERSION,
            "body": body,
            "checksum": content_digest(body),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self._journal_path, canonical_bytes(envelope))
        self._count("ingest.commits")
        self._crash("after", step)

    # -- run lifecycle ----------------------------------------------------

    def begin_run(self, signature: str) -> "RunLog":
        """Open (or resume) a run under this store.

        An incomplete current run with a matching plan signature is
        resumed — its committed steps become the :meth:`RunLog.restored`
        set; anything else (no current run, completed, or the plan
        changed) starts fresh.
        """
        body = self.load_state()
        current = body.get("current")
        if (
            current is not None
            and not current.get("complete")
            and current.get("signature") == signature
        ):
            current["resumed"] = int(current.get("resumed", 0)) + 1
            log = RunLog(self, body, resumed=True)
            self._store_state(body, "resume")
            self._count("ingest.resumes")
            return log
        if (
            current is not None
            and not current.get("complete")
            and current.get("signature") != signature
        ):
            self._count("ingest.resume.signature_mismatch")
        run_id = f"run-{int(body.get('runs_completed', 0)) + 1:03d}"
        body["current"] = {
            "run_id": run_id,
            "signature": signature,
            "complete": False,
            "resumed": 0,
            "steps": [],
            "output_snapshot": None,
        }
        log = RunLog(self, body, resumed=False)
        self._store_state(body, "begin")
        return log

    def replay(self, snapshot_id: str) -> Any:
        """Decode any committed snapshot back into its live payload."""
        return decode_payload(self.snapshots.get(snapshot_id))

    def watermarks(self) -> dict[str, Watermark]:
        """Every committed per-source watermark."""
        body = self.load_state()
        return {
            name: Watermark.from_dict(entry["watermark"])
            for name, entry in body.get("watermarks", {}).items()
        }

    def quarantined(self) -> list[Path]:
        """Files the store refused to trust."""
        return self.snapshots.quarantined()


class RunLog:
    """One run's committed progress, bound to its store.

    Commit points are named steps (``probe:<src>``, ``acquire:<src>``,
    ``node:<name>``, ``complete``); :meth:`commit` snapshots the step's
    payload, records its metadata, and rewrites the journal atomically.
    On resume, :meth:`restored` hands back the committed payload so the
    step is *skipped*, not redone — that is what keeps the access ledger
    free of double charges.
    """

    def __init__(
        self, store: CheckpointStore, body: dict[str, Any], resumed: bool
    ) -> None:
        self._store = store
        self._body = body
        self._current = body["current"]
        self.resumed = resumed
        self.resumed_from = (
            self._current["steps"][-1]["step"]
            if resumed and self._current["steps"]
            else None
        )
        self._committed: dict[str, dict[str, Any]] = {
            entry["step"]: entry for entry in self._current["steps"]
        }
        self._restored_steps: list[str] = sorted(self._committed)

    @property
    def run_id(self) -> str:
        """The deterministic run id (``run-<n>``)."""
        return self._current["run_id"]

    # -- reading committed state -----------------------------------------

    def restored(self, step: str) -> Any:
        """The payload a prior attempt committed for ``step``, or ``None``.

        A committed step whose snapshot fails verification is treated as
        not restored (the object is quarantined; the step reruns).
        """
        entry = self._committed.get(step)
        if entry is None or entry.get("snapshot") is None:
            return None
        try:
            payload = self._store.replay(entry["snapshot"])
        except CheckpointError:
            self._store._count("ingest.restore.corrupt")
            return None
        self._store._count("ingest.restores")
        return payload

    def restored_data(self, step: str) -> dict[str, Any] | None:
        """The metadata a prior attempt committed for ``step``."""
        entry = self._committed.get(step)
        return None if entry is None else dict(entry.get("data") or {})

    def has(self, step: str) -> bool:
        """Whether ``step`` was committed (payload or not)."""
        return step in self._committed

    def watermark(self, source: str) -> Watermark | None:
        """The committed watermark for ``source``, if any."""
        entry = self._body.get("watermarks", {}).get(source)
        return None if entry is None else Watermark.from_dict(entry["watermark"])

    def previous_rows(self, source: str) -> list[dict[str, Any]] | None:
        """The raw rows of the committed view behind the watermark.

        ``None`` when there is no committed view or its snapshot fails
        verification (in which case delta fetching falls back to full).
        """
        entry = self._body.get("watermarks", {}).get(source)
        if entry is None or entry.get("snapshot") is None:
            return None
        try:
            table = self._store.replay(entry["snapshot"])
        except CheckpointError:
            self._store._count("ingest.restore.corrupt")
            return None
        return table.to_rows()

    # -- writing ----------------------------------------------------------

    def commit(
        self,
        step: str,
        data: Mapping[str, Any] | None = None,
        payload: Any = None,
        watermark: Watermark | None = None,
    ) -> str | None:
        """Durably commit one step; returns the payload's snapshot id.

        The snapshot object lands first, then one atomic journal rewrite
        makes the step (and any watermark advance) visible — a crash
        between the two leaves an unreferenced object, never a dangling
        reference.
        """
        snapshot_id = None
        if payload is not None:
            snapshot_id = self._store.snapshots.put(encode_payload(payload))
        entry = {
            "step": step,
            "snapshot": snapshot_id,
            "data": dict(data) if data else {},
        }
        if step in self._committed:
            self._current["steps"] = [
                e if e["step"] != step else entry
                for e in self._current["steps"]
            ]
        else:
            self._current["steps"].append(entry)
        self._committed[step] = entry
        if watermark is not None:
            self._body.setdefault("watermarks", {})[watermark.source] = {
                "watermark": watermark.to_dict(),
                "snapshot": snapshot_id,
            }
        if self._store.telemetry is not None:
            with self._store.telemetry.tracer.span(
                "ingest.checkpoint", step=step
            ):
                self._store._store_state(self._body, step)
        else:
            self._store._store_state(self._body, step)
        return snapshot_id

    def complete(self, payload: Any = None) -> str | None:
        """Mark the run complete (one atomic write with the final step)."""
        snapshot_id = None
        if payload is not None:
            snapshot_id = self._store.snapshots.put(encode_payload(payload))
        entry = {"step": "complete", "snapshot": snapshot_id, "data": {}}
        if "complete" not in self._committed:
            self._current["steps"].append(entry)
            self._committed["complete"] = entry
        self._current["complete"] = True
        self._current["output_snapshot"] = snapshot_id
        self._body["runs_completed"] = int(self._body["runs_completed"]) + 1
        self._store._store_state(self._body, "complete")
        self._store._count("ingest.runs_completed")
        return snapshot_id

    def export(self) -> dict[str, Any]:
        """The run's ingest summary, surfaced on ``WrangleResult``."""
        acquisitions = {
            entry["step"].split(":", 1)[1]: dict(entry["data"])
            for entry in self._current["steps"]
            if entry["step"].startswith("acquire:")
        }
        return {
            "run_id": self.run_id,
            "resumed": self.resumed,
            "resumed_from": self.resumed_from,
            "restored_steps": list(self._restored_steps),
            "steps": [entry["step"] for entry in self._current["steps"]],
            "acquisitions": acquisitions,
            "watermarks": {
                name: dict(entry["watermark"])
                for name, entry in self._body.get("watermarks", {}).items()
            },
            "output_snapshot": self._current["output_snapshot"],
            "root": str(self._store.root),
        }
