"""Delta-merge and durable acquisition: where cursors meet checkpoints.

:func:`merge_delta` rebuilds a source's full current view from the
previously committed rows plus a :class:`~repro.ingest.cursor.DeltaBatch`
— the batch's ``order`` (row digests of the current view, in source
order) is the authority, so edits-behind-the-cursor are *detected* (a
digest nobody can supply) instead of silently missed.

:func:`acquire_durable` is the wrangler's acquisition hook when a
:class:`~repro.ingest.checkpoint.CheckpointStore` is attached: fetch
delta when the committed watermark allows, full otherwise, and commit
the result (payload snapshot + watermark advance) in one checkpoint.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.ingest.checkpoint import RunLog
from repro.ingest.cursor import DeltaBatch, watermark_for
from repro.model.records import Table
from repro.model.workingdata import row_digest
from repro.sources.base import DataSource, DocumentSource

__all__ = ["acquire_durable", "merge_delta"]


def merge_delta(
    previous_rows: Sequence[dict[str, Any]], batch: DeltaBatch
) -> list[dict[str, Any]] | None:
    """Reassemble the source's full current view, or ``None`` if impossible.

    Rows are pooled by content digest from the previous committed view
    and the delta; the batch's ``order`` then dictates exactly which rows
    the current view holds and in what sequence.  Deletions and
    reorderings fall out naturally; a digest neither pool can supply
    means a row changed behind the cursor, and the caller must fall back
    to a full refetch.
    """
    if batch.mode == "full":
        return [dict(row) for row in (batch.rows or ())]
    pool: dict[str, dict[str, Any]] = {}
    for row in previous_rows:
        pool[row_digest(row)] = dict(row)
    for row in batch.rows:
        pool[row_digest(row)] = dict(row)
    merged = []
    for digest in batch.order:
        row = pool.get(digest)
        if row is None:
            return None
        merged.append(dict(row))
    return merged


def _count(telemetry: Any, name: str, amount: int = 1) -> None:
    if telemetry is not None:
        telemetry.metrics.counter(name).increment(amount)


def acquire_durable(
    source: DataSource, log: RunLog, telemetry: Any = None
) -> Any:
    """Fetch one source under the run log and commit the result.

    Document sources are always full fetches.  Structured sources go
    delta when a committed watermark, its snapshot, and a declared
    cursor all line up; an unmergeable delta (edit behind the cursor,
    corrupt previous snapshot) falls back to a full refetch — counted
    on ``ingest.delta.fallbacks`` — so correctness never depends on the
    cursor discipline holding.
    """
    step = f"acquire:{source.name}"
    if isinstance(source, DocumentSource):
        documents = source.fetch()
        log.commit(
            step,
            data={"mode": "full", "rows_fetched": len(documents),
                  "fraction": 1.0},
            payload=documents,
        )
        _count(telemetry, "ingest.full_fetches")
        return documents

    watermark = (
        log.watermark(source.name)
        if source.delta_cursor() is not None
        else None
    )
    previous = (
        log.previous_rows(source.name) if watermark is not None else None
    )
    if watermark is not None and previous is not None:
        batch = source.fetch_delta(watermark)
        merged = merge_delta(previous, batch)
        if merged is None:
            _count(telemetry, "ingest.delta.fallbacks")
            batch = source.fetch_delta(None)
            table = batch.table
            info = {
                "mode": "fallback-full",
                "rows_fetched": len(batch.rows),
                "fraction": batch.fraction,
            }
        else:
            table = Table.from_rows(source.name, merged, source=source.name)
            info = {
                "mode": batch.mode,
                "rows_fetched": len(batch.rows),
                "fraction": batch.fraction,
            }
            _count(telemetry, "ingest.delta.fetches")
            _count(telemetry, "ingest.delta.rows", len(batch.rows))
    elif source.delta_cursor() is not None:
        batch = source.fetch_delta(None)
        table = batch.table
        info = {
            "mode": "full",
            "rows_fetched": len(batch.rows),
            "fraction": batch.fraction,
        }
        _count(telemetry, "ingest.full_fetches")
    else:
        table = source.fetch()
        rows = table.to_rows()
        batch = DeltaBatch(
            source=source.name,
            mode="full",
            rows=tuple(rows),
            order=tuple(row_digest(row) for row in rows),
            watermark=watermark_for(source.name, rows, None),
            fraction=1.0,
            table=table,
        )
        info = {"mode": "full", "rows_fetched": len(rows), "fraction": 1.0}
        _count(telemetry, "ingest.full_fetches")
    log.commit(step, data=info, payload=table, watermark=batch.watermark)
    return table
