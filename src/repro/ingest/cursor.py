"""Per-source cursor/watermark state for incremental acquisition.

The velocity story (E14, ROADMAP item 3): a source that has declared a
monotone *cursor attribute* (an always-increasing column — sequence
number, updated-at timestamp) can be re-read by asking only for rows
whose cursor lies past the last committed :class:`Watermark`.  The
watermark also carries a content fingerprint of the full committed view,
so an unchanged source is recognised for a floor-priced probe and an
out-of-order mutation (a row edited *behind* the cursor) is detected and
degraded to a full refetch rather than silently missed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.model.workingdata import content_digest, row_digest, tag_raw, untag_raw

__all__ = [
    "DELTA_COST_FLOOR",
    "DeltaBatch",
    "Watermark",
    "cursor_after",
    "watermark_for",
]

#: The cheapest a delta fetch can be, as a fraction of ``cost_per_access``.
#: Even an "unchanged" answer had to read the source's current cursor
#: frontier, so it is priced like a probe-sized touch, not free.
DELTA_COST_FLOOR = 0.05


@dataclass(frozen=True)
class Watermark:
    """The committed high-water mark of one source.

    ``cursor`` is the greatest cursor-attribute value the last committed
    fetch observed (``None`` when the source declares no cursor);
    ``fingerprint`` is the content digest of the row-digest sequence of
    the full committed view, in source order; ``rows`` is its length.
    """

    source: str
    cursor: Any
    fingerprint: str
    rows: int

    def to_dict(self) -> dict[str, Any]:
        """Journal-ready JSON form (cursor payload type-tagged)."""
        return {
            "source": self.source,
            "cursor": tag_raw(self.cursor),
            "fingerprint": self.fingerprint,
            "rows": self.rows,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Watermark":
        """Invert :meth:`to_dict`."""
        return cls(
            source=payload["source"],
            cursor=untag_raw(payload["cursor"]),
            fingerprint=payload["fingerprint"],
            rows=payload["rows"],
        )


@dataclass(frozen=True)
class DeltaBatch:
    """What one incremental fetch actually returned.

    ``mode`` is ``"full"`` (no usable watermark — ``table`` holds the
    complete fetch), ``"delta"`` (``rows`` are the raw rows past the
    watermark cursor), or ``"unchanged"`` (fingerprint matched; ``rows``
    empty).  ``order`` always lists the row digests of the source's full
    current view in source order, so a merge can reconstruct the exact
    view from previous-snapshot rows plus the delta rows.  ``fraction``
    is what the fetch charged against ``cost_per_access``.
    """

    source: str
    mode: str
    rows: tuple[dict[str, Any], ...]
    order: tuple[str, ...]
    watermark: Watermark
    fraction: float
    table: Any = None


def cursor_after(value: Any, boundary: Any) -> bool:
    """Whether a row's cursor value lies strictly past the boundary.

    ``None`` boundaries admit everything; ``None`` values never pass.
    Mixed-type cursors (a source that switched from ints to strings)
    fall back to string ordering rather than raising mid-fetch.
    """
    if boundary is None:
        return True
    if value is None:
        return False
    try:
        return bool(value > boundary)
    except TypeError:
        return str(value) > str(boundary)


def watermark_for(
    source: str,
    rows: Sequence[Mapping[str, Any]],
    cursor_attribute: str | None,
    previous: Watermark | None = None,
) -> Watermark:
    """The watermark a committed view of ``rows`` establishes.

    The cursor never regresses: it starts from ``previous`` (if any) and
    advances over every row's cursor value under :func:`cursor_after`
    ordering.  The fingerprint digests the row-digest sequence in source
    order, so it is sensitive to edits, deletions, and reordering — not
    just appends.
    """
    cursor = previous.cursor if previous is not None else None
    if cursor_attribute is not None:
        for row in rows:
            candidate = row.get(cursor_attribute)
            if candidate is not None and cursor_after(candidate, cursor):
                cursor = candidate
    digests = [row_digest(row) for row in rows]
    return Watermark(
        source=source,
        cursor=cursor,
        fingerprint=content_digest(digests),
        rows=len(rows),
    )
