"""Content-addressed snapshots of committed working data.

Every payload a checkpoint commits (a fetched table, an extracted
document set, the final wrangled output) is stored once under the sha256
of its canonical JSON bytes — the snapshot id *names the data*, so any
past run replays byte-for-byte from its id, and identical payloads across
runs share one object.  Reads verify the digest; a mismatch means disk
corruption, and the object is quarantined (moved aside, never trusted)
with a :class:`~repro.errors.CheckpointError` raised to the caller.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import CheckpointError
from repro.io import atomic_write_bytes
from repro.model.records import Table
from repro.model.workingdata import (
    SNAPSHOT_VERSION,
    canonical_bytes,
    decode_table,
    encode_table,
)
from repro.sources.base import Document

__all__ = ["SnapshotStore", "decode_payload", "encode_payload"]


def _encode_documents(documents: Sequence[Document]) -> dict[str, Any]:
    return {
        "kind": "documents",
        "version": SNAPSHOT_VERSION,
        "documents": [
            {"url": doc.url, "html": doc.html, "source": doc.source}
            for doc in documents
        ],
    }


def _decode_documents(payload: Mapping[str, Any]) -> list[Document]:
    if payload.get("version") != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"document snapshot version {payload.get('version')!r} is not "
            f"the supported version {SNAPSHOT_VERSION}"
        )
    return [
        Document(entry["url"], entry["html"], entry["source"])
        for entry in payload["documents"]
    ]


def encode_payload(value: Any) -> dict[str, Any]:
    """JSON-encode any payload a checkpoint may commit."""
    if isinstance(value, Table):
        return encode_table(value)
    if isinstance(value, Sequence) and all(
        isinstance(item, Document) for item in value
    ):
        return _encode_documents(value)
    raise CheckpointError(
        f"cannot snapshot payload of type {type(value).__name__}"
    )


def decode_payload(payload: Mapping[str, Any]) -> Any:
    """Invert :func:`encode_payload`, dispatching on the ``kind`` stamp."""
    kind = payload.get("kind")
    if kind == "table":
        return decode_table(payload)
    if kind == "documents":
        return _decode_documents(payload)
    raise CheckpointError(f"unknown snapshot payload kind {kind!r}")


class SnapshotStore:
    """A content-addressed object store under one directory.

    Objects live at ``objects/<digest[:2]>/<digest>.json``; corrupt
    objects are moved to ``quarantine/`` so a later run cannot re-read
    them and the operator can inspect what rotted.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    @property
    def _quarantine(self) -> Path:
        return self.root / "quarantine"

    def _object_path(self, snapshot_id: str) -> Path:
        return self._objects / snapshot_id[:2] / f"{snapshot_id}.json"

    def put(self, payload: Mapping[str, Any]) -> str:
        """Store a JSON payload; returns its content address.

        Idempotent: an object that already exists is left untouched, so
        re-committing after a resume never rewrites (or re-corrupts)
        history.
        """
        data = canonical_bytes(payload)
        snapshot_id = hashlib.sha256(data).hexdigest()
        path = self._object_path(snapshot_id)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, data)
        return snapshot_id

    def get(self, snapshot_id: str) -> dict[str, Any]:
        """Load and verify the payload stored under ``snapshot_id``.

        The bytes are re-hashed before parsing; a digest mismatch
        quarantines the object and raises :class:`CheckpointError`.
        """
        path = self._object_path(snapshot_id)
        if not path.exists():
            raise CheckpointError(f"no snapshot object {snapshot_id}")
        data = path.read_bytes()
        actual = hashlib.sha256(data).hexdigest()
        if actual != snapshot_id:
            quarantined = self.quarantine(path)
            raise CheckpointError(
                f"snapshot {snapshot_id} failed its integrity check "
                f"(stored bytes hash to {actual}); quarantined at "
                f"{quarantined}"
            )
        return json.loads(data.decode("ascii"))

    def quarantine(self, path: Path) -> Path:
        """Move a corrupt file aside; returns its new resting place."""
        self._quarantine.mkdir(parents=True, exist_ok=True)
        target = self._quarantine / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self._quarantine / f"{path.name}.{suffix}"
        os.replace(path, target)
        return target

    def quarantined(self) -> list[Path]:
        """Every quarantined file, sorted by name."""
        if not self._quarantine.exists():
            return []
        return sorted(p for p in self._quarantine.iterdir() if p.is_file())

    def __len__(self) -> int:
        if not self._objects.exists():
            return 0
        return sum(1 for _ in self._objects.glob("*/*.json"))
