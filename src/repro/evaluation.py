"""Ground-truth evaluation of wrangled outputs.

The synthetic worlds carry a hidden ``_truth`` lineage column; these
helpers measure a wrangled table against it — entity-resolution pair
precision/recall, value accuracy against the true catalog, and coverage —
so every benchmark reports the same, comparable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.datagen.products import ProductWorld, TRUTH_COLUMN
from repro.extraction.patterns import recogniser
from repro.model.records import Table
from repro.resolution.er import ResolutionResult

__all__ = [
    "PairMetrics",
    "pair_metrics",
    "price_accuracy",
    "coverage",
    "wrangle_scorecard",
    "truth_labels",
]


@dataclass(frozen=True)
class PairMetrics:
    """Pairwise precision / recall / F1 of an entity resolution."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def pair_metrics(resolution: ResolutionResult, truth_of: Mapping[str, object]) -> PairMetrics:
    """Pairwise ER quality against record-level truth labels.

    ``truth_of`` maps record ids to true entity ids (``None`` = spurious
    record that matches nothing).  True pairs are record pairs sharing a
    non-null truth id.
    """
    rids = [rid for rid in truth_of]
    true_pairs = set()
    for i, left in enumerate(rids):
        for right in rids[i + 1:]:
            if truth_of[left] is not None and truth_of[left] == truth_of[right]:
                true_pairs.add(tuple(sorted((left, right))))
    predicted = {
        pair for pair in resolution.pair_set()
        if pair[0] in truth_of and pair[1] in truth_of
    }
    if not predicted:
        return PairMetrics(1.0 if not true_pairs else 0.0, 0.0 if true_pairs else 1.0)
    tp = len(predicted & true_pairs)
    precision = tp / len(predicted)
    recall = tp / len(true_pairs) if true_pairs else 1.0
    return PairMetrics(precision, recall)


def truth_labels(table: Table) -> dict[str, object]:
    """Record id → truth id, from the hidden lineage column."""
    return {record.rid: record.raw(TRUTH_COLUMN) for record in table}


def price_accuracy(
    wrangled: Table, world: ProductWorld, tolerance: float = 0.01
) -> float:
    """Fraction of fused prices matching the true catalog price.

    Entities whose lineage column is missing are skipped (they cannot be
    graded); an empty gradable set scores 0 — an output that answers
    nothing is not accurate.
    """
    truth = world.truth_by_id()
    graded = 0
    correct = 0
    for record in wrangled:
        truth_id = record.raw(TRUTH_COLUMN)
        if truth_id not in truth:
            continue
        value = record.get("price")
        if value.is_missing:
            continue
        raw = value.raw
        if isinstance(raw, str):
            raw = recogniser("price").find(raw)
        if raw is None:
            continue
        graded += 1
        expected = float(truth[truth_id]["price"])  # type: ignore[arg-type]
        if abs(float(raw) - expected) <= tolerance * max(expected, 1.0):
            correct += 1
    if graded == 0:
        return 0.0
    return correct / graded


def coverage(wrangled: Table, world: ProductWorld) -> float:
    """Fraction of true catalog entities present in the wrangled output."""
    truth_ids = {record.raw("product_id") for record in world.ground_truth}
    found = {
        record.raw(TRUTH_COLUMN)
        for record in wrangled
        if record.raw(TRUTH_COLUMN) in truth_ids
    }
    if not truth_ids:
        return 1.0
    return len(found) / len(truth_ids)


def wrangle_scorecard(
    wrangled: Table, world: ProductWorld, tolerance: float = 0.01
) -> dict[str, float]:
    """The standard benchmark scorecard: coverage, price accuracy, size."""
    return {
        "entities": float(len(wrangled)),
        "coverage": coverage(wrangled, world),
        "price_accuracy": price_accuracy(wrangled, world, tolerance),
        "completeness": wrangled.completeness(),
    }
