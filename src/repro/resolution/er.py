"""The entity resolution pipeline: block, compare, decide, cluster.

Matched pairs are closed under transitivity by connected-component
clustering (networkx), so the output is a partition of the input records
into entities — ready for the fusion component to reconcile.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import networkx as nx

from repro.model.records import Record, Table
from repro.resolution.blocking import full_pairs, token_blocking
from repro.resolution.comparison import RecordComparator, default_comparator
from repro.resolution.rules import MatchDecision, ThresholdRule

__all__ = ["EntityCluster", "ResolutionResult", "EntityResolver"]


class _Rule(Protocol):
    def decide(
        self, similarity: float, vector: Sequence[float | None]
    ) -> MatchDecision: ...


def _stable_cluster_id(records: Sequence[Record]) -> str:
    """A content-derived entity id, stable across pipeline re-runs.

    Feedback refers to entities by id; positional ids ("entity-7") break
    the moment re-planning changes the record set, silently mis-binding
    old judgments.  Hashing the members' source + leading field keeps ids
    stable whenever the entity's membership is unchanged.
    """
    from repro.model.schema import DataType

    transient = (DataType.URL, DataType.DATE, DataType.CURRENCY)

    def signature(record: Record) -> str:
        # Identity-bearing cells only: prices, dates, and URLs are the
        # values that *change between runs* — hashing them would give the
        # same entity a new id on every price move, breaking both feedback
        # binding and change detection.
        cells = ",".join(
            f"{name}={record.cells[name].raw}"
            for name in sorted(record.cells)
            if not name.startswith("_")
            and not record.cells[name].is_missing
            and record.cells[name].dtype not in transient
        )
        return f"{record.source}|{cells}"

    digest = hashlib.sha1()
    for line in sorted(signature(record) for record in records):
        digest.update(line.encode("utf-8"))
        digest.update(b";")
    return f"entity-{digest.hexdigest()[:10]}"


@dataclass
class EntityCluster:
    """One resolved entity: the records claimed to be the same thing."""

    cluster_id: str
    records: list[Record]

    def __len__(self) -> int:
        return len(self.records)

    @property
    def sources(self) -> frozenset[str]:
        """The sources contributing to this entity."""
        return frozenset(record.source for record in self.records)


@dataclass
class ResolutionResult:
    """The full output of one ER run."""

    clusters: list[EntityCluster]
    matched_pairs: dict[tuple[str, str], float] = field(default_factory=dict)
    compared: int = 0
    candidate_pairs: int = 0

    def __len__(self) -> int:
        return len(self.clusters)

    def non_singleton(self) -> list[EntityCluster]:
        """Clusters merging at least two records."""
        return [cluster for cluster in self.clusters if len(cluster) > 1]

    def pair_set(self) -> set[tuple[str, str]]:
        """All within-cluster record-id pairs (transitively closed)."""
        pairs: set[tuple[str, str]] = set()
        for cluster in self.clusters:
            rids = sorted(record.rid for record in cluster.records)
            for i, left in enumerate(rids):
                for right in rids[i + 1:]:
                    pairs.add((left, right))
        return pairs


class EntityResolver:
    """A configurable block → compare → decide → cluster pipeline.

    Defaults: token blocking on the given key attributes (falling back to
    exhaustive pairs for tiny tables), the schema-derived comparator, and
    a threshold rule — everything replaceable, and everything retrainable
    from feedback via :mod:`repro.feedback.propagation`.
    """

    def __init__(
        self,
        comparator: RecordComparator | None = None,
        rule: _Rule | None = None,
        blocking_attributes: Sequence[str] | None = None,
        blocker: Callable[[Table], set[tuple[int, int]]] | None = None,
        small_table_cutoff: int = 30,
    ) -> None:
        self.comparator = comparator
        self.rule: _Rule = rule if rule is not None else ThresholdRule(0.8)
        self.blocking_attributes = (
            tuple(blocking_attributes) if blocking_attributes else None
        )
        self.blocker = blocker
        self.small_table_cutoff = small_table_cutoff

    def _candidate_pairs(self, table: Table) -> set[tuple[int, int]]:
        if self.blocker is not None:
            return self.blocker(table)
        if len(table) <= self.small_table_cutoff:
            return full_pairs(table)
        attributes = self.blocking_attributes
        if attributes is None:
            attributes = tuple(
                a.name
                for a in table.schema
                if a.required and not a.name.startswith("_")
            ) or tuple(
                name for name in table.schema.names if not name.startswith("_")
            )[:2]
        return token_blocking(table, attributes)

    def resolve(self, table: Table) -> ResolutionResult:
        """Partition ``table`` into entity clusters."""
        comparator = self.comparator or default_comparator(table.schema)
        pairs = self._candidate_pairs(table)
        graph = nx.Graph()
        graph.add_nodes_from(range(len(table)))
        matched: dict[tuple[str, str], float] = {}
        compared = 0
        for left_index, right_index in sorted(pairs):
            left = table.records[left_index]
            right = table.records[right_index]
            vector = comparator.vector(left, right)
            similarity = comparator.similarity(left, right)
            compared += 1
            decision = self.rule.decide(similarity, vector)
            if decision.is_match:
                graph.add_edge(left_index, right_index)
                key = tuple(sorted((left.rid, right.rid)))
                matched[key] = decision.confidence  # type: ignore[index]

        clusters = []
        for component in nx.connected_components(graph):
            records = [table.records[index] for index in sorted(component)]
            clusters.append(EntityCluster(_stable_cluster_id(records), records))
        clusters.sort(key=lambda c: c.cluster_id)
        return ResolutionResult(
            clusters,
            matched_pairs=matched,
            compared=compared,
            candidate_pairs=len(pairs),
        )
