"""The entity resolution pipeline: block, compare, decide, cluster.

Matched pairs are closed under transitivity by connected-component
clustering (networkx), so the output is a partition of the input records
into entities — ready for the fusion component to reconcile.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import networkx as nx
import numpy as np

from repro.model.records import Record, Table
from repro.resolution.blocking import full_pairs, pair_array, token_blocking
from repro.resolution.comparison import RecordComparator, default_comparator
from repro.resolution.kernels import compile_comparator
from repro.resolution.rules import MatchDecision, ThresholdRule

if TYPE_CHECKING:  # typing only: resolution must not import core at runtime
    from repro.core.executor import Executor
    from repro.obs import MetricsRegistry

__all__ = [
    "EntityCluster",
    "EntityResolver",
    "ResolutionResult",
    "stable_cluster_id",
]


class _Rule(Protocol):
    def decide(
        self, similarity: float, vector: Sequence[float | None]
    ) -> MatchDecision: ...


def stable_cluster_id(records: Sequence[Record]) -> str:
    """A content-derived entity id, stable across pipeline re-runs.

    Feedback refers to entities by id; positional ids ("entity-7") break
    the moment re-planning changes the record set, silently mis-binding
    old judgments.  Hashing the members' source + leading field keeps ids
    stable whenever the entity's membership is unchanged.
    """
    from repro.model.schema import DataType

    transient = (DataType.URL, DataType.DATE, DataType.CURRENCY)

    def signature(record: Record) -> str:
        # Identity-bearing cells only: prices, dates, and URLs are the
        # values that *change between runs* — hashing them would give the
        # same entity a new id on every price move, breaking both feedback
        # binding and change detection.
        cells = ",".join(
            f"{name}={record.cells[name].raw}"
            for name in sorted(record.cells)
            if not name.startswith("_")
            and not record.cells[name].is_missing
            and record.cells[name].dtype not in transient
        )
        return f"{record.source}|{cells}"

    digest = hashlib.sha1()
    for line in sorted(signature(record) for record in records):
        digest.update(line.encode("utf-8"))
        digest.update(b";")
    return f"entity-{digest.hexdigest()[:10]}"


#: Backwards-compatible alias; the id scheme is public API now that
#: partitioned execution must mint the very same ids as single-node ER.
_stable_cluster_id = stable_cluster_id


@dataclass
class EntityCluster:
    """One resolved entity: the records claimed to be the same thing."""

    cluster_id: str
    records: list[Record]

    @classmethod
    def from_records(cls, records: Sequence[Record]) -> "EntityCluster":
        """A cluster under the content-derived stable id for ``records``.

        The one sanctioned way to mint a cluster id: every execution mode
        (single-node, partitioned, process-parallel) that builds clusters
        through this constructor assigns the same entity the same id, so
        feedback keyed by entity id binds across modes.
        """
        return cls(stable_cluster_id(records), list(records))

    def __len__(self) -> int:
        return len(self.records)

    @property
    def sources(self) -> frozenset[str]:
        """The sources contributing to this entity."""
        return frozenset(record.source for record in self.records)


@dataclass
class ResolutionResult:
    """The full output of one ER run."""

    clusters: list[EntityCluster]
    matched_pairs: dict[tuple[str, str], float] = field(default_factory=dict)
    compared: int = 0
    candidate_pairs: int = 0

    def __len__(self) -> int:
        return len(self.clusters)

    def non_singleton(self) -> list[EntityCluster]:
        """Clusters merging at least two records."""
        return [cluster for cluster in self.clusters if len(cluster) > 1]

    def pair_set(self) -> set[tuple[str, str]]:
        """All within-cluster record-id pairs (transitively closed)."""
        pairs: set[tuple[str, str]] = set()
        for cluster in self.clusters:
            rids = sorted(record.rid for record in cluster.records)
            for i, left in enumerate(rids):
                for right in rids[i + 1:]:
                    pairs.add((left, right))
        return pairs


class EntityResolver:
    """A configurable block → compare → decide → cluster pipeline.

    Defaults: token blocking on the given key attributes (falling back to
    exhaustive pairs for tiny tables), the schema-derived comparator, and
    a threshold rule — everything replaceable, and everything retrainable
    from feedback via :mod:`repro.feedback.propagation`.
    """

    def __init__(
        self,
        comparator: RecordComparator | None = None,
        rule: _Rule | None = None,
        blocking_attributes: Sequence[str] | None = None,
        blocker: Callable[[Table], object] | None = None,
        small_table_cutoff: int = 30,
        use_kernels: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.comparator = comparator
        self.rule: _Rule = rule if rule is not None else ThresholdRule(0.8)
        self.blocking_attributes = (
            tuple(blocking_attributes) if blocking_attributes else None
        )
        self.blocker = blocker
        self.small_table_cutoff = small_table_cutoff
        #: Engage the vectorised prune kernels when the comparator/rule
        #: pair is compilable.  The kernels are a *sound prefilter* —
        #: decisions stay bit-identical — so this is a pure perf toggle,
        #: kept switchable for parity testing and benchmarking.
        self.use_kernels = use_kernels
        #: Optional registry for blocking/kernel observability counters
        #: (``blocking.dropped_*``, ``kernels.*``).  Never shipped to
        #: workers: all counts are incremented on the coordinator, so
        #: telemetry stays identical across executor backends.
        self.metrics = metrics

    def _candidate_pairs(self, table: Table) -> np.ndarray:
        if self.blocker is not None:
            # Custom blockers may still return legacy pair sets.
            return pair_array(self.blocker(table))
        if len(table) <= self.small_table_cutoff:
            return full_pairs(table)
        attributes = self.blocking_attributes
        if attributes is None:
            attributes = tuple(
                a.name
                for a in table.schema
                if a.required and not a.name.startswith("_")
            ) or tuple(
                name for name in table.schema.names if not name.startswith("_")
            )[:2]
        return token_blocking(table, attributes, metrics=self.metrics)

    def resolve(
        self, table: Table, executor: "Executor | None" = None
    ) -> ResolutionResult:
        """Partition ``table`` into entity clusters.

        With an ``executor``, the compare/decide loop is sharded into
        contiguous chunks of the sorted candidate pairs and fanned out —
        gated on the comparator's and rule's parallel certificates (the
        comparison kernel must be ROW_LOCAL/PARTITION_LOCAL).  Chunks
        merge in submission order, so the result is identical to the
        sequential loop whatever the worker count.
        """
        comparator = self.comparator or default_comparator(table.schema)
        pairs = self._candidate_pairs(table)
        matches = self._decide(table, comparator, pairs, executor)

        graph = nx.Graph()
        graph.add_nodes_from(range(len(table)))
        matched: dict[tuple[str, str], float] = {}
        for left_index, right_index, key, confidence in matches:
            graph.add_edge(left_index, right_index)
            matched[key] = confidence

        clusters = []
        for component in nx.connected_components(graph):
            records = [table.records[index] for index in sorted(component)]
            clusters.append(EntityCluster.from_records(records))
        clusters.sort(key=lambda c: c.cluster_id)
        return ResolutionResult(
            clusters,
            matched_pairs=matched,
            compared=int(pairs.shape[0]),
            candidate_pairs=int(pairs.shape[0]),
        )

    def _prefilter(
        self, table: Table, comparator: RecordComparator, pairs: np.ndarray
    ) -> np.ndarray:
        """Prune pairs the compiled kernels prove cannot match.

        Runs on the coordinator *before* executor chunking, so the
        surviving pair order — and therefore chunk contents, merge
        order, and the final result — is identical across backends.
        Every survivor is re-decided by the exact scalar path; the
        kernels never decide, only discard the provably hopeless.
        """
        if not self.use_kernels or pairs.shape[0] == 0:
            return pairs
        compiled = compile_comparator(
            comparator, self.rule, table, metrics=self.metrics
        )
        if compiled is None:
            return pairs
        survivors = compiled.survivors(pairs)
        if self.metrics is not None:
            self.metrics.counter("kernels.candidates").increment(
                int(pairs.shape[0])
            )
            self.metrics.counter("kernels.pruned").increment(
                int(pairs.shape[0] - survivors.shape[0])
            )
            self.metrics.counter("kernels.survivors").increment(
                int(survivors.shape[0])
            )
        return survivors

    def _decide(
        self,
        table: Table,
        comparator: RecordComparator,
        pairs: np.ndarray,
        executor: "Executor | None",
    ) -> list[tuple[int, int, tuple[str, str], float | None]]:
        """Compare and decide every candidate pair, fanning out if safe."""
        ordered_pairs = self._prefilter(table, comparator, pairs).tolist()
        if executor is not None and len(ordered_pairs) > 1:
            if executor.gate_process(
                "resolve.compare", comparator.vector, self.rule.decide
            ):
                chunks = executor.chunk(ordered_pairs)
                payloads = []
                for chunk in chunks:
                    needed = sorted({i for pair in chunk for i in pair})
                    payloads.append((
                        comparator,
                        self.rule,
                        {i: table.records[i] for i in needed},
                        chunk,
                    ))
                if executor.ship_or_note("resolve.compare", payloads[0]):
                    executor.note_fan_out("resolve.compare")
                    shards = executor.map(_decide_chunk, payloads)
                    return [m for shard in shards for m in shard]
        records_by_index = dict(enumerate(table.records))
        return _decide_pairs(
            comparator, self.rule, records_by_index, ordered_pairs
        )


def _decide_pairs(
    comparator: RecordComparator,
    rule: _Rule,
    records_by_index: dict[int, Record],
    pairs: Sequence[tuple[int, int]],
) -> list[tuple[int, int, tuple[str, str], float | None]]:
    """The compare/decide kernel: one field vector per pair, not two.

    The pooled similarity is derived from the vector the learned rules
    need anyway (``similarity_from_vector``), so each ``field.compare``
    runs exactly once per candidate pair — this loop is the quadratic
    hot path of the whole pipeline.
    """
    from_vector = getattr(comparator, "similarity_from_vector", None)
    matches: list[tuple[int, int, tuple[str, str], float | None]] = []
    for left_index, right_index in pairs:
        left = records_by_index[left_index]
        right = records_by_index[right_index]
        vector = comparator.vector(left, right)
        if from_vector is not None:
            similarity = from_vector(vector)
        else:  # custom comparator predating similarity_from_vector
            similarity = comparator.similarity(left, right)
        decision = rule.decide(similarity, vector)
        if decision.is_match:
            key = tuple(sorted((left.rid, right.rid)))
            matches.append(
                (left_index, right_index, key, decision.confidence)
            )
    return matches


def _decide_chunk(payload):
    """Worker body for one shipped shard of candidate pairs."""
    comparator, rule, records_by_index, pairs = payload
    return _decide_pairs(comparator, rule, records_by_index, pairs)
