"""Entity resolution: blocking, comparison, learned match rules, clustering."""

from repro.resolution.blocking import (
    as_pair_set,
    full_pairs,
    minhash_lsh,
    pair_array,
    recall_of,
    sorted_neighbourhood,
    token_blocking,
)
from repro.resolution.comparison import (
    FieldComparator,
    RecordComparator,
    default_comparator,
    geo_similarity,
    profiled_comparator,
)
from repro.resolution.er import (
    EntityCluster,
    EntityResolver,
    ResolutionResult,
    stable_cluster_id,
)
from repro.resolution.kernels import CompiledComparator, compile_comparator
from repro.resolution.rules import (
    LearnedRule,
    MatchDecision,
    ThresholdRule,
    fit_threshold,
)

__all__ = [
    "CompiledComparator",
    "EntityCluster",
    "EntityResolver",
    "FieldComparator",
    "LearnedRule",
    "MatchDecision",
    "RecordComparator",
    "ResolutionResult",
    "ThresholdRule",
    "as_pair_set",
    "compile_comparator",
    "default_comparator",
    "profiled_comparator",
    "fit_threshold",
    "full_pairs",
    "geo_similarity",
    "minhash_lsh",
    "pair_array",
    "recall_of",
    "sorted_neighbourhood",
    "stable_cluster_id",
    "token_blocking",
]
