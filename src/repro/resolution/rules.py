"""Match rules: from a fixed threshold to feedback-trained classifiers.

Example 5 asks for crowdsourcing "to identify duplicates, and thereby to
refine the automatically generated rules that determine when two records
represent the same real-world object" (Corleone-style, [20]).  The
:class:`ThresholdRule` is the bootstrap; :class:`LearnedRule` is a tiny
logistic regression over the per-field similarity vector, retrained from
labelled pairs whenever new duplicate/non-duplicate feedback arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ResolutionError

__all__ = ["MatchDecision", "ThresholdRule", "LearnedRule", "fit_threshold"]


@dataclass(frozen=True)
class MatchDecision:
    """A rule's verdict on one candidate pair."""

    is_match: bool
    confidence: float


@dataclass(frozen=True)
class ThresholdRule:
    """Match when the pooled similarity is at or above ``threshold``."""

    threshold: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ResolutionError("threshold must be in [0,1]")

    def decide(self, similarity: float, vector: Sequence[float | None]) -> MatchDecision:
        """Verdict from the pooled similarity (the vector is unused)."""
        is_match = similarity >= self.threshold
        # Confidence grows with distance from the decision boundary.
        margin = abs(similarity - self.threshold)
        return MatchDecision(is_match, min(1.0, 0.5 + margin))


def fit_threshold(
    similarities: Sequence[float], labels: Sequence[bool]
) -> ThresholdRule:
    """The threshold maximising F1 on labelled pairs.

    Candidate thresholds are the observed similarities (plus 0/1 fences);
    ties break toward the higher threshold (precision-friendly).
    """
    if len(similarities) != len(labels):
        raise ResolutionError("similarities and labels must align")
    if not similarities:
        return ThresholdRule()
    candidates = sorted(set(similarities) | {0.0, 1.0}, reverse=True)
    best_threshold, best_f1 = 0.8, -1.0
    positives = sum(1 for label in labels if label)
    for threshold in candidates:
        tp = sum(
            1 for s, label in zip(similarities, labels) if s >= threshold and label
        )
        fp = sum(
            1 for s, label in zip(similarities, labels) if s >= threshold and not label
        )
        if tp + fp == 0 or positives == 0:
            continue
        precision = tp / (tp + fp)
        recall = tp / positives
        if precision + recall == 0:
            continue
        f1 = 2 * precision * recall / (precision + recall)
        if f1 > best_f1:
            best_f1, best_threshold = f1, threshold
    return ThresholdRule(best_threshold)


class LearnedRule:
    """Logistic regression over the per-field similarity vector.

    Missing similarities are imputed with 0.5 plus a per-field missingness
    indicator, so "both records lack the phone number" is information the
    model can use rather than a hole.
    """

    def __init__(self, n_fields: int, learning_rate: float = 0.5, epochs: int = 300) -> None:
        if n_fields <= 0:
            raise ResolutionError("n_fields must be positive")
        self.n_fields = n_fields
        self.learning_rate = learning_rate
        self.epochs = epochs
        # weights over [similarities..., missing-indicators..., bias]
        self.weights = np.zeros(2 * n_fields + 1)
        self.trained = False

    def _features(self, vector: Sequence[float | None]) -> np.ndarray:
        if len(vector) != self.n_fields:
            raise ResolutionError(
                f"expected {self.n_fields} field similarities, got {len(vector)}"
            )
        sims = np.array(
            [0.5 if value is None else float(value) for value in vector]
        )
        missing = np.array([1.0 if value is None else 0.0 for value in vector])
        return np.concatenate([sims, missing, [1.0]])

    def fit(
        self,
        vectors: Sequence[Sequence[float | None]],
        labels: Sequence[bool],
    ) -> "LearnedRule":
        """Train on labelled pairs (full-batch gradient descent)."""
        if len(vectors) != len(labels):
            raise ResolutionError("vectors and labels must align")
        if not vectors:
            return self
        features = np.stack([self._features(v) for v in vectors])
        targets = np.array([1.0 if label else 0.0 for label in labels])
        weights = np.zeros(features.shape[1])
        n = len(targets)
        for __ in range(self.epochs):
            logits = features @ weights
            predictions = 1.0 / (1.0 + np.exp(-logits))
            gradient = features.T @ (predictions - targets) / n
            weights -= self.learning_rate * gradient
        self.weights = weights
        self.trained = True
        return self

    def probability(self, vector: Sequence[float | None]) -> float:
        """P(match) for one candidate pair."""
        logit = float(self._features(vector) @ self.weights)
        return 1.0 / (1.0 + np.exp(-logit))

    def decide(self, similarity: float, vector: Sequence[float | None]) -> MatchDecision:
        """Verdict; falls back to a 0.8 threshold until trained."""
        if not self.trained:
            return ThresholdRule().decide(similarity, vector)
        probability = self.probability(vector)
        return MatchDecision(probability >= 0.5, max(probability, 1 - probability))
