"""Blocking: cheap candidate-pair generation for entity resolution.

Comparing all record pairs is quadratic; blocking keeps ER tractable at
big-data Volume.  Two classic strategies are provided — token blocking and
sorted neighbourhood — both returning candidate index pairs for the
comparator.  Crowd feedback can refine blocking too (Gokhale et al. [20]);
the ER pipeline re-blocks with tightened parameters when feedback shows
recall problems.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ResolutionError
from repro.matching.similarity import token_set
from repro.model.records import Table

__all__ = ["token_blocking", "sorted_neighbourhood", "full_pairs", "recall_of"]


def full_pairs(table: Table) -> set[tuple[int, int]]:
    """All index pairs — the quadratic baseline blocking."""
    n = len(table)
    return {(i, j) for i in range(n) for j in range(i + 1, n)}


def token_blocking(
    table: Table,
    attributes: Sequence[str],
    min_token_length: int = 3,
    max_block_size: int = 50,
) -> set[tuple[int, int]]:
    """Candidate pairs sharing at least one token in a blocking attribute.

    Tokens shorter than ``min_token_length`` are ignored (too common);
    blocks larger than ``max_block_size`` are dropped entirely — an
    oversized block means the token is a stop word for this dataset.
    """
    blocks: dict[str, list[int]] = {}
    for index, record in enumerate(table.records):
        tokens: set[str] = set()
        for attribute in attributes:
            value = record.get(attribute)
            if value.is_missing:
                continue
            tokens |= {
                token
                for token in token_set(str(value.raw))
                if len(token) >= min_token_length
            }
        for token in tokens:
            blocks.setdefault(token, []).append(index)

    pairs: set[tuple[int, int]] = set()
    for members in blocks.values():
        if len(members) > max_block_size:
            continue
        for position, left in enumerate(members):
            for right in members[position + 1:]:
                pairs.add((left, right) if left < right else (right, left))
    return pairs


def sorted_neighbourhood(
    table: Table, attribute: str, window: int = 5
) -> set[tuple[int, int]]:
    """Candidate pairs within a sliding window over the sorted key attribute.

    The candidate set is exactly the pairs at sorted-rank distance below
    ``window``.  The generation loop only pairs each record with the
    ``window - 1`` records *following* it, which looks like trailing
    records get truncated windows — but pairing is symmetric: a trailing
    record already met every earlier neighbour as that neighbour's
    right-hand partner, so every record (first and last included) gets
    ``min(window - 1, len(table) - 1)``-bounded partners on each side and
    no rank-adjacent pair is ever dropped.  ``window >= len(table)``
    therefore degenerates to :func:`full_pairs`.

    Records missing the key are appended at the end in stable input
    order (they still meet their window neighbours, so a missing key
    does not exempt a record from ER).

    ``window < 2`` is refused: a window that cannot hold two records
    generates no candidates at all, which is a configuration defect, not
    a blocking strategy.
    """
    if window < 2:
        raise ResolutionError(
            f"sorted_neighbourhood window must be at least 2, got {window}: "
            "a smaller window generates no candidate pairs"
        )
    keyed = sorted(
        range(len(table)),
        key=lambda index: (
            table.records[index].get(attribute).is_missing,
            str(table.records[index].raw(attribute) or "").lower(),
        ),
    )
    pairs: set[tuple[int, int]] = set()
    for position, left in enumerate(keyed):
        for offset in range(1, window):
            if position + offset >= len(keyed):
                break
            right = keyed[position + offset]
            pairs.add((left, right) if left < right else (right, left))
    return pairs


def recall_of(
    pairs: Iterable[tuple[int, int]], true_pairs: Iterable[tuple[int, int]]
) -> float:
    """Fraction of true matching pairs surviving blocking (for evaluation)."""
    true_set = set(true_pairs)
    if not true_set:
        return 1.0
    return len(true_set & set(pairs)) / len(true_set)
