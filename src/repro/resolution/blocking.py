"""Blocking: cheap candidate-pair generation for entity resolution.

Comparing all record pairs is quadratic; blocking keeps ER tractable at
big-data Volume.  Three classic strategies are provided — token blocking,
sorted neighbourhood, and MinHash-LSH — all returning **sorted candidate
index arrays** for the comparator: a ``(n, 2)`` ``numpy`` array with
``pairs[:, 0] < pairs[:, 1]``, rows unique and lexicographically sorted.
The array form replaces the old ``set[tuple[int, int]]`` representation:
at a million candidate pairs a Python pair-set costs hundreds of bytes
per pair in tuple/set overhead, while the array costs 16 — and the
vectorised comparison kernels (:mod:`repro.resolution.kernels`) score it
without ever materialising per-pair objects.  Crowd feedback can refine
blocking too (Gokhale et al. [20]); the ER pipeline re-blocks with
tightened parameters when feedback shows recall problems.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ResolutionError
from repro.matching.similarity import token_set
from repro.model.records import Table

if TYPE_CHECKING:  # typing only: blocking never requires a live registry
    from repro.obs import MetricsRegistry

__all__ = [
    "as_pair_set",
    "full_pairs",
    "minhash_lsh",
    "pair_array",
    "recall_of",
    "sorted_neighbourhood",
    "token_blocking",
]

#: The empty candidate set, shaped so callers can index unconditionally.
_EMPTY_PAIRS = np.empty((0, 2), dtype=np.intp)


def pair_array(pairs: object) -> np.ndarray:
    """Normalise candidate pairs to the canonical sorted array form.

    Accepts an ``(n, 2)`` array, any iterable of index pairs, or a legacy
    ``set[tuple[int, int]]`` (custom blockers predating the array form).
    Rows come back oriented ``(low, high)``, deduplicated, and
    lexicographically sorted — the canonical order the resolver's chunked
    fan-out and the kernels both rely on.  Self-pairs ``(i, i)`` are
    dropped: a record is trivially its own entity, never a candidate.
    """
    if isinstance(pairs, np.ndarray):
        array = pairs
    else:
        array = np.asarray(sorted(pairs) if isinstance(pairs, (set, frozenset))
                           else list(pairs), dtype=np.intp)
    if array.size == 0:
        return _EMPTY_PAIRS
    array = array.reshape(-1, 2).astype(np.intp, copy=False)
    low = np.minimum(array[:, 0], array[:, 1])
    high = np.maximum(array[:, 0], array[:, 1])
    oriented = np.column_stack((low, high))
    oriented = oriented[low != high]
    if oriented.shape[0] == 0:
        return _EMPTY_PAIRS
    return np.unique(oriented, axis=0)


def as_pair_set(pairs: object) -> set[tuple[int, int]]:
    """The ``set[tuple[int, int]]`` view of a candidate-pair array.

    The interop shim for callers that still want set algebra (recall
    evaluation, tests); the hot path never expands the array.
    """
    if isinstance(pairs, np.ndarray):
        return {(int(i), int(j)) for i, j in pairs}
    return {(int(i), int(j)) for i, j in pairs}


def full_pairs(table: Table) -> np.ndarray:
    """All index pairs — the quadratic baseline blocking."""
    n = len(table)
    if n < 2:
        return _EMPTY_PAIRS
    left, right = np.triu_indices(n, k=1)
    return np.column_stack((left, right)).astype(np.intp, copy=False)


def _pairs_within(members: np.ndarray) -> np.ndarray:
    """All index pairs inside one block (members need not be sorted)."""
    m = members.shape[0]
    if m < 2:
        return _EMPTY_PAIRS
    i, j = np.triu_indices(m, k=1)
    return np.column_stack((members[i], members[j]))


def _emit_dropped(
    metrics: "MetricsRegistry | None", blocks: int, members: int
) -> None:
    """Record silently-discarded candidates where telemetry can see them.

    CC003's static "degenerate blocking" finding has a runtime
    counterpart here: a block dropped for being oversized is recall
    traded away, and a run that sheds thousands of members should say so
    in its snapshot rather than quietly return fewer duplicates.
    """
    if metrics is None or blocks == 0:
        return
    metrics.counter("blocking.dropped_blocks").increment(blocks)
    metrics.counter("blocking.dropped_members").increment(members)


def token_blocking(
    table: Table,
    attributes: Sequence[str],
    min_token_length: int = 3,
    max_block_size: int = 50,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Candidate pairs sharing at least one token in a blocking attribute.

    Tokens shorter than ``min_token_length`` are ignored (too common);
    blocks larger than ``max_block_size`` are dropped entirely — an
    oversized block means the token is a stop word for this dataset.
    Dropped blocks are counted on ``metrics`` (``blocking.dropped_blocks``
    / ``blocking.dropped_members``) so the recall loss is observable.
    """
    blocks: dict[str, list[int]] = {}
    for index, record in enumerate(table.records):
        tokens: set[str] = set()
        for attribute in attributes:
            value = record.get(attribute)
            if value.is_missing:
                continue
            tokens |= {
                token
                for token in token_set(str(value.raw))
                if len(token) >= min_token_length
            }
        for token in tokens:
            blocks.setdefault(token, []).append(index)

    chunks: list[np.ndarray] = []
    dropped_blocks = 0
    dropped_members = 0
    for members in blocks.values():
        if len(members) > max_block_size:
            dropped_blocks += 1
            dropped_members += len(members)
            continue
        chunks.append(_pairs_within(np.asarray(members, dtype=np.intp)))
    _emit_dropped(metrics, dropped_blocks, dropped_members)
    if not chunks:
        return _EMPTY_PAIRS
    return pair_array(np.concatenate(chunks))


def sorted_neighbourhood(
    table: Table, attribute: str, window: int = 5
) -> np.ndarray:
    """Candidate pairs within a sliding window over the sorted key attribute.

    The candidate set is exactly the pairs at sorted-rank distance below
    ``window``.  The generation loop only pairs each record with the
    ``window - 1`` records *following* it, which looks like trailing
    records get truncated windows — but pairing is symmetric: a trailing
    record already met every earlier neighbour as that neighbour's
    right-hand partner, so every record (first and last included) gets
    ``min(window - 1, len(table) - 1)``-bounded partners on each side and
    no rank-adjacent pair is ever dropped.  ``window >= len(table)``
    therefore degenerates to :func:`full_pairs`.

    Records missing the key are appended at the end in stable input
    order (they still meet their window neighbours, so a missing key
    does not exempt a record from ER).

    Sort keys are computed **once per record** (decorate-sort-undecorate)
    rather than inside the comparison callback: Python's sort invokes the
    key function once per element either way, but the old lambda paid a
    ``records[index]`` load, a cell lookup, *and* a raw extraction per
    call on the hot path — precomputing keeps the sort touching plain
    tuples only, with identical ordering (timsort is stable over the same
    keys).

    ``window < 2`` is refused: a window that cannot hold two records
    generates no candidates at all, which is a configuration defect, not
    a blocking strategy.
    """
    if window < 2:
        raise ResolutionError(
            f"sorted_neighbourhood window must be at least 2, got {window}: "
            "a smaller window generates no candidate pairs"
        )
    keys = [
        (
            record.get(attribute).is_missing,
            str(record.raw(attribute) or "").lower(),
        )
        for record in table.records
    ]
    keyed = np.asarray(
        sorted(range(len(table)), key=keys.__getitem__), dtype=np.intp
    )
    if keyed.shape[0] < 2:
        return _EMPTY_PAIRS
    chunks = [
        np.column_stack((keyed[:-offset], keyed[offset:]))
        for offset in range(1, min(window, keyed.shape[0]))
    ]
    return pair_array(np.concatenate(chunks))


#: Modulus for the affine MinHash permutations: arithmetic is done in
#: uint64 with natural wrap-around (multiply-shift universal hashing),
#: so any odd multiplier mixes all 64 bits.
_UINT64 = np.uint64


def _token_ids(
    table: Table,
    attributes: Sequence[str],
    min_token_length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-record token hashes as (flat ids, CSR-style indptr).

    Tokens are drawn exactly as in :func:`token_blocking` and hashed to
    stable 64-bit ids with blake2b — deterministic across processes and
    platforms, unlike the salted builtin ``hash``.
    """
    flat: list[int] = []
    indptr = np.zeros(len(table) + 1, dtype=np.intp)
    for index, record in enumerate(table.records):
        tokens: set[str] = set()
        for attribute in attributes:
            value = record.get(attribute)
            if value.is_missing:
                continue
            tokens |= {
                token
                for token in token_set(str(value.raw))
                if len(token) >= min_token_length
            }
        for token in sorted(tokens):
            digest = hashlib.blake2b(
                token.encode("utf-8"), digest_size=8
            ).digest()
            flat.append(int.from_bytes(digest, "big"))
        indptr[index + 1] = len(flat)
    return np.asarray(flat, dtype=_UINT64), indptr


def minhash_lsh(
    table: Table,
    attributes: Sequence[str],
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 2016,
    min_token_length: int = 3,
    max_bucket_size: int | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Candidate pairs whose token sets likely exceed Jaccard similarity.

    Classic MinHash-LSH: each record's blocking tokens are hashed through
    ``num_perm`` seeded affine permutations; the signature is split into
    ``bands`` bands of ``num_perm // bands`` rows, and two records become
    candidates when *any* band collides exactly.  With ``r`` rows per
    band the collision probability of a pair at Jaccard similarity ``s``
    is ``1 - (1 - s^r)^bands`` — the familiar S-curve, steep around
    ``(1/bands)^(1/r)``.  The defaults (64 permutations, 16 bands of 4)
    centre the curve near ``s ≈ 0.5``: real duplicates (token overlap
    well above a half) are near-certain candidates while unrelated
    records almost never collide — and candidate count stays ~linear in
    rows where :func:`full_pairs` is quadratic.

    Determinism: permutations derive from ``seed`` alone (via
    ``random.Random``), token ids from blake2b — the output array is
    byte-identical across runs, processes, and platforms for the same
    inputs.  Records with *no* blocking tokens generate no candidates
    (there is no evidence to bucket them on); pass a larger attribute
    list rather than relying on empty signatures colliding.

    ``max_bucket_size`` optionally drops oversized buckets (a degenerate
    band — e.g. every record sharing one boilerplate token) with the
    same ``blocking.dropped_*`` accounting as :func:`token_blocking`.
    """
    if num_perm < 1:
        raise ResolutionError(f"num_perm must be positive, got {num_perm}")
    if bands < 1 or bands > num_perm:
        raise ResolutionError(
            f"bands must be in [1, num_perm], got {bands} of {num_perm}"
        )
    if num_perm % bands:
        raise ResolutionError(
            f"bands ({bands}) must divide num_perm ({num_perm}) so every "
            "band gets the same number of signature rows"
        )
    flat, indptr = _token_ids(table, attributes, min_token_length)
    counts = np.diff(indptr)
    populated = np.flatnonzero(counts > 0)
    if populated.shape[0] < 2:
        return _EMPTY_PAIRS

    rng = random.Random(seed)
    # Odd multipliers + arbitrary offsets: multiply-shift hashing over
    # the full uint64 ring, drawn deterministically from the seed.
    a = np.asarray(
        [rng.randrange(1, 2**64, 2) for __ in range(num_perm)], dtype=_UINT64
    )
    b = np.asarray(
        [rng.randrange(0, 2**64) for __ in range(num_perm)], dtype=_UINT64
    )
    # hashed[t, p] = a[p] * token[t] + b[p]  (mod 2^64, wrap-around).
    with np.errstate(over="ignore"):
        hashed = flat[:, None] * a[None, :] + b[None, :]
    # Per-record minimum over each record's token slice.  reduceat needs
    # non-empty slices, so reduce only the populated rows.
    starts = indptr[populated]
    signatures = np.minimum.reduceat(hashed, starts, axis=0)
    # reduceat reduces from each start to the next start — the final
    # slice runs to the end of `hashed`, which is exactly the last
    # populated record's token span because empty records contribute no
    # tokens after it.

    rows_per_band = num_perm // bands
    chunks: list[np.ndarray] = []
    dropped_blocks = 0
    dropped_members = 0
    for band in range(bands):
        view = signatures[:, band * rows_per_band:(band + 1) * rows_per_band]
        __, inverse, bucket_sizes = np.unique(
            view, axis=0, return_inverse=True, return_counts=True
        )
        order = np.argsort(inverse, kind="stable")
        boundaries = np.cumsum(bucket_sizes)[:-1]
        for members in np.split(populated[order], boundaries):
            if members.shape[0] < 2:
                continue
            if (
                max_bucket_size is not None
                and members.shape[0] > max_bucket_size
            ):
                dropped_blocks += 1
                dropped_members += members.shape[0]
                continue
            chunks.append(_pairs_within(members))
    _emit_dropped(metrics, dropped_blocks, dropped_members)
    if not chunks:
        return _EMPTY_PAIRS
    return pair_array(np.concatenate(chunks))


def recall_of(
    pairs: Iterable[tuple[int, int]] | np.ndarray,
    true_pairs: Iterable[tuple[int, int]] | np.ndarray,
) -> float:
    """Fraction of true matching pairs surviving blocking (for evaluation)."""
    true_set = as_pair_set(true_pairs)
    if not true_set:
        return 1.0
    return len(true_set & as_pair_set(pairs)) / len(true_set)
