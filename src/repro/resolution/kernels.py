"""Vectorised comparison kernels: a sound prefilter for the ER hot path.

The scalar compare/decide loop (:func:`repro.resolution.er._decide_pairs`)
is the quadratic wall of the pipeline: every candidate pair re-runs
pure-Python per-field measures.  This module compiles a
:class:`RecordComparator` + :class:`ThresholdRule` against one table into
columnar numpy/scipy kernels that score whole candidate-pair arrays in
batch — but it never *decides* anything.  The kernels compute a provable
**upper bound** on the pooled similarity of each pair; pairs whose bound
falls short of the rule's threshold (minus a small float-safety margin)
cannot match under the exact scalar arithmetic and are pruned, and every
surviving pair is re-decided by the unchanged scalar path.  Decisions —
matched pairs, confidences, cluster ids — are therefore **bit-identical**
to the scalar loop by construction, whatever the kernels do.

Per-measure bounds (each ``>=`` the scalar measure wherever both sides
are present; missing fields are masked out of the pool exactly as
``similarity_from_vector`` does):

========================  ====================================================
measure                   upper bound
========================  ====================================================
``jaccard`` / ``dice``    exact, via a vocabulary-interned CSR binary token
                          matrix built once per table — sparse row products
                          count intersections for the whole pair batch
``exact``                 exact, via interned lower-cased value codes
``numeric``               exact array arithmetic (NaN-poisoned operands
                          score 0.0, matching the scalar ``max(0.0, nan)``)
``geo``                   ``exp(-hypot/scale)`` off coordinates parsed once
                          per record (numpy/libm ULP drift is absorbed by
                          the prune margin)
``jaro``                  matches ``m <= min(|a|,|b|)``, transpositions
                          ``>= 0``: ``jaro <= (min/|a| + min/|b| + 1)/3``;
                          Winkler boost bounded by the max prefix (4):
                          ``jw <= 0.6*jaro_ub + 0.4``
``levenshtein``           distance ``>= |len(a)-len(b)|``, so similarity
                          ``<= 1 - |len(a)-len(b)|/max(len)``
``tokens`` (Monge–Elkan)  digit-bearing tokens score 1.0 iff exactly equal
``tokens_strict``         (the measure's code rule), so the directed bound
                          is ``(matched digit tokens + non-digit tokens if
                          the other side has any)/|tokens|``, counted with
                          multiplicity via a digit-token CSR matrix off the
                          memoised ``_name_tokens``
========================  ====================================================

Compilation is conservative: anything but a plain ``ThresholdRule`` over a
plain ``RecordComparator`` of plain ``FieldComparator`` fields (a learned
rule, a subclass overriding ``decide``/``compare``, a measure this table
of bounds does not know) makes :func:`compile_comparator` return ``None``
and the resolver runs the scalar loop for every pair, exactly as before.

The scoring methods mutate nothing — no caches, no globals, no self
state — so they certify ROW_LOCAL under the PX analyser
(:mod:`repro.analysis.parallel`); the resolver runs the prefilter on the
coordinator *before* executor chunking, which keeps kernel metrics and
surviving-pair order identical across sequential and process-parallel
backends.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.matching.similarity import _name_tokens, token_set
from repro.model.records import Table
from repro.resolution.comparison import (
    GEO_SCALE_DEGREES,
    FieldComparator,
    RecordComparator,
    _is_number,
    parse_point,
)
from repro.resolution.rules import ThresholdRule

try:  # scipy ships with the toolchain, but the kernels must degrade, not die
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

__all__ = [
    "PRUNE_MARGIN",
    "CompiledComparator",
    "compile_comparator",
]

#: Subtracted from the threshold before pruning: the bounds for ``geo``
#: are computed with numpy's libm whose last-ulp rounding can differ from
#: ``math``'s, and pooled ratios accumulate a few ulps of their own.
#: 1e-7 is ~1e9 ulps at similarity scale — astronomically wider than any
#: drift — while thresholds meaningfully distinct from it stay distinct.
PRUNE_MARGIN = 1e-7

#: Pair-batch size for scoring: bounds the transient sparse row products
#: (a batch of 65536 pairs holds two CSR slices + a dozen float64
#: columns, a few MB) so candidate arrays of millions of pairs stream
#: through flat memory.
_BATCH = 1 << 16


def _token_matrix(token_sets: Sequence[Counter | frozenset]):
    """CSR incidence matrix over the interned vocabulary of ``token_sets``.

    Counters contribute their multiplicities, frozensets binary rows.
    """
    vocabulary: dict[str, int] = {}
    rows: list[int] = []
    cols: list[int] = []
    data: list[int] = []
    for row, tokens in enumerate(token_sets):
        items = (
            tokens.items()
            if isinstance(tokens, Counter)
            else ((token, 1) for token in sorted(tokens))
        )
        for token, count in items:
            column = vocabulary.setdefault(token, len(vocabulary))
            rows.append(row)
            cols.append(column)
            data.append(count)
    return _sparse.csr_matrix(
        (data, (rows, cols)),
        shape=(len(token_sets), len(vocabulary)),
        dtype=np.float64,
    )


def _row_products(matrix_a, matrix_b, lefts, rights) -> np.ndarray:
    """``sum_k A[l,k] * B[r,k]`` for each pair — sparse intersection counts."""
    products = matrix_a[lefts].multiply(matrix_b[rights]).sum(axis=1)
    return np.asarray(products).ravel()


class _TokenSetKernel:
    """Exact Jaccard / Dice over the binary token incidence matrix."""

    def __init__(self, matrix, counts: np.ndarray, mode: str) -> None:
        self.matrix = matrix
        self.counts = counts
        self.mode = mode

    def upper(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        intersection = _row_products(self.matrix, self.matrix, lefts, rights)
        count_l = self.counts[lefts]
        count_r = self.counts[rights]
        if self.mode == "dice":
            denominator = count_l + count_r
            scores = 2.0 * intersection
        else:
            denominator = count_l + count_r - intersection
            scores = intersection
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = scores / denominator
        # Empty denominator means both token sets are empty: the scalar
        # measures define that as 1.0 (no evidence of difference).
        return np.where(denominator == 0.0, 1.0, ratio)


class _NameTokenKernel:
    """Monge–Elkan upper bound off the memoised name tokenisation.

    ``token_sim`` scores a digit-bearing token 1.0 iff it is exactly
    equal to its partner and 0.0 against everything else, so the digit
    part of the directed score is *exact* (matched digit occurrences);
    non-digit tokens are bounded by 1.0 whenever the other side has any
    non-digit token to align with, 0.0 otherwise.
    """

    def __init__(
        self,
        totals: np.ndarray,
        nondigit: np.ndarray,
        digit_counts,
        digit_binary,
        strict: bool,
    ) -> None:
        self.totals = totals
        self.nondigit = nondigit
        self.digit_counts = digit_counts
        self.digit_binary = digit_binary
        self.strict = strict

    def upper(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        matched_lr = _row_products(
            self.digit_counts, self.digit_binary, lefts, rights
        )
        matched_rl = _row_products(
            self.digit_counts, self.digit_binary, rights, lefts
        )
        total_l = self.totals[lefts]
        total_r = self.totals[rights]
        nondigit_l = self.nondigit[lefts]
        nondigit_r = self.nondigit[rights]
        forward = (
            matched_lr + nondigit_l * (nondigit_r > 0.0)
        ) / np.maximum(total_l, 1.0)
        backward = (
            matched_rl + nondigit_r * (nondigit_l > 0.0)
        ) / np.maximum(total_r, 1.0)
        combined = (
            np.minimum(forward, backward)
            if self.strict
            else (forward + backward) / 2.0
        )
        both_empty = (total_l == 0.0) & (total_r == 0.0)
        either_empty = (total_l == 0.0) | (total_r == 0.0)
        return np.where(
            both_empty, 1.0, np.where(either_empty, 0.0, combined)
        )


class _EditKernel:
    """Length-derived bounds for Jaro–Winkler and Levenshtein."""

    def __init__(self, lengths: np.ndarray, winkler: bool) -> None:
        self.lengths = lengths
        self.winkler = winkler

    def upper(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        length_l = self.lengths[lefts]
        length_r = self.lengths[rights]
        longest = np.maximum(length_l, length_r)
        shortest = np.minimum(length_l, length_r)
        safe_longest = np.maximum(longest, 1.0)
        if not self.winkler:
            bound = 1.0 - (longest - shortest) / safe_longest
            return np.where(longest == 0.0, 1.0, bound)
        jaro_bound = (
            shortest / np.maximum(length_l, 1.0)
            + shortest / np.maximum(length_r, 1.0)
            + 1.0
        ) / 3.0
        winkler_bound = 0.6 * jaro_bound + 0.4
        # One empty side: no matches are possible and the prefix boost is
        # zero, so the true score is exactly 0; both empty compare equal.
        return np.where(
            longest == 0.0,
            1.0,
            np.where(shortest == 0.0, 0.0, winkler_bound),
        )


class _NumericKernel:
    """Exact relative-closeness scores over pre-parsed floats."""

    def __init__(self, values: np.ndarray, nonnumeric: np.ndarray) -> None:
        self.values = values
        self.nonnumeric = nonnumeric

    def upper(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        value_l = self.values[lefts]
        value_r = self.values[rights]
        denominator = np.maximum(np.abs(value_l), np.abs(value_r))
        with np.errstate(invalid="ignore", divide="ignore"):
            closeness = 1.0 - np.abs(value_l - value_r) / denominator
        # The scalar path's ``max(0.0, nan)`` evaluates to 0.0 (NaN never
        # compares greater), while ``np.maximum`` would propagate the NaN
        # and poison the pooled bound — clamp NaN explicitly.
        clamped = np.where(
            np.isnan(closeness), 0.0, np.maximum(closeness, 0.0)
        )
        scores = np.where(value_l == value_r, 1.0, clamped)
        bad = self.nonnumeric[lefts] | self.nonnumeric[rights]
        return np.where(bad, 0.0, scores)


class _GeoKernel:
    """Distance decay over coordinates parsed once per record."""

    def __init__(self, lat: np.ndarray, lon: np.ndarray) -> None:
        self.lat = lat
        self.lon = lon

    def upper(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        lat_l = self.lat[lefts]
        lat_r = self.lat[rights]
        parsed = ~(np.isnan(lat_l) | np.isnan(lat_r))
        distance = np.hypot(
            lat_l - lat_r, self.lon[lefts] - self.lon[rights]
        )
        with np.errstate(invalid="ignore"):
            decay = np.exp(-distance / GEO_SCALE_DEGREES)
        return np.where(parsed, decay, 0.0)


class _ExactKernel:
    """Equality of interned lower-cased value codes."""

    def __init__(self, codes: np.ndarray) -> None:
        self.codes = codes

    def upper(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        return (self.codes[lefts] == self.codes[rights]).astype(np.float64)


class _FieldKernel:
    """One compiled field: measure kernel + weight + missingness mask."""

    def __init__(self, kernel, weight: float, missing: np.ndarray) -> None:
        self.kernel = kernel
        self.weight = weight
        self.missing = missing

    def contribution(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(weighted bound, weight) per pair, zero where incomparable.

        Mirrors ``similarity_from_vector``: a missing side removes the
        field from both the numerator and the weight sum.
        """
        comparable = ~(self.missing[lefts] | self.missing[rights])
        bound = self.kernel.upper(lefts, rights)
        return (
            np.where(comparable, self.weight * bound, 0.0),
            np.where(comparable, self.weight, 0.0),
        )


class CompiledComparator:
    """A comparator + threshold rule compiled against one table.

    :meth:`survivors` is the only method the resolver needs: the subset
    of a candidate-pair array whose pooled upper bound clears the
    threshold (minus :data:`PRUNE_MARGIN`).  Everything pruned is
    *provably* a non-match under the exact scalar arithmetic.
    """

    def __init__(
        self, fields: Sequence[_FieldKernel], threshold: float
    ) -> None:
        self.fields = tuple(fields)
        self.cutoff = threshold - PRUNE_MARGIN

    def upper_bounds(self, pairs: np.ndarray) -> np.ndarray:
        """Pooled similarity upper bound for each candidate pair."""
        lefts = pairs[:, 0]
        rights = pairs[:, 1]
        parts = [
            field.contribution(lefts, rights) for field in self.fields
        ]
        numerator = np.sum([part[0] for part in parts], axis=0)
        weight_sum = np.sum([part[1] for part in parts], axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            pooled = numerator / weight_sum
        # No comparable field: similarity_from_vector scores the pair 0.
        return np.where(weight_sum == 0.0, 0.0, pooled)

    def survivors(self, pairs: np.ndarray) -> np.ndarray:
        """The pairs the exact scalar path could still decide as matches."""
        if pairs.shape[0] == 0:
            return pairs
        masks = [
            self.upper_bounds(pairs[start:start + _BATCH]) >= self.cutoff
            for start in range(0, pairs.shape[0], _BATCH)
        ]
        return pairs[np.concatenate(masks)]


def _column(table: Table, attribute: str) -> tuple[list, np.ndarray]:
    """(raw values, missing mask) for one attribute, missing → ``None``."""
    raws: list = []
    flags: list[bool] = []
    for record in table.records:
        value = record.get(attribute)
        flags.append(value.is_missing)
        raws.append(None if value.is_missing else value.raw)
    return raws, np.asarray(flags, dtype=bool)


def _compile_field(field: FieldComparator, table: Table):
    """The measure kernel + missing mask for one field, or ``None``."""
    raws, missing = _column(table, field.attribute)
    measure = field.measure

    if measure in ("jaccard", "dice"):
        sets = [
            token_set(str(raw)) if raw is not None else frozenset()
            for raw in raws
        ]
        counts = np.asarray([len(s) for s in sets], dtype=np.float64)
        return _TokenSetKernel(_token_matrix(sets), counts, measure), missing

    if measure in ("tokens", "tokens_strict"):
        token_lists = [
            _name_tokens(str(raw)) if raw is not None else ()
            for raw in raws
        ]
        digit_counters = [
            Counter(
                token
                for token in tokens
                if any(c.isdigit() for c in token)
            )
            for tokens in token_lists
        ]
        totals = np.asarray(
            [len(tokens) for tokens in token_lists], dtype=np.float64
        )
        digit_totals = np.asarray(
            [sum(counter.values()) for counter in digit_counters],
            dtype=np.float64,
        )
        counts_matrix = _token_matrix(digit_counters)
        binary_matrix = counts_matrix.sign()
        return _NameTokenKernel(
            totals,
            totals - digit_totals,
            counts_matrix,
            binary_matrix,
            strict=measure == "tokens_strict",
        ), missing

    if measure in ("jaro", "levenshtein"):
        lengths = np.asarray(
            [
                len(str(raw).lower()) if raw is not None else 0
                for raw in raws
            ],
            dtype=np.float64,
        )
        return _EditKernel(lengths, winkler=measure == "jaro"), missing

    if measure == "numeric":
        values = np.full(len(raws), np.nan, dtype=np.float64)
        nonnumeric = np.zeros(len(raws), dtype=bool)
        for index, raw in enumerate(raws):
            if raw is None:
                continue
            if _is_number(raw):
                values[index] = float(raw)
            else:
                nonnumeric[index] = True
        return _NumericKernel(values, nonnumeric), missing

    if measure == "geo":
        lat = np.full(len(raws), np.nan, dtype=np.float64)
        lon = np.full(len(raws), np.nan, dtype=np.float64)
        for index, raw in enumerate(raws):
            if raw is None:
                continue
            point = parse_point(raw)
            if point is not None:
                lat[index], lon[index] = point
        return _GeoKernel(lat, lon), missing

    if measure == "exact":
        interned: dict[str, int] = {}
        codes = np.full(len(raws), -1, dtype=np.int64)
        for index, raw in enumerate(raws):
            if raw is None:
                continue
            text = str(raw).lower()
            codes[index] = interned.setdefault(text, len(interned))
        return _ExactKernel(codes), missing

    return None  # a measure this table of bounds does not know


def compile_comparator(
    comparator: object,
    rule: object,
    table: Table,
    metrics: "MetricsRegistry | None" = None,
) -> CompiledComparator | None:
    """Compile ``comparator`` + ``rule`` against ``table``, if eligible.

    Eligibility is deliberately exact-type: a subclass overriding
    ``decide``, ``vector``, or ``compare`` voids the bound proofs, so
    anything but the plain classes falls back to the scalar loop
    (returning ``None``).  Ineligibility is counted on ``metrics``
    (``kernels.fallback``) so a silently-scalar resolver is visible in
    telemetry.
    """
    eligible = (
        _sparse is not None
        and type(rule) is ThresholdRule
        and type(comparator) is RecordComparator
        and all(type(field) is FieldComparator for field in comparator.fields)
    )
    compiled_fields: list[_FieldKernel] = []
    if eligible:
        for field in comparator.fields:
            compiled = _compile_field(field, table)
            if compiled is None:
                eligible = False
                break
            kernel, missing = compiled
            compiled_fields.append(
                _FieldKernel(kernel, field.weight, missing)
            )
    if not eligible:
        if metrics is not None:
            metrics.counter("kernels.fallback").increment()
        return None
    return CompiledComparator(compiled_fields, rule.threshold)
