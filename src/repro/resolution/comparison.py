"""Record-pair comparison: per-field measures pooled into one similarity."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ResolutionError
from repro.matching.similarity import (
    dice,
    jaccard,
    jaro_winkler,
    levenshtein_similarity,
    monge_elkan,
    numeric_similarity,
    token_set,
)
from repro.model.records import Record
from repro.model.schema import DataType, Schema

__all__ = [
    "FieldComparator",
    "RecordComparator",
    "GEO_SCALE_DEGREES",
    "MEASURE_DOMAINS",
    "TRANSIENT_DTYPES",
    "default_comparator",
    "profiled_comparator",
    "geo_similarity",
    "parse_point",
]

#: Decay length of the geo measure: 0.05° is ~5 km — city-block
#: resolution.  Shared with the vectorised kernels so both paths score
#: the identical curve.
GEO_SCALE_DEGREES = 0.05


def parse_point(value: object) -> tuple[float, float] | None:
    """``(lat, lon)`` from a coordinate tuple or ``"lat, lon"`` string.

    ``None`` when the value is not a coordinate; shared by
    :func:`geo_similarity` and the vectorised kernels so both paths
    agree on what parses.
    """
    if isinstance(value, tuple) and len(value) == 2:
        return (float(value[0]), float(value[1]))
    try:
        lat_text, lon_text = str(value).split(",")
        return (float(lat_text), float(lon_text))
    except (ValueError, AttributeError):
        return None


def geo_similarity(
    a: object, b: object, scale_degrees: float = GEO_SCALE_DEGREES
) -> float:
    """Closeness of two coordinate pairs, decaying over ``scale_degrees``.

    Accepts ``(lat, lon)`` tuples or ``"lat, lon"`` strings; 1.0 at zero
    distance, ~0.37 at one scale length, → 0 beyond.
    """
    point_a, point_b = parse_point(a), parse_point(b)
    if point_a is None or point_b is None:
        return 0.0
    distance = math.hypot(point_a[0] - point_b[0], point_a[1] - point_b[1])
    return math.exp(-distance / scale_degrees)


_MEASURES: dict[str, Callable[[object, object], float]] = {
    "jaro": lambda a, b: jaro_winkler(str(a).lower(), str(b).lower()),
    "levenshtein": lambda a, b: levenshtein_similarity(
        str(a).lower(), str(b).lower()
    ),
    "jaccard": lambda a, b: jaccard(token_set(str(a)), token_set(str(b))),
    "dice": lambda a, b: dice(token_set(str(a)), token_set(str(b))),
    "tokens": lambda a, b: monge_elkan(str(a), str(b)),
    "tokens_strict": lambda a, b: monge_elkan(str(a), str(b), combine="min"),
    "numeric": lambda a, b: (
        numeric_similarity(float(a), float(b))
        if _is_number(a) and _is_number(b)
        else 0.0
    ),
    "geo": geo_similarity,
    "exact": lambda a, b: 1.0 if str(a).lower() == str(b).lower() else 0.0,
}


def _is_number(value: object) -> bool:
    try:
        float(str(value))
        return True
    except (TypeError, ValueError):
        return False


#: The DataTypes each measure is meaningful on (``None`` = any type: the
#: string measures stringify their operands).  The static type checker
#: flags comparators whose measure cannot interpret the attribute's type —
#: ``numeric`` on a GEO column silently scores 0.0 at runtime, which is a
#: configuration defect, not evidence.
MEASURE_DOMAINS: dict[str, frozenset[DataType] | None] = {
    "jaro": None,
    "levenshtein": None,
    "jaccard": None,
    "dice": None,
    "tokens": None,
    "tokens_strict": None,
    "exact": None,
    "numeric": frozenset(
        {DataType.INTEGER, DataType.FLOAT, DataType.CURRENCY}
    ),
    "geo": frozenset({DataType.GEO, DataType.STRING}),
}

#: Attribute types excluded from identity comparison: a URL names the
#: offer at one source, a DATE the observation, a CURRENCY amount the
#: measurement — the paper's "highly transient information" (Section 3.1).
TRANSIENT_DTYPES = frozenset(
    {DataType.URL, DataType.DATE, DataType.CURRENCY}
)


@dataclass(frozen=True)
class FieldComparator:
    """How to compare one attribute across a record pair."""

    attribute: str
    measure: str = "jaro"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.measure not in _MEASURES:
            raise ResolutionError(
                f"unknown measure {self.measure!r}; "
                f"known: {sorted(_MEASURES)}"
            )
        if self.weight < 0:
            raise ResolutionError("comparator weight must be non-negative")

    def compare(self, left: Record, right: Record) -> float | None:
        """Similarity of the attribute across the pair, or ``None`` when
        either side is missing (missing data is no evidence either way)."""
        value_left = left.get(self.attribute)
        value_right = right.get(self.attribute)
        if value_left.is_missing or value_right.is_missing:
            return None
        return _MEASURES[self.measure](value_left.raw, value_right.raw)


@dataclass(frozen=True)
class RecordComparator:
    """A weighted bundle of field comparators.

    ``similarity`` is the weighted mean over comparable fields; pairs with
    no comparable field score 0 (nothing supports a match).  ``vector``
    exposes the raw per-field similarities for the learned match rules.
    """

    fields: tuple[FieldComparator, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ResolutionError("record comparator needs at least one field")

    def vector(self, left: Record, right: Record) -> list[float | None]:
        """Per-field similarities (``None`` where incomparable)."""
        return [field.compare(left, right) for field in self.fields]

    def similarity(self, left: Record, right: Record) -> float:
        """Weighted mean similarity over comparable fields."""
        return self.similarity_from_vector(self.vector(left, right))

    def similarity_from_vector(
        self, vector: Sequence[float | None]
    ) -> float:
        """The weighted mean the already-computed ``vector`` pools to.

        The resolver needs both the vector (for learned rules) and the
        pooled similarity (for threshold rules) per candidate pair;
        computing them independently ran every ``field.compare`` twice on
        the quadratic hot path.  Same arithmetic, same accumulation
        order as :meth:`similarity` — bit-identical results.
        """
        total = 0.0
        weight_sum = 0.0
        for field, score in zip(self.fields, vector):
            if score is None:
                continue
            total += field.weight * score
            weight_sum += field.weight
        if weight_sum == 0.0:
            return 0.0
        return total / weight_sum

    def attribute_names(self) -> tuple[str, ...]:
        """The attributes this comparator inspects."""
        return tuple(field.attribute for field in self.fields)


_MEASURE_FOR_DTYPE = {
    DataType.STRING: "jaro",
    DataType.INTEGER: "numeric",
    DataType.FLOAT: "numeric",
    DataType.CURRENCY: "numeric",
    DataType.BOOLEAN: "exact",
    DataType.DATE: "exact",
    DataType.URL: "exact",
    DataType.GEO: "geo",
}


def default_comparator(
    schema: Schema, attributes: Sequence[str] | None = None
) -> RecordComparator:
    """A sensible comparator derived from the schema.

    Identity evidence is concentrated where it belongs: required STRING
    attributes (entity names) use token-level matching at triple weight;
    GEO is genuine identity evidence at full weight; all other attributes
    count at 0.5 — shared brand or category is weak support, not identity.
    URL, DATE, and CURRENCY attributes are excluded entirely: a URL names
    the *offer at one source*, a date the *observation*, and a price the
    *measurement* (the paper's "highly transient information", Section
    3.1) — honest records of the same entity disagree on all three.
    """
    names = list(attributes) if attributes is not None else [
        a.name
        for a in schema
        if not a.name.startswith("_") and a.dtype not in TRANSIENT_DTYPES
    ]
    fields = []
    for name in names:
        attribute = schema.get(name)
        dtype = attribute.dtype if attribute is not None else DataType.STRING
        required = attribute is not None and attribute.required
        measure = _MEASURE_FOR_DTYPE.get(dtype, "jaro")
        if required and dtype is DataType.STRING:
            # Entity names: token-level matching separates "Pro 123" from
            # "Max 999" where whole-string Jaro does not.
            measure = "tokens"
        if required:
            weight = 3.0
        elif dtype is DataType.GEO:
            weight = 1.0
        else:
            weight = 0.5
        fields.append(FieldComparator(name, measure, weight))
    return RecordComparator(tuple(fields))


def profiled_comparator(
    schema: Schema, table: "object", attributes: Sequence[str] | None = None
) -> RecordComparator:
    """A comparator whose weights follow measured attribute selectivity.

    A declared-required attribute is not necessarily *identifying*: a city
    is required for a business record yet shared by thousands of
    businesses.  Profiling the actual data fixes this — each attribute's
    weight is ``0.5 + 2.5 x distinctness``, so near-key attributes (names)
    dominate and low-selectivity attributes (city, category) merely nudge.
    String attributes with distinctness >= 0.3 compare token-wise.
    Exclusions (URL/DATE/CURRENCY, leading underscore) are as in
    :func:`default_comparator`.
    """
    names = list(attributes) if attributes is not None else [
        a.name
        for a in schema
        if not a.name.startswith("_") and a.dtype not in TRANSIENT_DTYPES
    ]
    distinctness: dict[str, float] = {}
    for name in names:
        raws = [
            value.raw
            for value in table.column(name)  # type: ignore[attr-defined]
            if not value.is_missing
        ] if name in getattr(table, "schema", Schema(())) else []
        distinctness[name] = (
            len(set(map(str, raws))) / len(raws) if raws else 0.5
        )
    # Duplicated entities depress the raw distinctness of the identity key
    # itself (that is why ER is running!), so selectivity is *relative*:
    # the most selective attribute anchors the scale.
    ceiling = max(distinctness.values(), default=0.5) or 0.5
    fields = []
    for name in names:
        attribute = schema.get(name)
        dtype = attribute.dtype if attribute is not None else DataType.STRING
        required = attribute is not None and attribute.required
        selectivity = distinctness[name] / ceiling
        measure = _MEASURE_FOR_DTYPE.get(dtype, "jaro")
        if dtype is DataType.STRING and (selectivity >= 0.3 or required):
            measure = "tokens"
            if required:
                # Identity fields: one extra word usually means a
                # different entity ("QA Analyst" vs "Junior QA Analyst"),
                # so demand both directions account for each other's
                # tokens.
                measure = "tokens_strict"
        if dtype is DataType.GEO:
            weight = 1.0
        else:
            weight = 0.5 + 2.5 * selectivity
            if required:
                # Declared-required attributes are part of the entity's
                # identity even when their value space is small (the same
                # title at two employers is two different jobs).
                weight = max(weight, 3.0)
        fields.append(FieldComparator(name, measure, weight))
    return RecordComparator(tuple(fields))
