"""Source selection under a budget: "Less is More" (Dong et al., PVLDB'12).

Section 2.1 cites "selecting sources based on their anticipated financial
value [16]" as the kind of informed compromise wrangling needs.  Adding a
source costs money and adds coverage *and* noise; past some point the
marginal gain of one more source is below its marginal cost.  The selector
estimates the integration gain of a source set with a fusion-aware model
and picks sources greedily by marginal profit, stopping at the crossover —
so it can (and does, in experiment E8) decide that fewer sources are
better.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import SourceError
from repro.model.annotations import AnnotationStore, Dimension
from repro.sources.registry import SourceRegistry

__all__ = ["SourceProfile", "SelectionStep", "SelectionResult", "SourceSelector"]


@dataclass(frozen=True)
class SourceProfile:
    """What selection needs to know about one candidate source."""

    name: str
    coverage: float
    accuracy: float
    cost: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise SourceError("coverage must be in [0,1]")
        if not 0.0 <= self.accuracy <= 1.0:
            raise SourceError("accuracy must be in [0,1]")
        if self.cost < 0:
            raise SourceError("cost must be non-negative")


@dataclass(frozen=True)
class SelectionStep:
    """One greedy step: what was added and what it bought."""

    source: str
    gain_before: float
    gain_after: float
    cost: float

    @property
    def marginal_gain(self) -> float:
        """The gain this step added."""
        return self.gain_after - self.gain_before

    @property
    def marginal_profit(self) -> float:
        """Gain minus cost for this step."""
        return self.marginal_gain - self.cost


@dataclass
class SelectionResult:
    """The selected set and the full greedy trajectory."""

    selected: list[str]
    steps: list[SelectionStep]
    final_gain: float
    total_cost: float
    rejected: list[str] = field(default_factory=list)

    @property
    def profit(self) -> float:
        """Final gain minus total cost."""
        return self.final_gain - self.total_cost


class SourceSelector:
    """Greedy marginal-profit source selection with a fusion-aware gain.

    ``gain_per_item`` converts "one correctly integrated item" into cost
    units; ``n_samples`` controls the Monte-Carlo estimate of fused
    accuracy under voting (seeded — results are reproducible).
    """

    def __init__(
        self,
        n_items: int = 100,
        gain_per_item: float = 1.0,
        n_samples: int = 300,
        seed: int = 17,
    ) -> None:
        if n_items <= 0:
            raise SourceError("n_items must be positive")
        self.n_items = n_items
        self.gain_per_item = gain_per_item
        self.n_samples = n_samples
        self.seed = seed

    # -- gain model ------------------------------------------------------

    def gain(self, profiles: list[SourceProfile]) -> float:
        """Expected number of correctly integrated items, in gain units.

        Monte-Carlo over items: each source covers the item with its
        coverage probability and, when covering, reports the truth with its
        accuracy (errors are spread over a small wrong-value space, as in
        the synthetic worlds).  The fused answer is the reliability-
        weighted vote; an uncovered item contributes nothing.
        """
        if not profiles:
            return 0.0
        rng = random.Random(self.seed)
        correct = 0
        for __ in range(self.n_samples):
            votes: dict[object, float] = {}
            for profile in profiles:
                if rng.random() >= profile.coverage:
                    continue
                weight = max(profile.accuracy, 0.05)
                if rng.random() < profile.accuracy:
                    claim: object = "truth"
                else:
                    claim = f"wrong-{rng.randint(1, 3)}"
                votes[claim] = votes.get(claim, 0.0) + weight
            if votes and max(votes, key=lambda v: votes[v]) == "truth":
                correct += 1
        expected_fraction = correct / self.n_samples
        return expected_fraction * self.n_items * self.gain_per_item

    # -- greedy selection ---------------------------------------------------

    def select(
        self,
        profiles: list[SourceProfile],
        budget: float = math.inf,
        force_all: bool = False,
        patience: int = 1,
    ) -> SelectionResult:
        """Greedy marginal-profit selection with dip tolerance.

        Stops when candidates stop paying for themselves (unless
        ``force_all``, used by benchmarks to trace the full curve past the
        crossover) or the budget runs out.  Voting-based gain is not
        submodular — a second equal-accuracy source adds ~nothing until a
        third creates a majority — so up to ``patience`` unprofitable
        steps are taken *tentatively*; they are kept only if a later step
        turns profitable again, and rolled back otherwise.
        """
        remaining = list(profiles)
        chosen: list[SourceProfile] = []
        steps: list[SelectionStep] = []
        current_gain = 0.0
        spent = 0.0
        tentative = 0  # trailing unprofitable steps awaiting justification
        while remaining:
            best = None
            best_step = None
            for candidate in remaining:
                new_gain = self.gain(chosen + [candidate])
                step = SelectionStep(
                    candidate.name, current_gain, new_gain, candidate.cost
                )
                if best_step is None or step.marginal_profit > best_step.marginal_profit:
                    best, best_step = candidate, step
            if best is None or best_step is None:
                raise SourceError(
                    "greedy selection found no candidate step although "
                    f"{len(remaining)} profiles remain"
                )
            if spent + best.cost > budget:
                break
            if best_step.marginal_profit <= 0 and not force_all:
                if tentative >= patience:
                    break
                tentative += 1
            else:
                tentative = 0
            chosen.append(best)
            remaining.remove(best)
            steps.append(best_step)
            current_gain = best_step.gain_after
            spent += best.cost
        if tentative and not force_all:
            # The dip never paid off: roll the tentative tail back.
            for __ in range(tentative):
                profile = chosen.pop()
                remaining.append(profile)
                step = steps.pop()
                spent -= step.cost
                current_gain = step.gain_before
        return SelectionResult(
            [profile.name for profile in chosen],
            steps,
            current_gain,
            spent,
            rejected=[profile.name for profile in remaining],
        )

    # -- profile estimation ------------------------------------------------

    @staticmethod
    def profiles_from_registry(
        registry: SourceRegistry,
        annotations: AnnotationStore,
        coverage_default: float = 0.6,
    ) -> list[SourceProfile]:
        """Build selection profiles from current working-data beliefs.

        Accuracy comes from the source's reliability posterior blended with
        accuracy annotations (feedback + quality analyses); coverage from
        completeness annotations when present.
        """
        profiles = []
        for source in registry:
            target = f"source:{source.name}"
            reliability = registry.reliability(source.name).mean
            accuracy = 0.5 * reliability + 0.5 * annotations.score(
                target, Dimension.ACCURACY, default=reliability
            )
            coverage = annotations.score(
                target, Dimension.COMPLETENESS, default=coverage_default
            )
            profiles.append(
                SourceProfile(
                    source.name,
                    coverage,
                    accuracy,
                    source.metadata.cost_per_access,
                )
            )
        return profiles
