"""Budget-aware source selection ("less is more") and refresh scheduling."""

from repro.selection.refresh import RefreshCandidate, expected_staleness, plan_refresh
from repro.selection.source_selection import (
    SelectionResult,
    SelectionStep,
    SourceProfile,
    SourceSelector,
)

__all__ = [
    "RefreshCandidate",
    "SelectionResult",
    "SelectionStep",
    "SourceProfile",
    "SourceSelector",
    "expected_staleness",
    "plan_refresh",
]
