"""Refresh scheduling: which sources to re-access, and when (Velocity).

Velocity is "the rate at which sources or their contents may change", and
re-accessing a source costs money.  Between two runs, each source's
snapshot decays at its change rate; the scheduler spends a refresh budget
where it buys back the most expected freshness — the temporal twin of
"Less is More" source selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SourceError
from repro.sources.registry import SourceRegistry

__all__ = ["RefreshCandidate", "plan_refresh", "expected_staleness"]


@dataclass(frozen=True)
class RefreshCandidate:
    """One source's refresh economics."""

    name: str
    staleness: float      # probability the snapshot is already outdated
    cost: float           # access cost of a refresh
    value: float          # expected freshness bought per unit cost

    def describe(self) -> str:
        """One readable line for logs."""
        return (
            f"{self.name}: staleness {self.staleness:.2f}, "
            f"cost {self.cost:.1f}, value/cost {self.value:.3f}"
        )


def expected_staleness(change_rate: float, days_since_fetch: float) -> float:
    """P(content changed since the snapshot), Poisson arrivals.

    ``change_rate`` is in expected changes per day (the source metadata's
    Velocity knob); staleness is ``1 - exp(-rate * days)``.
    """
    if change_rate < 0 or days_since_fetch < 0:
        raise SourceError("change rate and age must be non-negative")
    return 1.0 - math.exp(-change_rate * days_since_fetch)


def plan_refresh(
    registry: SourceRegistry,
    days_since_fetch: dict[str, float],
    budget: float,
    min_staleness: float = 0.05,
) -> list[RefreshCandidate]:
    """Choose which sources to refresh under a budget.

    Each candidate's value is ``staleness x reliability / cost`` —
    refreshing a stale *trustworthy* source buys usable freshness, while a
    stale junk source is not worth the access fee.  Greedy by value until
    the budget runs out; sources fresher than ``min_staleness`` are never
    refreshed (nothing to buy).
    """
    if budget < 0:
        raise SourceError("refresh budget must be non-negative")
    candidates = []
    for name in registry.names():
        source = registry.get(name)
        age = days_since_fetch.get(name, 0.0)
        staleness = expected_staleness(source.metadata.change_rate, age)
        if staleness < min_staleness:
            continue
        reliability = registry.reliability(name).mean
        cost = max(source.metadata.cost_per_access, 1e-9)
        candidates.append(
            RefreshCandidate(
                name, staleness, source.metadata.cost_per_access,
                staleness * reliability / cost,
            )
        )
    candidates.sort(key=lambda c: -c.value)
    chosen = []
    remaining = budget
    for candidate in candidates:
        if candidate.cost > remaining:
            continue
        chosen.append(candidate)
        remaining -= candidate.cost
    return chosen
