"""Exporting wrangled data: CSV and JSON with optional lineage.

The wrangled data's consumers live outside the wrangler (the "exploration
and analysis" of the paper's opening definition), so tables must leave the
system without losing what makes them trustworthy — per-cell confidence
and provenance travel along in the JSON form.
"""

from __future__ import annotations

import csv
import datetime as _dt
import json
import os
from pathlib import Path
from typing import Any

from repro.model.provenance import Provenance
from repro.model.records import Table

__all__ = ["atomic_write_bytes", "write_csv", "write_json", "read_json_table"]


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Write a file so readers see the old content or the new — never half.

    The durable-persistence primitive (lint rule REP016 forbids raw
    ``open(..., "w")`` persistence elsewhere): the payload lands in a
    sibling temp file, is fsynced, and is renamed over the target.
    ``os.replace`` is atomic on POSIX and Windows, so a crash at any
    instant leaves either the previous file or the complete new one.
    """
    path = Path(path)
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with temp.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path


def _jsonable(value: Any) -> Any:
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    if isinstance(value, tuple):
        return list(value)
    return value


def _provenance_tree(node: Provenance) -> dict[str, Any]:
    return {
        "step": node.step.value,
        "ref": node.ref,
        "inputs": [_provenance_tree(child) for child in node.inputs],
    }


def write_csv(table: Table, path: str | Path, include_hidden: bool = False) -> Path:
    """Write the table's raw values as CSV (schema order).

    Evaluation-only columns (leading underscore) are dropped unless
    ``include_hidden``.
    """
    path = Path(path)
    names = [
        name
        for name in table.schema.names
        if include_hidden or not name.startswith("_")
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for record in table:
            writer.writerow(
                ["" if record.raw(name) is None else _jsonable(record.raw(name))
                 for name in names]
            )
    return path


def write_json(
    table: Table,
    path: str | Path,
    with_confidence: bool = True,
    with_provenance: bool = False,
) -> Path:
    """Write the table as JSON, optionally with per-cell annotations.

    With ``with_provenance`` each cell becomes an object carrying its full
    lineage tree; otherwise cells are raw values (plus confidence when
    ``with_confidence``).
    """
    path = Path(path)
    rows = []
    for record in table:
        row: dict[str, Any] = {"_id": record.rid, "_source": record.source}
        for name in table.schema.names:
            if name.startswith("_"):
                continue
            value = record.get(name)
            if not with_confidence and not with_provenance:
                row[name] = _jsonable(value.raw)
                continue
            cell: dict[str, Any] = {"value": _jsonable(value.raw)}
            if with_confidence:
                cell["confidence"] = round(value.confidence, 4)
            if with_provenance and not value.is_missing:
                cell["provenance"] = _provenance_tree(value.provenance)
            row[name] = cell
        rows.append(row)
    payload = {
        "table": table.name,
        "schema": [
            {"name": a.name, "type": a.dtype.value, "required": a.required}
            for a in table.schema
            if not a.name.startswith("_")
        ],
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def read_json_table(path: str | Path) -> Table:
    """Read back a table written by :func:`write_json` (values only —
    provenance rehydration is intentionally out of scope: re-imported data
    is new evidence, not the original observations)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    rows = []
    for row in payload["rows"]:
        flat = {}
        for name, cell in row.items():
            if name.startswith("_"):
                continue
            flat[name] = cell["value"] if isinstance(cell, dict) else cell
        rows.append(flat)
    return Table.from_rows(payload.get("table", "imported"), rows)
