"""Active feedback acquisition: where is the next unit of payment worth most?

Section 2.4 wants users to "contribute effort ... in whatever form they
choose and at whatever moment they choose" — but a cost-effective system
should also *suggest* where a judgment would help most.  Three value-of-
information signals, all computable from the working data:

* **uncertain cells** — fused values whose vote was close (low fusion
  confidence): one verdict flips or confirms them;
* **uncertain sources** — reliability posteriors with wide credible
  intervals: a few verdicts on that source's values sharpen every future
  fusion and selection decision;
* **borderline pairs** — ER candidate pairs whose similarity landed near
  the decision threshold: labelled pairs there move the learned rule.

The suggestions are ranked by expected value per unit cost, so a crowd
budget can simply be spent top-down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.records import Table
from repro.resolution.comparison import RecordComparator
from repro.resolution.er import ResolutionResult
from repro.sources.registry import SourceRegistry

__all__ = ["Question", "suggest_value_questions", "suggest_source_questions",
           "suggest_pair_questions", "suggest_questions", "plan_spend"]


@dataclass(frozen=True)
class Question:
    """One suggested feedback task, ranked by expected value."""

    kind: str  # "value" | "source" | "duplicate"
    target: tuple[str, ...]
    expected_value: float
    reason: str


def suggest_value_questions(
    wrangled: Table, limit: int = 10
) -> list[Question]:
    """Cells whose fused confidence is weakest, most uncertain first."""
    scored = []
    for record in wrangled:
        for name in wrangled.schema.names:
            if name.startswith("_"):
                continue
            value = record.get(name)
            if value.is_missing:
                continue
            # value of a verdict peaks at confidence 0.5 and vanishes at 1.0
            uncertainty = 1.0 - abs(2.0 * value.confidence - 1.0)
            if uncertainty <= 0.0:
                continue
            scored.append(
                Question(
                    "value",
                    (record.rid, name),
                    uncertainty,
                    f"fused at confidence {value.confidence:.2f}",
                )
            )
    scored.sort(key=lambda q: -q.expected_value)
    return scored[:limit]


def suggest_source_questions(
    registry: SourceRegistry, limit: int = 5
) -> list[Question]:
    """Sources whose reliability is least pinned down."""
    scored = []
    for name in registry.names():
        posterior = registry.reliability(name)
        low, high = posterior.credible_interval()
        width = high - low
        scored.append(
            Question(
                "source",
                (name,),
                width,
                f"reliability {posterior.mean:.2f} "
                f"± [{low:.2f}, {high:.2f}] from "
                f"{posterior.strength:.0f} observations",
            )
        )
    scored.sort(key=lambda q: -q.expected_value)
    return scored[:limit]


def suggest_pair_questions(
    translated: Table,
    resolution: ResolutionResult,
    comparator: RecordComparator,
    threshold: float,
    band: float = 0.12,
    limit: int = 10,
) -> list[Question]:
    """Candidate pairs whose similarity landed near the match threshold."""
    scored = []
    records = list(translated.records)
    matched = set(resolution.matched_pairs)
    for i, left in enumerate(records):
        for right in records[i + 1:]:
            similarity = comparator.similarity(left, right)
            distance = abs(similarity - threshold)
            if distance > band:
                continue
            pair = tuple(sorted((left.rid, right.rid)))
            decided = "matched" if pair in matched else "split"
            scored.append(
                Question(
                    "duplicate",
                    pair,
                    1.0 - distance / band,
                    f"similarity {similarity:.2f} vs threshold "
                    f"{threshold:.2f} ({decided})",
                )
            )
    scored.sort(key=lambda q: -q.expected_value)
    return scored[:limit]


def plan_spend(
    questions: Sequence[Question],
    budget: float,
    costs: dict[str, float] | None = None,
) -> list[Question]:
    """Choose which questions a feedback budget buys.

    "Payment can take different forms" (Section 2.4) and different forms
    have different prices — an expert value check costs more than a crowd
    pair judgment.  Questions are bought greedily by expected value per
    unit cost until the budget runs out.
    """
    if budget < 0:
        raise ValueError("feedback budget must be non-negative")
    costs = costs or {"value": 1.0, "source": 2.0, "duplicate": 0.5}
    ranked = sorted(
        questions,
        key=lambda q: -(q.expected_value / max(costs.get(q.kind, 1.0), 1e-9)),
    )
    chosen: list[Question] = []
    remaining = budget
    for question in ranked:
        price = costs.get(question.kind, 1.0)
        if price > remaining:
            continue
        chosen.append(question)
        remaining -= price
    return chosen


def suggest_questions(
    wrangled: Table,
    registry: SourceRegistry,
    translated: Table | None = None,
    resolution: ResolutionResult | None = None,
    comparator: RecordComparator | None = None,
    threshold: float = 0.8,
    limit: int = 15,
) -> list[Question]:
    """The combined, ranked question list across all three signals."""
    questions = suggest_value_questions(wrangled, limit=limit)
    questions += suggest_source_questions(registry, limit=max(3, limit // 3))
    if (
        translated is not None
        and resolution is not None
        and comparator is not None
    ):
        questions += suggest_pair_questions(
            translated, resolution, comparator, threshold,
            limit=max(3, limit // 3),
        )
    questions.sort(key=lambda q: -q.expected_value)
    return questions[:limit]
