"""The feedback store: part of the working data of Figure 1."""

from __future__ import annotations

from typing import Iterator, Type, TypeVar

from repro.feedback.types import (
    DuplicateFeedback,
    Feedback,
    MatchFeedback,
    RelevanceFeedback,
    ValueFeedback,
)

__all__ = ["FeedbackStore"]

F = TypeVar("F", bound=Feedback)


class FeedbackStore:
    """An append-only, queryable log of all feedback ever received."""

    def __init__(self) -> None:
        self._items: list[Feedback] = []

    def add(self, item: Feedback) -> Feedback:
        """Record one feedback item."""
        self._items.append(item)
        return item

    def extend(self, items: list[Feedback]) -> None:
        """Record many feedback items."""
        self._items.extend(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Feedback]:
        return iter(self._items)

    def of_type(self, feedback_type: Type[F]) -> list[F]:
        """All items of one feedback type."""
        return [
            item for item in self._items if isinstance(item, feedback_type)
        ]

    def total_cost(self) -> float:
        """Everything the feedback has cost so far (the "payment")."""
        return sum(item.cost for item in self._items)

    def by_worker(self) -> dict[str, list[Feedback]]:
        """Items grouped by the worker who produced them."""
        grouped: dict[str, list[Feedback]] = {}
        for item in self._items:
            grouped.setdefault(item.worker, []).append(item)
        return grouped

    # -- typed conveniences used by the propagation layer -----------------

    def value_verdicts(self) -> dict[tuple[str, str], list[ValueFeedback]]:
        """Value feedback grouped by (entity, attribute)."""
        grouped: dict[tuple[str, str], list[ValueFeedback]] = {}
        for item in self.of_type(ValueFeedback):
            grouped.setdefault((item.entity, item.attribute), []).append(item)
        return grouped

    def duplicate_verdicts(self) -> dict[tuple[str, str], list[DuplicateFeedback]]:
        """Duplicate feedback grouped by record pair."""
        grouped: dict[tuple[str, str], list[DuplicateFeedback]] = {}
        for item in self.of_type(DuplicateFeedback):
            grouped.setdefault(item.pair, []).append(item)
        return grouped

    def match_verdicts(self) -> dict[tuple[str, str], list[bool]]:
        """Match feedback as the mapping the SchemaMatcher consumes."""
        grouped: dict[tuple[str, str], list[bool]] = {}
        for item in self.of_type(MatchFeedback):
            key = (item.source_attribute, item.target_attribute)
            grouped.setdefault(key, []).append(item.is_correct)
        return grouped

    def relevance_verdicts(self) -> dict[str, list[RelevanceFeedback]]:
        """Relevance feedback grouped by source name (source-level only)."""
        grouped: dict[str, list[RelevanceFeedback]] = {}
        for item in self.of_type(RelevanceFeedback):
            if item.source_name:
                grouped.setdefault(item.source_name, []).append(item)
        return grouped
