"""Pay-as-you-go feedback: typed judgments, simulated workers, reliability
estimation, and cross-component propagation."""

from repro.feedback.active import (
    Question,
    plan_spend,
    suggest_pair_questions,
    suggest_questions,
    suggest_source_questions,
    suggest_value_questions,
)
from repro.feedback.propagation import FeedbackPropagator, PropagationReport
from repro.feedback.reliability import (
    Judgment,
    ReliabilityEstimate,
    estimate_reliability,
)
from repro.feedback.store import FeedbackStore
from repro.feedback.types import (
    DuplicateFeedback,
    ExtractionFeedback,
    Feedback,
    MatchFeedback,
    RelevanceFeedback,
    ValueFeedback,
)
from repro.feedback.workers import SimulatedWorker, crowd_panel, expert

__all__ = [
    "DuplicateFeedback",
    "ExtractionFeedback",
    "Feedback",
    "FeedbackPropagator",
    "FeedbackStore",
    "Judgment",
    "MatchFeedback",
    "PropagationReport",
    "Question",
    "RelevanceFeedback",
    "ReliabilityEstimate",
    "SimulatedWorker",
    "ValueFeedback",
    "crowd_panel",
    "estimate_reliability",
    "expert",
    "plan_spend",
    "suggest_pair_questions",
    "suggest_questions",
    "suggest_source_questions",
    "suggest_value_questions",
]
