"""Feedback propagation: one judgment, many informed components.

This is the paper's sharpest architectural demand (Sections 2.4, 3.2):
"the identification of several correct (or incorrect) results may inform
both source selection and mapping generation", whereas prior systems used
"a single type of feedback ... to support a single data management task".

The propagator turns the feedback store into updates for every component:

* value verdicts → per-source reliability observations (via the fused
  cell's provenance) and source accuracy annotations → which steer
  **source selection**, **mapping selection**, and **fusion weights**;
* duplicate verdicts → labelled training pairs → retrained **ER rules**;
* match verdicts → the evidence channel of the **schema matcher**;
* relevance verdicts → relevance annotations → **source selection**;
* extraction verdicts → wrapper reliability → **extraction repair**.

Worker reliability is estimated from overlapping judgments (Dawid–Skene
EM) so crowd noise is discounted before it moves anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.feedback.reliability import Judgment, estimate_reliability
from repro.feedback.store import FeedbackStore
from repro.feedback.types import (
    DuplicateFeedback,
    ExtractionFeedback,
    MatchFeedback,
    RelevanceFeedback,
    ValueFeedback,
)
from repro.model.annotations import AnnotationStore, Dimension, QualityAnnotation
from repro.model.records import Record, Table
from repro.model.uncertainty import log_odds_pool
from repro.obs.metrics import MetricsRegistry
from repro.resolution.comparison import RecordComparator
from repro.sources.registry import SourceRegistry

__all__ = ["PropagationReport", "FeedbackPropagator"]


@dataclass
class PropagationReport:
    """What one propagation pass changed, for logs and experiments."""

    source_observations: dict[str, list[bool]] = field(default_factory=dict)
    match_evidence: dict[tuple[str, str], list[bool]] = field(default_factory=dict)
    er_pairs: int = 0
    relevance_annotations: int = 0
    wrapper_observations: dict[str, list[bool]] = field(default_factory=dict)
    worker_accuracy: dict[str, float] = field(default_factory=dict)


class FeedbackPropagator:
    """Routes everything in the feedback store to every consumer."""

    def __init__(
        self,
        store: FeedbackStore,
        registry: SourceRegistry,
        annotations: AnnotationStore,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.registry = registry
        self.annotations = annotations
        self.metrics = metrics

    # -- worker reliability -------------------------------------------------

    def worker_accuracies(self) -> dict[str, float]:
        """Estimated reliability per worker, from overlapping judgments.

        Every binary feedback item is a judgment on a question keyed by its
        type and target; workers who contradict the consensus lose weight.
        Workers with no overlap keep a neutral 0.8.
        """
        judgments = []
        for item in self.store:
            if isinstance(item, ValueFeedback):
                key = f"value:{item.entity}:{item.attribute}"
                answer = item.is_correct
            elif isinstance(item, DuplicateFeedback):
                key = f"dup:{item.pair[0]}:{item.pair[1]}"
                answer = item.is_duplicate
            elif isinstance(item, MatchFeedback):
                key = f"match:{item.source_attribute}:{item.target_attribute}"
                answer = item.is_correct
            elif isinstance(item, RelevanceFeedback):
                key = f"rel:{item.source_name or item.entity}"
                answer = item.is_relevant
            elif isinstance(item, ExtractionFeedback):
                key = f"ext:{item.wrapper_id}:{item.attribute}"
                answer = item.is_correct
            else:
                continue
            judgments.append(Judgment(item.worker, key, answer))
        if not judgments:
            return {}
        estimate = estimate_reliability(judgments)
        return estimate.worker_accuracy

    def _consolidate(
        self,
        verdicts: list[bool],
        workers: list[str],
        accuracy: dict[str, float],
    ) -> float:
        """Probability the asserted fact holds, given weighted verdicts."""
        probabilities = []
        weights = []
        for verdict, worker in zip(verdicts, workers):
            reliability = accuracy.get(worker, 0.8)
            probabilities.append(reliability if verdict else 1.0 - reliability)
            weights.append(1.0)
        return log_odds_pool(probabilities, weights, prior=0.5)

    # -- propagation passes ------------------------------------------------

    def propagate(
        self,
        wrangled: Table | None = None,
        comparator: RecordComparator | None = None,
        records_by_rid: dict[str, Record] | None = None,
    ) -> PropagationReport:
        """Run every propagation pass and return what changed."""
        report = PropagationReport()
        report.worker_accuracy = self.worker_accuracies()

        if wrangled is not None:
            self._propagate_values(wrangled, report)
        self._propagate_matches(report)
        self._propagate_relevance(report)
        self._propagate_wrappers(report)
        if comparator is not None and records_by_rid:
            self._collect_er_pairs(comparator, records_by_rid, report)
        if self.metrics is not None:
            self.metrics.counter("feedback.propagations").increment()
            self.metrics.counter("feedback.source_observations").increment(
                sum(len(v) for v in report.source_observations.values())
            )
            self.metrics.counter("feedback.match_evidence_keys").increment(
                len(report.match_evidence)
            )
            self.metrics.counter("feedback.relevance_annotations").increment(
                report.relevance_annotations
            )
            self.metrics.counter("feedback.wrapper_observations").increment(
                sum(len(v) for v in report.wrapper_observations.values())
            )
            self.metrics.counter("feedback.er_pairs").increment(
                report.er_pairs
            )
        return report

    def _propagate_values(self, wrangled: Table, report: PropagationReport) -> None:
        accuracy = report.worker_accuracy
        fused_by_rid = {record.rid: record for record in wrangled}
        for (entity, attribute), items in self.store.value_verdicts().items():
            record = fused_by_rid.get(entity)
            if record is None:
                continue
            value = record.get(attribute)
            if value.is_missing:
                continue
            probability = self._consolidate(
                [item.is_correct for item in items],
                [item.worker for item in items],
                accuracy,
            )
            if abs(probability - 0.5) < 0.05:
                continue  # verdicts cancel out; nothing to learn
            verdict = probability > 0.5
            weight = abs(probability - 0.5) * 2.0
            for source in value.provenance.sources():
                if source in self.registry:
                    self.registry.observe(source, verdict, weight=weight)
                    report.source_observations.setdefault(source, []).append(verdict)
                    self.annotations.add(
                        QualityAnnotation(
                            f"source:{source}",
                            Dimension.ACCURACY,
                            1.0 if verdict else 0.0,
                            confidence=weight,
                            origin="feedback",
                        )
                    )

    def _propagate_matches(self, report: PropagationReport) -> None:
        accuracy = report.worker_accuracy
        for key, items in (
            self._group_match_items().items()
        ):
            probability = self._consolidate(
                [item.is_correct for item in items],
                [item.worker for item in items],
                accuracy,
            )
            # Replay as weighted booleans: the matcher's feedback channel
            # consumes plain verdict lists.
            count = max(1, round(len(items) * abs(probability - 0.5) * 2))
            report.match_evidence[key] = [probability > 0.5] * count

    def _group_match_items(self) -> dict[tuple[str, str], list[MatchFeedback]]:
        grouped: dict[tuple[str, str], list[MatchFeedback]] = {}
        for item in self.store.of_type(MatchFeedback):
            key = (item.source_attribute, item.target_attribute)
            grouped.setdefault(key, []).append(item)
        return grouped

    def _propagate_relevance(self, report: PropagationReport) -> None:
        accuracy = report.worker_accuracy
        for source, items in self.store.relevance_verdicts().items():
            probability = self._consolidate(
                [item.is_relevant for item in items],
                [item.worker for item in items],
                accuracy,
            )
            # One annotation per judgment: repeated feedback must be able to
            # outweigh the optimistic defaults other analyses wrote.
            for __ in items:
                self.annotations.add(
                    QualityAnnotation(
                        f"source:{source}",
                        Dimension.RELEVANCE,
                        probability,
                        confidence=1.0,
                        origin="feedback",
                    )
                )
            report.relevance_annotations += 1

    def _propagate_wrappers(self, report: PropagationReport) -> None:
        for item in self.store.of_type(ExtractionFeedback):
            report.wrapper_observations.setdefault(item.wrapper_id, []).append(
                item.is_correct
            )

    def _collect_er_pairs(
        self,
        comparator: RecordComparator,
        records_by_rid: dict[str, Record],
        report: PropagationReport,
    ) -> None:
        self._er_vectors: list[list[float | None]] = []
        self._er_labels: list[bool] = []
        accuracy = report.worker_accuracy
        for pair, items in self.store.duplicate_verdicts().items():
            left = records_by_rid.get(pair[0])
            right = records_by_rid.get(pair[1])
            if left is None or right is None:
                continue
            probability = self._consolidate(
                [item.is_duplicate for item in items],
                [item.worker for item in items],
                accuracy,
            )
            if abs(probability - 0.5) < 0.05:
                continue
            self._er_vectors.append(comparator.vector(left, right))
            self._er_labels.append(probability > 0.5)
        report.er_pairs = len(self._er_labels)

    def er_training_data(self) -> tuple[list[list[float | None]], list[bool]]:
        """The labelled pairs collected by the last propagation pass."""
        return (
            getattr(self, "_er_vectors", []),
            getattr(self, "_er_labels", []),
        )
