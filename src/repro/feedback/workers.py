"""Simulated feedback workers: domain experts and paid crowds.

Example 5: "the provision of domain-expert feedback from the data
scientists is a form of payment ... it should also be possible to use
crowdsourcing, with direct financial payment of crowd workers".  A
:class:`SimulatedWorker` answers binary questions with a configured
reliability at a configured price, so benchmarks can plot quality against
money for any mix of experts and crowds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FeedbackError

__all__ = ["SimulatedWorker", "expert", "crowd_panel"]


@dataclass
class SimulatedWorker:
    """A worker who answers binary questions with fixed reliability."""

    name: str
    reliability: float
    cost_per_judgment: float
    rng: random.Random

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise FeedbackError("worker reliability must be in [0,1]")
        if self.cost_per_judgment < 0:
            raise FeedbackError("worker cost must be non-negative")

    def judge(self, truth: bool) -> bool:
        """The worker's answer given the true answer."""
        if self.rng.random() < self.reliability:
            return truth
        return not truth


def expert(seed: int = 0, reliability: float = 0.98, cost: float = 5.0) -> SimulatedWorker:
    """A domain expert: near-perfect, expensive."""
    return SimulatedWorker("expert", reliability, cost, random.Random(seed))


def crowd_panel(
    n_workers: int,
    seed: int = 0,
    reliability_range: tuple[float, float] = (0.6, 0.9),
    cost: float = 0.2,
) -> list[SimulatedWorker]:
    """A panel of crowd workers with heterogeneous reliabilities."""
    rng = random.Random(seed)
    low, high = reliability_range
    return [
        SimulatedWorker(
            f"crowd-{index}",
            rng.uniform(low, high),
            cost,
            random.Random(seed * 1000 + index),
        )
        for index in range(n_workers)
    ]
