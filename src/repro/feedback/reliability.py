"""Worker-reliability estimation from overlapping binary judgments.

Feedback "may be unreliable or out of line with the user's requirements"
(Section 4.2), and Demartini et al. [13] showed how to relate uncertain
crowd answers to other evidence probabilistically.  This is a Dawid–Skene
style EM restricted to binary questions: item truths and worker accuracies
are estimated jointly from whoever answered what, with majority vote as
initialisation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import FeedbackError
from repro.model.uncertainty import clamp

__all__ = ["Judgment", "ReliabilityEstimate", "estimate_reliability"]


@dataclass(frozen=True)
class Judgment:
    """Worker ``worker`` answered ``answer`` on question ``item``."""

    worker: str
    item: str
    answer: bool


@dataclass
class ReliabilityEstimate:
    """Estimated worker accuracies and per-item truth probabilities."""

    worker_accuracy: dict[str, float]
    item_probability: dict[str, float]
    iterations: int

    def item_truths(self, threshold: float = 0.5) -> dict[str, bool]:
        """Hard item labels at the given probability threshold."""
        return {
            item: probability >= threshold
            for item, probability in self.item_probability.items()
        }


def estimate_reliability(
    judgments: Sequence[Judgment],
    max_iterations: int = 50,
    tolerance: float = 1e-5,
    prior_strength: float = 2.0,
    prior_mean: float = 0.8,
) -> ReliabilityEstimate:
    """Jointly estimate worker accuracy and item truth by EM.

    E-step: item truth probability from current worker accuracies (log-odds
    sum of votes).  M-step: worker accuracy is the smoothed expected
    agreement with the estimated truths.  The smoothing prior mean is 0.8,
    not 0.5 — a worker we know nothing about is presumed helpful, not a
    coin flip, otherwise a lone judgment could never move anything.
    Accuracies are clamped to ``[0.05, 0.95]`` — no worker is treated as an
    oracle or an anti-oracle.
    """
    if not judgments:
        raise FeedbackError("cannot estimate reliability from no judgments")
    by_item: dict[str, list[Judgment]] = defaultdict(list)
    by_worker: dict[str, list[Judgment]] = defaultdict(list)
    for judgment in judgments:
        by_item[judgment.item].append(judgment)
        by_worker[judgment.worker].append(judgment)

    # Initialise item probabilities by majority vote.
    probability = {
        item: sum(1 for j in votes if j.answer) / len(votes)
        for item, votes in by_item.items()
    }
    accuracy = {worker: 0.7 for worker in by_worker}

    import math

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # M-step: worker accuracy = expected agreement with current truths.
        new_accuracy = {}
        for worker, votes in by_worker.items():
            agreement = sum(
                probability[j.item] if j.answer else 1.0 - probability[j.item]
                for j in votes
            )
            smoothed = (agreement + prior_mean * prior_strength) / (
                len(votes) + prior_strength
            )
            new_accuracy[worker] = clamp(smoothed, 0.05, 0.95)

        # E-step: item probabilities from worker accuracies.
        new_probability = {}
        for item, votes in by_item.items():
            log_odds = 0.0
            for judgment in votes:
                acc = new_accuracy[judgment.worker]
                weight = math.log(acc / (1.0 - acc))
                log_odds += weight if judgment.answer else -weight
            new_probability[item] = 1.0 / (1.0 + math.exp(-log_odds))

        delta = max(
            max(abs(new_accuracy[w] - accuracy[w]) for w in accuracy),
            max(abs(new_probability[i] - probability[i]) for i in probability),
        )
        accuracy, probability = new_accuracy, new_probability
        if delta < tolerance:
            break

    return ReliabilityEstimate(accuracy, probability, iterations)
