"""Typed feedback: the "payment" of pay-as-you-go wrangling.

Section 2.4: feedback must be allowed "in whatever form the user chooses"
and "feedback of one type should be able to inform many different steps in
the wrangling process".  Each feedback item is therefore a small, typed,
attributable fact — who said it, what it cost, what it asserts — that the
propagation layer can route to every component that can learn from it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import FeedbackError

__all__ = [
    "Feedback",
    "ValueFeedback",
    "DuplicateFeedback",
    "MatchFeedback",
    "RelevanceFeedback",
    "ExtractionFeedback",
]

_feedback_counter = itertools.count(1)


@dataclass(frozen=True)
class Feedback:
    """Common envelope: the worker who judged, and what the judgment cost."""

    worker: str = "expert"
    cost: float = 0.0
    fid: int = field(default_factory=lambda: next(_feedback_counter))

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise FeedbackError("feedback cost must be non-negative")


@dataclass(frozen=True)
class ValueFeedback(Feedback):
    """A verdict on one cell of the wrangled data.

    ``entity`` is the fused record's id, ``attribute`` the cell; when the
    value is wrong the user may optionally supply the ``correction``.
    """

    entity: str = ""
    attribute: str = ""
    is_correct: bool = True
    correction: object | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.entity or not self.attribute:
            raise FeedbackError("value feedback needs an entity and attribute")


@dataclass(frozen=True)
class DuplicateFeedback(Feedback):
    """A verdict on whether two records describe the same real-world object."""

    rid_a: str = ""
    rid_b: str = ""
    is_duplicate: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.rid_a or not self.rid_b or self.rid_a == self.rid_b:
            raise FeedbackError("duplicate feedback needs two distinct records")

    @property
    def pair(self) -> tuple[str, str]:
        """The record pair, order-normalised."""
        return tuple(sorted((self.rid_a, self.rid_b)))  # type: ignore[return-value]


@dataclass(frozen=True)
class MatchFeedback(Feedback):
    """A verdict on one schema correspondence."""

    source_name: str = ""
    source_attribute: str = ""
    target_attribute: str = ""
    is_correct: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.source_attribute or not self.target_attribute:
            raise FeedbackError("match feedback needs both attribute names")


@dataclass(frozen=True)
class RelevanceFeedback(Feedback):
    """A verdict on whether an entity (or a whole source) matters to the user."""

    entity: str = ""
    source_name: str = ""
    is_relevant: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.entity and not self.source_name:
            raise FeedbackError(
                "relevance feedback needs an entity or a source"
            )


@dataclass(frozen=True)
class ExtractionFeedback(Feedback):
    """A verdict on whether a wrapper extracted an attribute correctly."""

    wrapper_id: str = ""
    attribute: str = ""
    is_correct: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.wrapper_id:
            raise FeedbackError("extraction feedback needs a wrapper id")
