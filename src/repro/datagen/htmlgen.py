"""Rendering synthetic catalogs into heterogeneous web sites.

Example 1 needs "thousands of sites ... variety in format"; this module
renders product listings through several HTML templates with genuinely
different DOM shapes, so that wrapper induction, automatic extraction, and
WADaR-style repair are exercised on the same code paths as real deep-web
extraction:

* ``grid``   — class-annotated ``div`` layout (clean, class-addressable);
* ``table``  — bare ``<td>`` cells (forces positional/index rules);
* ``messy``  — the price and availability are concatenated into one text
  blob (forces recogniser-based re-segmentation, i.e. repair).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from html import escape

from repro.extraction.induction import ExampleAnnotation
from repro.sources.base import Document

__all__ = ["HtmlSite", "render_site", "annotations_for", "random_listings", "TEMPLATES"]

TEMPLATES = ("grid", "table", "messy")


@dataclass
class HtmlSite:
    """A rendered synthetic site: pages plus per-record rendered strings."""

    name: str
    template: str
    pages: list[tuple[str, str]]
    listings: list[dict[str, str]]

    def documents(self) -> list[Document]:
        """The site's pages as :class:`Document` objects."""
        return [
            Document(url=url, html=html, source=self.name)
            for url, html in self.pages
        ]


def _grid_item(listing: dict[str, str]) -> str:
    return (
        '<div class="product">'
        f'<h2 class="title">{escape(listing["product"])}</h2>'
        f'<span class="brand">{escape(listing["brand"])}</span>'
        f'<span class="price">{escape(listing["price"])}</span>'
        f'<a class="link" href="{escape(listing["url"])}">view offer</a>'
        f'<span class="date">{escape(listing["updated"])}</span>'
        "</div>"
    )


def _table_item(listing: dict[str, str]) -> str:
    return (
        '<tr class="item">'
        f"<td>{escape(listing['product'])}</td>"
        f"<td>{escape(listing['brand'])}</td>"
        f"<td>{escape(listing['price'])}</td>"
        f"<td>{escape(listing['updated'])}</td>"
        "</tr>"
    )


def _messy_item(listing: dict[str, str]) -> str:
    blob = f"{listing['product']} — now only {listing['price']} (in stock)"
    return (
        '<li class="offer">'
        f'<span class="desc">{escape(blob)}</span>'
        f'<span class="meta">checked {escape(listing["updated"])} · '
        f'{escape(listing["brand"])}</span>'
        "</li>"
    )


def _wrap_page(site: str, body: str, template: str) -> str:
    if template == "table":
        body = f'<table class="items">{body}</table>'
    elif template == "messy":
        body = f'<ul class="offers">{body}</ul>'
    else:
        body = f'<div class="listing">{body}</div>'
    return (
        "<html><head><title>"
        f"{escape(site)}</title></head><body>"
        f'<div class="header"><h1>{escape(site)}</h1>'
        '<p class="tagline">best prices on the web</p></div>'
        f"{body}"
        '<div class="footer">© 2016 example shop</div>'
        "</body></html>"
    )


_ITEM_RENDERERS = {
    "grid": _grid_item,
    "table": _table_item,
    "messy": _messy_item,
}


def render_site(
    name: str,
    listings: list[dict[str, str]],
    template: str = "grid",
    page_size: int = 20,
) -> HtmlSite:
    """Render canonical listing dicts into a paginated site.

    ``listings`` values must already be display strings (formatted prices
    and dates); they are recorded verbatim on the returned site so tests
    and annotation generators know exactly what is on each page.
    """
    if template not in _ITEM_RENDERERS:
        raise ValueError(f"unknown template {template!r}; use one of {TEMPLATES}")
    renderer = _ITEM_RENDERERS[template]
    pages = []
    for start in range(0, max(len(listings), 1), page_size):
        chunk = listings[start:start + page_size]
        body = "".join(renderer(listing) for listing in chunk)
        url = f"https://{name}.example.com/page/{start // page_size + 1}"
        pages.append((url, _wrap_page(name, body, template)))
    return HtmlSite(name, template, pages, listings)


def annotations_for(site: HtmlSite, count: int = 3) -> list[ExampleAnnotation]:
    """User-style annotations for the first ``count`` records of a site.

    What a user would highlight: the product title and the price text as
    they appear on the page (for messy sites, the price substring inside
    the blob).
    """
    annotations = []
    page_size = max(
        1, len(site.listings) // max(len(site.pages), 1)
    ) if site.pages else 1
    for index, listing in enumerate(site.listings[:count]):
        page_index = min(index // page_size, len(site.pages) - 1)
        url = site.pages[page_index][0]
        annotations.append(
            ExampleAnnotation(
                url,
                {
                    "product": listing["product"],
                    "price": listing["price"],
                    "updated": listing["updated"],
                },
            )
        )
    return annotations


def random_listings(
    n: int, rng: random.Random, price_low: float = 10.0, price_high: float = 900.0
) -> list[dict[str, str]]:
    """Stand-alone canonical listings for extraction-only tests."""
    from repro.datagen.corrupt import format_date, format_price
    import datetime as _dt

    brands = ("Acme", "Globex", "Initech", "Stark")
    nouns = ("Laptop", "Camera", "Monitor", "Tablet")
    listings = []
    for index in range(n):
        brand = rng.choice(brands)
        noun = rng.choice(nouns)
        price = round(rng.uniform(price_low, price_high), 2)
        date = _dt.date(2016, 3, 15) - _dt.timedelta(days=rng.randint(0, 60))
        listings.append(
            {
                "product": f"{brand} {noun} {rng.randint(100, 999)}",
                "brand": brand,
                "price": format_price(price, rng),
                "url": f"https://shop.example.com/item/{index}",
                "updated": format_date(date, rng),
            }
        )
    return listings
