"""Synthetic worlds with controlled 4-V knobs (see DESIGN.md, substitutions).

These generators stand in for the paper's live web sources: every V —
volume, velocity, variety, veracity — is an explicit, seeded parameter, so
the benchmarks can vary one V at a time and report the effect.
"""

from repro.datagen.corrupt import (
    format_date,
    format_price,
    jitter_geo,
    maybe,
    misspell,
    perturb_price,
)
from repro.datagen.htmlgen import (
    HtmlSite,
    TEMPLATES,
    annotations_for,
    random_listings,
    render_site,
)
from repro.datagen.jobs import JOB_SCHEMA, JobWorld, generate_job_world, job_ontology
from repro.datagen.locations import (
    LOCATION_SCHEMA,
    LocationWorld,
    generate_location_world,
)
from repro.datagen.ontologies import location_ontology, product_ontology
from repro.datagen.products import (
    TARGET_SCHEMA,
    TRUTH_COLUMN,
    ProductWorld,
    SourceSpec,
    default_specs,
    generate_world,
)

__all__ = [
    "HtmlSite",
    "JOB_SCHEMA",
    "JobWorld",
    "LOCATION_SCHEMA",
    "LocationWorld",
    "ProductWorld",
    "SourceSpec",
    "TARGET_SCHEMA",
    "TEMPLATES",
    "TRUTH_COLUMN",
    "annotations_for",
    "default_specs",
    "format_date",
    "format_price",
    "generate_job_world",
    "generate_location_world",
    "generate_world",
    "jitter_geo",
    "job_ontology",
    "location_ontology",
    "maybe",
    "misspell",
    "perturb_price",
    "product_ontology",
    "random_listings",
    "render_site",
]
