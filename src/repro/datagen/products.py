"""The e-commerce price-intelligence world (paper Examples 1, 2, 4, 5).

Generates a ground-truth product catalog and a fleet of retailer sources
over it, with all four V's as explicit, seeded knobs:

* **Volume** — number of sources and products;
* **Velocity** — per-source staleness (probability a price is out of date);
* **Variety** — per-source schema variants, value formats, and coverage;
* **Veracity** — per-source error rates on prices and titles.

Every generated row remembers which true product it describes (the
``_truth`` column), which the evaluation harness uses and wrangling
components never see — it is excluded from every target schema.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field

from repro.datagen.corrupt import (
    format_date,
    format_price,
    maybe,
    misspell,
    perturb_price,
)
from repro.model.records import Table
from repro.model.schema import Attribute, DataType, Schema

__all__ = ["SourceSpec", "ProductWorld", "generate_world", "default_specs", "TARGET_SCHEMA", "TRUTH_COLUMN"]

#: The evaluation-only lineage column; never part of a target schema.
TRUTH_COLUMN = "_truth"

#: The integration target schema for price intelligence.
TARGET_SCHEMA = Schema(
    (
        Attribute("product", DataType.STRING, required=True,
                  description="product name"),
        Attribute("brand", DataType.STRING, description="manufacturer"),
        Attribute("category", DataType.STRING, description="product category"),
        Attribute("price", DataType.CURRENCY, required=True,
                  description="current offer price"),
        Attribute("url", DataType.URL, description="offer page"),
        Attribute("updated", DataType.DATE, description="last price check"),
    )
)

_BRANDS = (
    "Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Tyrell",
    "Cyberdyne", "Aperture", "Hooli",
)
_CATEGORIES = {
    "television": (199.0, 1999.0),
    "laptop": (349.0, 2499.0),
    "headphones": (19.0, 549.0),
    "camera": (99.0, 1899.0),
    "smartphone": (149.0, 1299.0),
    "tablet": (99.0, 999.0),
    "monitor": (89.0, 899.0),
    "printer": (49.0, 499.0),
}
_MODELS = ("Pro", "Max", "Air", "Ultra", "Lite", "Plus", "Mini", "Neo", "X")

#: Schema variants: how different retailers name the same attributes.
_SCHEMA_VARIANTS: tuple[dict[str, str], ...] = (
    {  # canonical
        "product": "product", "brand": "brand", "category": "category",
        "price": "price", "url": "url", "updated": "updated",
    },
    {  # marketplace style
        "product": "title", "brand": "manufacturer", "category": "dept",
        "price": "offer_price", "url": "product_url", "updated": "last_seen",
    },
    {  # terse feed style
        "product": "name", "brand": "make", "category": "cat",
        "price": "cost", "url": "link", "updated": "ts",
    },
    {  # verbose style
        "product": "product_name", "brand": "brand_name",
        "category": "product_category", "price": "current_price",
        "url": "page_url", "updated": "price_checked_on",
    },
)


@dataclass(frozen=True)
class SourceSpec:
    """The controlled characteristics of one synthetic retailer.

    ``coverage`` — fraction of the catalog the retailer lists;
    ``error_rate`` — probability a listed price/title is corrupted
    (Veracity); ``staleness`` — probability the price is out of date
    (Velocity); ``missing_rate`` — probability an optional field is absent;
    ``cost`` — access cost in budget units; ``schema_variant`` — index into
    the attribute-name variants (Variety).
    """

    name: str
    coverage: float = 0.8
    error_rate: float = 0.1
    staleness: float = 0.1
    missing_rate: float = 0.1
    cost: float = 1.0
    schema_variant: int = 0
    price_bias: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("coverage", "error_rate", "staleness", "missing_rate"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0,1], got {value}")


@dataclass
class ProductWorld:
    """A generated world: the truth, the sources, and their specs."""

    ground_truth: Table
    source_rows: dict[str, list[dict[str, object]]]
    specs: dict[str, SourceSpec]
    renames: dict[str, dict[str, str]] = field(default_factory=dict)
    today: _dt.date = _dt.date(2016, 3, 15)

    @property
    def source_names(self) -> list[str]:
        """Names of all generated sources."""
        return sorted(self.source_rows)

    def truth_by_id(self) -> dict[str, dict[str, object]]:
        """Ground-truth rows keyed by product id."""
        return {
            record.raw("product_id"): record.to_dict()
            for record in self.ground_truth
        }

    def true_price(self, product_id: str) -> float:
        """The true current price of a product."""
        return float(self.truth_by_id()[product_id]["price"])


def _make_catalog(rng: random.Random, n_products: int, today: _dt.date) -> Table:
    rows = []
    for index in range(n_products):
        category = rng.choice(sorted(_CATEGORIES))
        low, high = _CATEGORIES[category]
        brand = rng.choice(_BRANDS)
        model = f"{rng.choice(_MODELS)} {rng.randint(100, 9999)}"
        rows.append(
            {
                "product_id": f"P{index:05d}",
                "product": f"{brand} {category.title()} {model}",
                "brand": brand,
                "category": category,
                "price": round(rng.uniform(low, high), 2),
                "url": f"https://catalog.example.com/p/{index}",
                "updated": today.isoformat(),
            }
        )
    return Table.from_rows("ground-truth", rows, source="ground-truth")


def default_specs(n_sources: int, rng: random.Random) -> list[SourceSpec]:
    """A heterogeneous fleet: a few excellent retailers, a long tail of
    mediocre ones, and some actively bad aggregators."""
    specs = []
    for index in range(n_sources):
        tier = rng.random()
        if tier < 0.25:  # curated, expensive, good
            spec = SourceSpec(
                name=f"retailer-{index:02d}",
                coverage=rng.uniform(0.5, 0.8),
                error_rate=rng.uniform(0.0, 0.05),
                staleness=rng.uniform(0.0, 0.05),
                missing_rate=rng.uniform(0.0, 0.05),
                cost=rng.uniform(3.0, 6.0),
                schema_variant=rng.randrange(len(_SCHEMA_VARIANTS)),
            )
        elif tier < 0.75:  # mid-tier
            spec = SourceSpec(
                name=f"retailer-{index:02d}",
                coverage=rng.uniform(0.3, 0.7),
                error_rate=rng.uniform(0.05, 0.2),
                staleness=rng.uniform(0.05, 0.25),
                missing_rate=rng.uniform(0.05, 0.2),
                cost=rng.uniform(1.0, 3.0),
                schema_variant=rng.randrange(len(_SCHEMA_VARIANTS)),
            )
        else:  # cheap scraped aggregators
            spec = SourceSpec(
                name=f"retailer-{index:02d}",
                coverage=rng.uniform(0.4, 0.9),
                error_rate=rng.uniform(0.2, 0.45),
                staleness=rng.uniform(0.2, 0.5),
                missing_rate=rng.uniform(0.1, 0.3),
                cost=rng.uniform(0.2, 1.0),
                schema_variant=rng.randrange(len(_SCHEMA_VARIANTS)),
                price_bias=rng.uniform(-0.05, 0.05),
            )
        specs.append(spec)
    return specs


def _render_row(
    truth: dict[str, object],
    spec: SourceSpec,
    rng: random.Random,
    today: _dt.date,
) -> dict[str, object]:
    renames = _SCHEMA_VARIANTS[spec.schema_variant]
    price = float(truth["price"]) * (1.0 + spec.price_bias)
    updated = today
    if maybe(rng, spec.staleness):
        # A stale observation: an old date and yesterday's price.
        days_old = rng.randint(7, 120)
        updated = today - _dt.timedelta(days=days_old)
        price = perturb_price(price, rng, spread=0.25)
    if maybe(rng, spec.error_rate):
        price = perturb_price(price, rng)
    title = str(truth["product"])
    if maybe(rng, spec.error_rate):
        title = misspell(title, rng)

    row: dict[str, object] = {TRUTH_COLUMN: truth["product_id"]}
    values = {
        "product": title,
        "brand": truth["brand"],
        "category": truth["category"],
        "price": format_price(round(price, 2), rng),
        "url": f"https://{spec.name}.example.com/item/{truth['product_id']}",
        "updated": format_date(updated, rng),
    }
    for canonical, local_name in renames.items():
        value = values[canonical]
        optional = canonical not in ("product", "price")
        if optional and maybe(rng, spec.missing_rate):
            row[local_name] = None
        else:
            row[local_name] = value
    return row


def generate_world(
    n_products: int = 100,
    n_sources: int = 10,
    seed: int = 42,
    specs: list[SourceSpec] | None = None,
    today: _dt.date = _dt.date(2016, 3, 15),
) -> ProductWorld:
    """Generate a complete price-intelligence world.

    Deterministic for a given seed; the same seed always produces the same
    catalog, sources, and corruptions.
    """
    rng = random.Random(seed)
    catalog = _make_catalog(rng, n_products, today)
    if specs is None:
        specs = default_specs(n_sources, rng)
    truth_rows = [record.to_dict() for record in catalog]

    source_rows: dict[str, list[dict[str, object]]] = {}
    renames: dict[str, dict[str, str]] = {}
    for spec in specs:
        covered = [
            row for row in truth_rows if maybe(rng, spec.coverage)
        ]
        source_rows[spec.name] = [
            _render_row(row, spec, rng, today) for row in covered
        ]
        renames[spec.name] = dict(_SCHEMA_VARIANTS[spec.schema_variant])

    return ProductWorld(
        ground_truth=catalog,
        source_rows=source_rows,
        specs={spec.name: spec for spec in specs},
        renames=renames,
        today=today,
    )
