"""The job-postings world — the third long-tail domain of Section 2.2.

"Fully-automated, large scale collection of long-tail, business-related
data, e.g., products, jobs or locations, is possible."  Job boards are the
classic aggregation mess: the same vacancy syndicated across boards with
retitled postings, salary ranges formatted every which way, and expired
posts lingering — Veracity and Velocity in one feed.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass

from repro.datagen.corrupt import maybe, misspell
from repro.model.records import Table
from repro.model.schema import Attribute, DataType, Schema

__all__ = ["JOB_SCHEMA", "JobWorld", "generate_job_world", "job_ontology"]

JOB_SCHEMA = Schema(
    (
        Attribute("title", DataType.STRING, required=True,
                  description="job title"),
        Attribute("company", DataType.STRING, required=True,
                  description="employer"),
        Attribute("city", DataType.STRING, required=True,
                  description="job location"),
        Attribute("salary", DataType.CURRENCY, description="annual salary"),
        Attribute("posted", DataType.DATE, description="posting date"),
        Attribute("url", DataType.URL, description="posting page"),
    )
)

_ROLES = (
    "Data Engineer", "Backend Developer", "Product Manager",
    "UX Designer", "Site Reliability Engineer", "Data Scientist",
    "QA Analyst", "Solutions Architect",
)
_SENIORITY = ("Junior", "", "Senior", "Lead", "Principal")
_COMPANIES = (
    "Acme Systems", "Globex Digital", "Initech Labs", "Hooli Cloud",
    "Stark Analytics", "Wayne Software", "Aperture Data",
)
_CITIES = ("Oxford", "Edinburgh", "Manchester", "London", "Birmingham")

#: Boards retitle syndicated postings in predictable ways.
_TITLE_STYLES = (
    lambda title, city: title,
    lambda title, city: f"{title} - {city}",
    lambda title, city: title.upper(),
    lambda title, city: f"{title} (hybrid)",
)

_SALARY_STYLES = (
    lambda s: f"£{s:,.0f}",
    lambda s: f"£{s / 1000:.0f}k",
    lambda s: f"{s:,.0f} GBP",
)


@dataclass
class JobWorld:
    """Ground-truth vacancies plus the boards syndicating them."""

    ground_truth: Table
    board_rows: dict[str, list[dict[str, object]]]
    today: _dt.date = _dt.date(2016, 3, 15)


def generate_job_world(
    n_jobs: int = 60,
    n_boards: int = 4,
    seed: int = 77,
    expired_rate: float = 0.15,
) -> JobWorld:
    """Generate vacancies and syndicated, noisy board listings."""
    rng = random.Random(seed)
    today = _dt.date(2016, 3, 15)
    truth_rows = []
    for index in range(n_jobs):
        seniority = rng.choice(_SENIORITY)
        role = rng.choice(_ROLES)
        title = f"{seniority} {role}".strip()
        truth_rows.append(
            {
                "job_id": f"J{index:04d}",
                "title": title,
                "company": rng.choice(_COMPANIES),
                "city": rng.choice(_CITIES),
                "salary": float(rng.randrange(28, 120) * 1000),
                "posted": (
                    today - _dt.timedelta(days=rng.randint(0, 20))
                ).isoformat(),
                "url": f"https://careers.example.com/j/{index}",
            }
        )
    ground_truth = Table.from_rows("jobs-truth", truth_rows, source="ground-truth")

    board_rows: dict[str, list[dict[str, object]]] = {}
    for board_index in range(n_boards):
        board = f"board-{board_index}"
        style = _TITLE_STYLES[board_index % len(_TITLE_STYLES)]
        salary_style = _SALARY_STYLES[board_index % len(_SALARY_STYLES)]
        rows = []
        for row in truth_rows:
            if not maybe(rng, rng.uniform(0.5, 0.85)):
                continue
            title = style(str(row["title"]), str(row["city"]))
            if maybe(rng, 0.15):
                title = misspell(title, rng)
            posted = _dt.date.fromisoformat(str(row["posted"]))
            if maybe(rng, expired_rate):
                posted = posted - _dt.timedelta(days=rng.randint(45, 120))
            salary = float(row["salary"])  # boards round differently
            if maybe(rng, 0.2):
                salary = round(salary * rng.uniform(0.95, 1.05), -3)
            rows.append(
                {
                    "_truth": row["job_id"],
                    "position": title,
                    "employer": row["company"],
                    "location": row["city"],
                    "pay": salary_style(salary),
                    "listed": posted.isoformat(),
                    "link": f"https://{board}.example.com/{row['job_id']}",
                }
            )
        board_rows[board] = rows
    return JobWorld(ground_truth, board_rows, today)


def job_ontology():
    """A small recruitment ontology for the data context."""
    from repro.context.ontology import Ontology

    onto = Ontology("jobs")
    onto.add_concept("Thing")
    onto.add_concept("JobPosting", parent="Thing",
                     synonyms=["vacancy", "position", "opening", "role"])
    onto.add_property(
        "title", "JobPosting", DataType.STRING,
        synonyms=["position", "role", "job title"],
    )
    onto.add_property(
        "company", "JobPosting", DataType.STRING,
        synonyms=["employer", "organisation", "hiring company"],
    )
    onto.add_property(
        "city", "JobPosting", DataType.STRING,
        synonyms=["location", "place", "job location"],
    )
    onto.add_property(
        "salary", "JobPosting", DataType.CURRENCY,
        synonyms=["pay", "compensation", "wage"],
    )
    onto.add_property(
        "posted", "JobPosting", DataType.DATE,
        synonyms=["listed", "published", "date posted"],
    )
    onto.add_property(
        "url", "JobPosting", DataType.URL, synonyms=["link", "apply at"],
    )
    return onto
