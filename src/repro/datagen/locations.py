"""The business-locations world (paper Example 3).

Social networks acquire business locations from check-ins, which "is prone
to data quality problems, e.g., wrong geo-locations, misspelled or fantasy
places"; curated directories are expensive and not guaranteed clean; the
businesses' own websites are the authoritative long tail.  This generator
produces all three source families over one ground truth so the
context-informed extraction/cleaning claims can be measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.corrupt import jitter_geo, maybe, misspell
from repro.model.records import Table
from repro.model.schema import Attribute, DataType, Schema

__all__ = ["LocationWorld", "generate_location_world", "LOCATION_SCHEMA"]

LOCATION_SCHEMA = Schema(
    (
        Attribute("business", DataType.STRING, required=True),
        Attribute("category", DataType.STRING),
        Attribute("street", DataType.STRING),
        Attribute("city", DataType.STRING, required=True),
        Attribute("postcode", DataType.STRING),
        Attribute("phone", DataType.STRING),
        Attribute("geo", DataType.GEO),
        Attribute("url", DataType.URL),
    )
)

_CITIES = {
    "Oxford": (51.752, -1.2577),
    "Edinburgh": (55.9533, -3.1883),
    "Birmingham": (52.4862, -1.8904),
    "Manchester": (53.4808, -2.2426),
    "London": (51.5074, -0.1278),
}
_CATEGORIES = ("restaurant", "cafe", "cinema", "gym", "bookshop", "bar")
_NAME_PARTS = (
    "Golden", "Royal", "Old", "Corner", "Velvet", "Urban", "Happy", "Silver",
)
_NAME_NOUNS = ("Fork", "Bean", "Screen", "Page", "Lion", "Anchor", "Garden")
_STREETS = ("High St", "Church Rd", "Station Rd", "Mill Lane", "Park Ave")


@dataclass
class LocationWorld:
    """Ground truth plus the three source families of Example 3."""

    ground_truth: Table
    checkin_rows: list[dict[str, object]]
    directory_rows: list[dict[str, object]]
    website_rows: list[dict[str, object]]

    def truth_by_id(self) -> dict[str, dict[str, object]]:
        """Ground-truth rows keyed by business id."""
        return {
            record.raw("business_id"): record.to_dict()
            for record in self.ground_truth
        }


def _postcode(rng: random.Random, city: str) -> str:
    prefix = {"Oxford": "OX", "Edinburgh": "EH", "Birmingham": "B",
              "Manchester": "M", "London": "SW"}[city]
    return f"{prefix}{rng.randint(1, 20)} {rng.randint(1, 9)}{rng.choice('ABCDEFG')}{rng.choice('ABCDEFG')}"


def generate_location_world(
    n_businesses: int = 80,
    seed: int = 7,
    checkin_geo_error: float = 0.25,
    checkin_fantasy_rate: float = 0.08,
    directory_staleness: float = 0.1,
) -> LocationWorld:
    """Generate the Example 3 world, deterministic per seed."""
    rng = random.Random(seed)
    truth_rows = []
    for index in range(n_businesses):
        city = rng.choice(sorted(_CITIES))
        base_lat, base_lon = _CITIES[city]
        lat, lon = jitter_geo(base_lat, base_lon, rng, magnitude=0.02)
        name = (
            f"The {rng.choice(_NAME_PARTS)} {rng.choice(_NAME_NOUNS)}"
            f" {rng.randint(1, 99) if maybe(rng, 0.2) else ''}".strip()
        )
        slug = name.lower().replace(" ", "-")
        truth_rows.append(
            {
                "business_id": f"B{index:04d}",
                "business": name,
                "category": rng.choice(_CATEGORIES),
                "street": f"{rng.randint(1, 200)} {rng.choice(_STREETS)}",
                "city": city,
                "postcode": _postcode(rng, city),
                "phone": f"+44 {rng.randint(1000, 9999)} {rng.randint(100000, 999999)}",
                "geo": f"{lat}, {lon}",
                "url": f"https://{slug}.example.co.uk",
            }
        )
    ground_truth = Table.from_rows("locations-truth", truth_rows, source="ground-truth")

    # Check-in source: broad coverage, noisy geo, misspellings, fantasy rows.
    checkin_rows: list[dict[str, object]] = []
    for row in truth_rows:
        if not maybe(rng, 0.9):
            continue
        lat, lon = (float(part) for part in str(row["geo"]).split(","))
        if maybe(rng, checkin_geo_error):
            lat, lon = jitter_geo(lat, lon, rng, magnitude=0.5)
        name = str(row["business"])
        if maybe(rng, 0.2):
            name = misspell(name, rng)
        checkin_rows.append(
            {
                "_truth": row["business_id"],
                "place": name,
                "kind": row["category"],
                "town": row["city"],
                "coords": f"{lat}, {lon}",
                "checkins": rng.randint(1, 500),
            }
        )
    for index in range(int(n_businesses * checkin_fantasy_rate)):
        city = rng.choice(sorted(_CITIES))
        lat, lon = jitter_geo(*_CITIES[city], rng, magnitude=0.1)
        checkin_rows.append(
            {
                "_truth": None,  # fantasy place: no true business
                "place": f"{rng.choice(_NAME_PARTS)}town {rng.choice(_NAME_NOUNS)}land",
                "kind": rng.choice(_CATEGORIES),
                "town": city,
                "coords": f"{lat}, {lon}",
                "checkins": rng.randint(1, 20),
            }
        )
    rng.shuffle(checkin_rows)

    # Curated directory: expensive, mostly clean, partial coverage.
    directory_rows = []
    for row in truth_rows:
        if not maybe(rng, 0.6):
            continue
        entry = {
            "_truth": row["business_id"],
            "name": row["business"],
            "category": row["category"],
            "address": f"{row['street']}, {row['city']} {row['postcode']}",
            "telephone": row["phone"],
            "location": row["geo"],
        }
        if maybe(rng, directory_staleness):
            entry["telephone"] = None
        directory_rows.append(entry)

    # Business websites: authoritative but must be wrapped per site.
    website_rows = []
    for row in truth_rows:
        if not maybe(rng, 0.75):
            continue
        website_rows.append(
            {
                "_truth": row["business_id"],
                "business": row["business"],
                "category": row["category"],
                "street": row["street"],
                "city": row["city"],
                "postcode": row["postcode"],
                "phone": row["phone"],
                "geo": row["geo"],
                "url": row["url"],
            }
        )

    return LocationWorld(ground_truth, checkin_rows, directory_rows, website_rows)
