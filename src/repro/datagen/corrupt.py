"""Noise primitives: the Veracity knob of the synthetic worlds.

"Veracity represents the uncertainty that is inevitable in such a complex
environment" (Section 1).  Every generator injects errors through these
primitives so that error rates are controlled, seeded, and reported to
EXPERIMENTS.md alongside the measured results.
"""

from __future__ import annotations

import datetime as _dt
import random
import string

__all__ = [
    "misspell",
    "perturb_price",
    "format_price",
    "format_date",
    "jitter_geo",
    "maybe",
]


def maybe(rng: random.Random, probability: float) -> bool:
    """True with the given probability."""
    return rng.random() < probability


def misspell(text: str, rng: random.Random) -> str:
    """Introduce one realistic typo: swap, drop, double, or replace a char."""
    if len(text) < 3:
        return text
    index = rng.randrange(1, len(text) - 1)
    kind = rng.choice(("swap", "drop", "double", "replace"))
    if kind == "swap":
        chars = list(text)
        chars[index], chars[index - 1] = chars[index - 1], chars[index]
        return "".join(chars)
    if kind == "drop":
        return text[:index] + text[index + 1:]
    if kind == "double":
        return text[:index] + text[index] + text[index:]
    return text[:index] + rng.choice(string.ascii_lowercase) + text[index + 1:]


def perturb_price(price: float, rng: random.Random, spread: float = 0.15) -> float:
    """A wrong price: multiplicative noise of up to ``spread``, or a
    magnitude error (off by 10x) once in twenty times."""
    if maybe(rng, 0.05):
        return round(price * rng.choice((0.1, 10.0)), 2)
    factor = 1.0 + rng.uniform(-spread, spread)
    return max(0.01, round(price * factor, 2))


_PRICE_STYLES = (
    lambda p: f"${p:,.2f}",
    lambda p: f"£{p:,.2f}",
    lambda p: f"{p:.2f} USD",
    lambda p: f"€ {p:.2f}",
    lambda p: f"${p:.0f}" if float(p) == int(p) else f"${p:.2f}",
)


def format_price(price: float, rng: random.Random) -> str:
    """Render a price in one of several real-world formats (Variety)."""
    return rng.choice(_PRICE_STYLES)(price)


_DATE_STYLES = ("%Y-%m-%d", "%d/%m/%Y", "%b %d, %Y")


def format_date(date: _dt.date, rng: random.Random) -> str:
    """Render a date in one of several formats (Variety)."""
    return date.strftime(rng.choice(_DATE_STYLES))


def jitter_geo(
    lat: float, lon: float, rng: random.Random, magnitude: float = 0.05
) -> tuple[float, float]:
    """Displace a coordinate pair — Example 3's "wrong geo-locations"."""
    return (
        round(lat + rng.uniform(-magnitude, magnitude), 6),
        round(lon + rng.uniform(-magnitude, magnitude), 6),
    )
