"""Built-in domain ontologies standing in for schema.org / productontology.

Example 4: "there are standard formats, for example in schema.org, for
describing products and offers, and there are ontologies that describe
products, such as The Product Types Ontology".  These builders produce the
equivalents our data contexts attach.
"""

from __future__ import annotations

from repro.context.ontology import Ontology
from repro.model.schema import DataType

__all__ = ["product_ontology", "location_ontology"]


def product_ontology() -> Ontology:
    """A product-domain ontology covering the price-intelligence world."""
    onto = Ontology("products")
    onto.add_concept("Thing")
    onto.add_concept("Product", parent="Thing", synonyms=["item", "article", "good"])
    onto.add_concept("Offer", parent="Thing", synonyms=["deal", "listing"])
    onto.add_concept(
        "Electronics", parent="Product", synonyms=["electronic device"]
    )
    for name, synonyms in (
        ("Television", ["tv", "tv set", "telly"]),
        ("Laptop", ["notebook", "portable computer"]),
        ("Headphones", ["earphones", "headset"]),
        ("Camera", ["digital camera"]),
        ("Smartphone", ["mobile phone", "cell phone", "phone"]),
        ("Tablet", ["tablet computer", "pad"]),
        ("Monitor", ["display", "screen"]),
        ("Printer", []),
    ):
        onto.add_concept(name, parent="Electronics", synonyms=synonyms)

    onto.add_property(
        "product", "Product", DataType.STRING,
        synonyms=["name", "title", "product name", "product_name"],
    )
    onto.add_property(
        "brand", "Product", DataType.STRING,
        synonyms=["manufacturer", "make", "brand name", "brand_name"],
    )
    onto.add_property(
        "category", "Product", DataType.STRING,
        synonyms=["dept", "department", "cat", "product category",
                  "product_category", "type"],
    )
    onto.add_property(
        "price", "Offer", DataType.CURRENCY,
        synonyms=["cost", "offer price", "offer_price", "current price",
                  "current_price", "amount"],
    )
    onto.add_property(
        "url", "Offer", DataType.URL,
        synonyms=["link", "product url", "product_url", "page url", "page_url"],
    )
    onto.add_property(
        "updated", "Offer", DataType.DATE,
        synonyms=["last seen", "last_seen", "ts", "timestamp", "date",
                  "price checked on", "price_checked_on"],
    )
    return onto


def location_ontology() -> Ontology:
    """A local-business ontology covering the locations world."""
    onto = Ontology("locations")
    onto.add_concept("Place")
    onto.add_concept(
        "LocalBusiness", parent="Place", synonyms=["business", "venue", "place"]
    )
    for name, synonyms in (
        ("Restaurant", ["diner", "eatery"]),
        ("Cafe", ["coffee shop", "coffeehouse"]),
        ("Cinema", ["movie theater", "picture house"]),
        ("Gym", ["fitness center"]),
        ("Bookshop", ["bookstore"]),
        ("Bar", ["pub", "tavern"]),
    ):
        onto.add_concept(name, parent="LocalBusiness", synonyms=synonyms)

    onto.add_property(
        "business", "LocalBusiness", DataType.STRING,
        synonyms=["name", "place", "venue name"],
    )
    onto.add_property(
        "category", "LocalBusiness", DataType.STRING,
        synonyms=["kind", "type", "business type"],
    )
    onto.add_property(
        "street", "LocalBusiness", DataType.STRING,
        synonyms=["address", "street address"],
    )
    onto.add_property(
        "city", "LocalBusiness", DataType.STRING, synonyms=["town", "locality"]
    )
    onto.add_property(
        "postcode", "LocalBusiness", DataType.STRING,
        synonyms=["postal code", "zip", "zip code"],
    )
    onto.add_property(
        "phone", "LocalBusiness", DataType.STRING,
        synonyms=["telephone", "tel", "phone number"],
    )
    onto.add_property(
        "geo", "LocalBusiness", DataType.GEO,
        synonyms=["coords", "coordinates", "location", "latlon", "lat long"],
    )
    onto.add_property(
        "url", "LocalBusiness", DataType.URL,
        synonyms=["website", "homepage", "web"],
    )
    return onto
