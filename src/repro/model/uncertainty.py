"""Uncertainty representation and evidence combination.

The paper insists that "uncertainty is represented explicitly and reasoned
with systematically" (Section 4.2): sources are unreliable, extraction rules
are tentative, ontologies are approximate, and feedback itself may be wrong.
This module provides the shared algebra every component uses:

* confidences are probabilities in ``[0, 1]``;
* independent supporting evidence combines by *noisy-or*;
* weighted, possibly conflicting evidence combines by *log-odds pooling*;
* Bayes updates fold a likelihood-ratio observation into a prior;
* :class:`BetaReliability` tracks the reliability of a source, wrapper, or
  crowd worker as a Beta posterior over observed successes/failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "clamp",
    "noisy_or",
    "log_odds_pool",
    "bayes_update",
    "Evidence",
    "pool_evidence",
    "BetaReliability",
]

# Confidences are clamped away from hard 0/1 so log-odds stay finite and a
# single overconfident component can never veto all other evidence.
_EPSILON = 1e-6


def clamp(p: float, low: float = 0.0, high: float = 1.0) -> float:
    """Clamp ``p`` into ``[low, high]``."""
    return max(low, min(high, p))


def noisy_or(probabilities: Iterable[float]) -> float:
    """Combine independent supporting evidence.

    Each probability is the chance that one piece of evidence alone
    establishes the fact; the result is the chance that at least one does.
    An empty iterable yields 0.0 (no evidence, no belief).
    """
    survival = 1.0
    for p in probabilities:
        survival *= 1.0 - clamp(p)
    return 1.0 - survival


def _logit(p: float) -> float:
    p = clamp(p, _EPSILON, 1.0 - _EPSILON)
    return math.log(p / (1.0 - p))


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


def log_odds_pool(
    probabilities: Sequence[float],
    weights: Sequence[float] | None = None,
    prior: float = 0.5,
) -> float:
    """Pool conflicting evidence as a weighted sum of log-odds.

    Probabilities above ``prior`` push belief up, below push it down; the
    weights let the caller discount less reliable evidence (e.g. crowd
    feedback vs expert feedback).  With no evidence the prior is returned.
    """
    if weights is None:
        weights = [1.0] * len(probabilities)
    if len(weights) != len(probabilities):
        raise ValueError("weights and probabilities must have equal length")
    total = _logit(prior)
    for p, w in zip(probabilities, weights):
        total += w * (_logit(p) - _logit(prior))
    return _sigmoid(total)


def bayes_update(prior: float, likelihood_true: float, likelihood_false: float) -> float:
    """Posterior of a fact after observing evidence with the given likelihoods.

    ``likelihood_true`` is P(observation | fact holds) and
    ``likelihood_false`` is P(observation | fact does not hold).
    """
    prior = clamp(prior, _EPSILON, 1.0 - _EPSILON)
    numerator = likelihood_true * prior
    denominator = numerator + likelihood_false * (1.0 - prior)
    if denominator <= 0.0:
        return prior
    return numerator / denominator


@dataclass(frozen=True)
class Evidence:
    """One piece of evidence about a proposition.

    ``confidence`` is the probability the proposition holds given only this
    evidence; ``weight`` scales its influence when pooled; ``kind`` names
    the evidence channel (``"name-similarity"``, ``"ontology"``,
    ``"feedback"``, ...) so ablation experiments can switch channels off.
    """

    kind: str
    confidence: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"evidence confidence must be in [0,1], got {self.confidence}"
            )
        if self.weight < 0.0:
            raise ValueError(f"evidence weight must be >= 0, got {self.weight}")


def pool_evidence(
    evidence: Sequence[Evidence],
    prior: float = 0.5,
    method: str = "log-odds",
) -> float:
    """Combine a bag of :class:`Evidence` into a single confidence.

    ``method`` is ``"log-odds"`` (default; handles conflict) or
    ``"noisy-or"`` (supporting evidence only, ignores weights below 1 by
    scaling confidences).
    """
    if not evidence:
        return prior
    if method == "log-odds":
        return log_odds_pool(
            [e.confidence for e in evidence],
            [e.weight for e in evidence],
            prior=prior,
        )
    if method == "noisy-or":
        return noisy_or(e.confidence * min(e.weight, 1.0) for e in evidence)
    raise ValueError(f"unknown pooling method: {method!r}")


@dataclass
class BetaReliability:
    """Beta-posterior reliability of a source, wrapper, or worker.

    Starts from a weakly informative Beta(alpha, beta) prior and is updated
    with observed successes and failures (e.g. feedback saying an extracted
    value was right or wrong).  ``mean`` is the point estimate used by the
    rest of the system; ``credible_interval`` quantifies how much evidence
    backs it, which the pay-as-you-go planner uses to decide where the next
    unit of feedback is most valuable.
    """

    alpha: float = 1.0
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("Beta parameters must be positive")

    @property
    def mean(self) -> float:
        """Posterior mean reliability."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def strength(self) -> float:
        """Total pseudo-observations backing the estimate."""
        return self.alpha + self.beta

    @property
    def variance(self) -> float:
        """Posterior variance of the reliability."""
        total = self.alpha + self.beta
        return (self.alpha * self.beta) / (total * total * (total + 1.0))

    def update(self, success: bool, weight: float = 1.0) -> None:
        """Fold in one observation (optionally fractionally weighted)."""
        if weight < 0:
            raise ValueError("observation weight must be >= 0")
        if success:
            self.alpha += weight
        else:
            self.beta += weight

    def credible_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation credible interval for the reliability."""
        spread = z * math.sqrt(self.variance)
        return (clamp(self.mean - spread), clamp(self.mean + spread))

    def copy(self) -> "BetaReliability":
        """An independent copy of this posterior."""
        return BetaReliability(self.alpha, self.beta)
