"""Schemas, attributes, and data-type inference for the working data layer.

The paper's architecture requires "a uniform representation for the results
of the different components" (Section 4.2).  Tables flowing between
extraction, integration, and cleaning components all carry a
:class:`Schema`, and every cell is typed with a :class:`DataType` inferred
by :func:`infer_type` so that downstream components (matching, fusion,
quality analysis) can reason over heterogeneous sources uniformly.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError, TypeInferenceError

__all__ = [
    "DataType",
    "Attribute",
    "Schema",
    "infer_type",
    "infer_column_type",
    "coerce",
    "Coercibility",
    "static_coercibility",
]


class DataType(str, Enum):
    """The data types recognised by the wrangler's type system.

    ``CURRENCY`` and ``URL`` get first-class treatment because the paper's
    running example is e-commerce price intelligence, where prices and
    product page links dominate the payload.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    CURRENCY = "currency"
    URL = "url"
    GEO = "geo"

    def is_numeric(self) -> bool:
        """Return ``True`` for types on which arithmetic is meaningful."""
        return self in (DataType.INTEGER, DataType.FLOAT, DataType.CURRENCY)


_BOOL_LITERALS = {
    "true": True,
    "false": False,
    "yes": True,
    "no": False,
    "y": True,
    "n": False,
}

_INT_RE = re.compile(r"^[+-]?\d{1,15}$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_CURRENCY_RE = re.compile(
    r"^\s*(?P<sym>[$€£¥]|USD|EUR|GBP)?\s*"
    r"(?P<amount>[+-]?\d{1,3}(,\d{3})+(\.\d+)?|[+-]?\d+(\.\d+)?)\s*"
    r"(?P<kilo>[kK])?\s*"
    r"(?P<sym2>[$€£¥]|USD|EUR|GBP)?\s*$"
)
_URL_RE = re.compile(r"^https?://[^\s]+$", re.IGNORECASE)
_DATE_FORMATS = (
    "%Y-%m-%d",
    "%d/%m/%Y",
    "%m/%d/%Y",
    "%Y/%m/%d",
    "%d %b %Y",
    "%d %B %Y",
    "%b %d, %Y",
)
_GEO_RE = re.compile(
    r"^\s*[+-]?\d{1,2}(\.\d+)?\s*,\s*[+-]?\d{1,3}(\.\d+)?\s*$"
)


def _parse_date(text: str) -> _dt.date | None:
    for fmt in _DATE_FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    return None


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a single raw value.

    Python-native values map directly; strings are probed against literal
    grammars in decreasing order of specificity (URL, geo pair, date,
    currency, boolean, integer, float) and fall back to ``STRING``.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, (_dt.date, _dt.datetime)):
        return DataType.DATE
    if isinstance(value, tuple) and len(value) == 2 and all(
        isinstance(part, (int, float)) for part in value
    ):
        return DataType.GEO
    if not isinstance(value, str):
        return DataType.STRING
    text = value.strip()
    if not text:
        return DataType.STRING
    if _URL_RE.match(text):
        return DataType.URL
    if _GEO_RE.match(text):
        return DataType.GEO
    if _parse_date(text) is not None:
        return DataType.DATE
    if text.lower() in _BOOL_LITERALS:
        return DataType.BOOLEAN
    if _INT_RE.match(text):
        return DataType.INTEGER
    if _FLOAT_RE.match(text):
        return DataType.FLOAT
    match = _CURRENCY_RE.match(text)
    if match and (match.group("sym") or match.group("sym2")):
        return DataType.CURRENCY
    return DataType.STRING


def infer_column_type(values: Iterable[Any], threshold: float = 0.8) -> DataType:
    """Infer the type of a whole column by majority vote over non-null cells.

    A specific type is adopted only if at least ``threshold`` of the
    non-null values agree on it (numeric types are pooled: a column that is
    mostly ``INTEGER`` with some ``FLOAT`` becomes ``FLOAT``).  Otherwise
    the column degrades to ``STRING`` — the safe supertype.
    """
    counts: dict[DataType, int] = {}
    total = 0
    for value in values:
        if value is None or (isinstance(value, str) and not value.strip()):
            continue
        total += 1
        dtype = infer_type(value)
        counts[dtype] = counts.get(dtype, 0) + 1
    if total == 0:
        return DataType.STRING
    best = max(counts, key=lambda d: counts[d])
    if counts[best] / total >= threshold:
        return best
    numeric = sum(counts.get(d, 0) for d in (DataType.INTEGER, DataType.FLOAT))
    if numeric / total >= threshold:
        return DataType.FLOAT
    if (numeric + counts.get(DataType.CURRENCY, 0)) / total >= threshold:
        return DataType.CURRENCY
    return DataType.STRING


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to the Python-native form of ``dtype``.

    ``None`` passes through unchanged (missing stays missing).  Raises
    :class:`TypeInferenceError` when the value cannot represent the type —
    errors never pass silently into the wrangled data.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.STRING:
            return value if isinstance(value, str) else str(value)
        if dtype is DataType.INTEGER:
            if isinstance(value, bool):
                raise ValueError("booleans are not integers")
            return int(str(value).strip())
        if dtype is DataType.FLOAT:
            return float(str(value).strip())
        if dtype is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            literal = str(value).strip().lower()
            if literal in _BOOL_LITERALS:
                return _BOOL_LITERALS[literal]
            raise ValueError(f"not a boolean literal: {value!r}")
        if dtype is DataType.DATE:
            if isinstance(value, _dt.datetime):
                return value.date()
            if isinstance(value, _dt.date):
                return value
            parsed = _parse_date(str(value).strip())
            if parsed is None:
                raise ValueError(f"not a date: {value!r}")
            return parsed
        if dtype is DataType.CURRENCY:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            match = _CURRENCY_RE.match(str(value))
            if not match:
                raise ValueError(f"not a currency amount: {value!r}")
            amount = float(match.group("amount").replace(",", ""))
            if match.group("kilo"):
                amount *= 1000.0
            return amount
        if dtype is DataType.URL:
            text = str(value).strip()
            if not _URL_RE.match(text):
                raise ValueError(f"not a URL: {value!r}")
            return text
        if dtype is DataType.GEO:
            if isinstance(value, tuple) and len(value) == 2:
                return (float(value[0]), float(value[1]))
            parts = str(value).split(",")
            if len(parts) != 2:
                raise ValueError(f"not a lat,lon pair: {value!r}")
            return (float(parts[0]), float(parts[1]))
    except (ValueError, TypeError) as exc:
        raise TypeInferenceError(
            f"cannot coerce {value!r} to {dtype.value}"
        ) from exc
    raise TypeInferenceError(f"unknown data type: {dtype!r}")


class Coercibility(str, Enum):
    """How a :func:`coerce` from one :class:`DataType` to another can go.

    The static counterpart of :func:`coerce`'s runtime behaviour, used by
    the schema-flow type checker: ``ALWAYS`` means every well-typed value
    of the source type coerces, ``NEVER`` means no such value can (the
    coercion is a guaranteed :class:`TypeInferenceError`), and ``MAYBE``
    means the outcome depends on the individual value — statically silent.
    """

    ALWAYS = "always"
    MAYBE = "maybe"
    NEVER = "never"


#: Cross-type coercions that succeed for every well-typed source value.
_ALWAYS_COERCIBLE = frozenset(
    {
        (DataType.INTEGER, DataType.FLOAT),
        (DataType.INTEGER, DataType.CURRENCY),
        (DataType.FLOAT, DataType.CURRENCY),
    }
)

#: Cross-type coercions whose outcome depends on the individual value
#: (e.g. a CURRENCY column may hold plain numbers alongside "$1,200").
_MAYBE_COERCIBLE = frozenset(
    {
        (DataType.CURRENCY, DataType.FLOAT),
        (DataType.CURRENCY, DataType.INTEGER),
    }
)


def static_coercibility(src: DataType, dst: DataType) -> Coercibility:
    """Whether values of type ``src`` can :func:`coerce` to ``dst``.

    Identity and coercion *to* STRING always succeed (``str()`` accepts
    anything); coercion *from* STRING is value-dependent; the numeric
    widenings INTEGER→FLOAT/CURRENCY and FLOAT→CURRENCY always succeed.
    Everything else is a guaranteed failure — ``coerce`` raises on e.g.
    BOOLEAN→INTEGER and FLOAT→INTEGER by design, so the type checker can
    report those pairings before a single value flows.
    """
    if src is dst:
        return Coercibility.ALWAYS
    if dst is DataType.STRING:
        return Coercibility.ALWAYS
    if src is DataType.STRING:
        return Coercibility.MAYBE
    if (src, dst) in _ALWAYS_COERCIBLE:
        return Coercibility.ALWAYS
    if (src, dst) in _MAYBE_COERCIBLE:
        return Coercibility.MAYBE
    return Coercibility.NEVER


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a :class:`Schema`.

    ``required`` marks attributes whose absence counts against the
    completeness quality dimension; ``description`` feeds ontology-assisted
    matching with human-readable hints.
    """

    name: str
    dtype: DataType = DataType.STRING
    required: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def renamed(self, name: str) -> "Attribute":
        """Return a copy of this attribute under a new name."""
        return Attribute(name, self.dtype, self.required, self.description)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named :class:`Attribute` objects."""

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [attr.name for attr in self.attributes]
        if len(names) != len(set(names)):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise SchemaError(f"duplicate attribute names: {duplicates}")

    @classmethod
    def of(cls, *specs: "Attribute | str | tuple[str, DataType]") -> "Schema":
        """Build a schema from a mix of attribute specs.

        Accepts :class:`Attribute` instances, bare names (typed ``STRING``),
        or ``(name, dtype)`` pairs.
        """
        attrs: list[Attribute] = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            elif isinstance(spec, str):
                attrs.append(Attribute(spec))
            else:
                name, dtype = spec
                attrs.append(Attribute(name, dtype))
        return cls(tuple(attrs))

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]]) -> "Schema":
        """Infer a schema from raw dict rows using column-level type voting."""
        if not rows:
            return cls(())
        names: list[str] = []
        for row in rows:
            for name in row:
                if name not in names:
                    names.append(name)
        attrs = tuple(
            Attribute(name, infer_column_type(row.get(name) for row in rows))
            for name in names
        )
        return cls(attrs)

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(attr.name for attr in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute named {name!r}")

    def get(self, name: str) -> Attribute | None:
        """Return the attribute named ``name``, or ``None``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``names``, in the given order."""
        return Schema(tuple(self[name] for name in names))

    def extend(self, *attrs: Attribute) -> "Schema":
        """Return a schema with ``attrs`` appended."""
        return Schema(self.attributes + tuple(attrs))

    def rename(self, renames: Mapping[str, str]) -> "Schema":
        """Return a schema with attributes renamed per ``renames``."""
        return Schema(
            tuple(
                attr.renamed(renames.get(attr.name, attr.name))
                for attr in self.attributes
            )
        )

    def merge(self, other: "Schema") -> "Schema":
        """Union of two schemas; shared names must agree on dtype."""
        attrs = list(self.attributes)
        for attr in other.attributes:
            existing = self.get(attr.name)
            if existing is None:
                attrs.append(attr)
            elif existing.dtype is not attr.dtype:
                raise SchemaError(
                    f"attribute {attr.name!r} has conflicting types: "
                    f"{existing.dtype.value} vs {attr.dtype.value}"
                )
        return Schema(tuple(attrs))
