"""Annotated cell values: raw data + type + confidence + provenance.

Every cell flowing through the wrangler is a :class:`Value`, so uncertainty
and lineage are never lost between components — the "working data" of the
paper's Figure 1 is built from these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.model.provenance import Provenance, Step
from repro.model.schema import DataType, infer_type

__all__ = ["Value", "MISSING"]


@dataclass(frozen=True)
class Value:
    """An immutable annotated cell value.

    ``raw`` is the Python-native payload (``None`` for missing), ``dtype``
    its inferred or declared type, ``confidence`` the probability that the
    value is correct, and ``provenance`` the tree of wrangling steps that
    produced it.
    """

    raw: Any
    dtype: DataType = DataType.STRING
    confidence: float = 1.0
    provenance: Provenance = Provenance.generated()

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"value confidence must be in [0,1], got {self.confidence}"
            )

    @classmethod
    def of(
        cls,
        raw: Any,
        provenance: Provenance | None = None,
        confidence: float = 1.0,
        dtype: DataType | None = None,
    ) -> "Value":
        """Build a value, inferring the dtype from ``raw`` when not given."""
        if dtype is None:
            dtype = infer_type(raw) if raw is not None else DataType.STRING
        if provenance is None:
            provenance = Provenance.generated()
        return cls(raw, dtype, confidence, provenance)

    @property
    def is_missing(self) -> bool:
        """True when the cell holds no data."""
        return self.raw is None or (
            isinstance(self.raw, str) and not self.raw.strip()
        )

    def with_confidence(self, confidence: float) -> "Value":
        """A copy of this value with a different confidence."""
        return replace(self, confidence=confidence)

    def with_raw(self, raw: Any, step: Step, ref: str) -> "Value":
        """A copy holding new payload, with provenance extended by ``step``."""
        return Value(
            raw,
            infer_type(raw) if raw is not None else self.dtype,
            self.confidence,
            self.provenance.derive(step, ref),
        )

    def derived(self, step: Step, ref: str, confidence: float | None = None) -> "Value":
        """A copy whose provenance records one more wrangling step."""
        return Value(
            self.raw,
            self.dtype,
            self.confidence if confidence is None else confidence,
            self.provenance.derive(step, ref),
        )

    def same_raw(self, other: "Value") -> bool:
        """Payload equality, ignoring annotations."""
        return self.raw == other.raw

    def __str__(self) -> str:
        return "" if self.raw is None else str(self.raw)


#: Canonical missing value (no payload, zero information content).
MISSING = Value(None, DataType.STRING, 1.0, Provenance.generated("missing"))
