"""The working-data store at the centre of the paper's Figure 1.

All intermediate results of the wrangling process — extracted tables,
matches, mappings, wrappers, fused entities — are stored here "for
on-demand recombination, depending on the user context and the potentially
continually evolving data context" (Section 4.2).  The store is a typed
blackboard: artifacts live under ``category/key`` addresses, carry
versions, and changes are observable so the incremental dataflow engine can
invalidate exactly the dependent computations.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import CheckpointError
from repro.model.annotations import AnnotationStore
from repro.model.provenance import Provenance, Step
from repro.model.records import Record, Table
from repro.model.schema import Attribute, DataType, Schema
from repro.model.values import Value

__all__ = [
    "ArtifactKey",
    "SNAPSHOT_VERSION",
    "WorkingData",
    "canonical_bytes",
    "content_digest",
    "decode_table",
    "encode_table",
    "row_digest",
    "table_fingerprint",
    "tag_raw",
    "untag_raw",
]


@dataclass(frozen=True, order=True)
class ArtifactKey:
    """The address of one artifact in the working data."""

    category: str
    key: str

    def __str__(self) -> str:
        return f"{self.category}:{self.key}"


@dataclass
class _Entry:
    value: Any
    version: int = 1


class WorkingData:
    """A versioned blackboard of wrangling artifacts plus quality annotations.

    Categories used by the framework (others are free for applications):

    * ``table`` — extracted / mapped / fused :class:`~repro.model.records.Table`
    * ``match`` — schema correspondences
    * ``mapping`` — schema mappings
    * ``wrapper`` — induced extraction wrappers
    * ``entity`` — resolved/fused entities
    * ``report`` — quality reports
    """

    def __init__(self) -> None:
        self._entries: dict[ArtifactKey, _Entry] = {}
        self.annotations = AnnotationStore()
        self._listeners: list[Callable[[ArtifactKey], None]] = []

    def put(self, category: str, key: str, value: Any) -> ArtifactKey:
        """Store (or overwrite) an artifact; bumps its version and notifies
        change listeners."""
        akey = ArtifactKey(category, key)
        entry = self._entries.get(akey)
        if entry is None:
            self._entries[akey] = _Entry(value)
        else:
            entry.value = value
            entry.version += 1
        for listener in self._listeners:
            listener(akey)
        return akey

    def get(self, category: str, key: str, default: Any = None) -> Any:
        """The artifact at ``category:key``, or ``default``."""
        entry = self._entries.get(ArtifactKey(category, key))
        return default if entry is None else entry.value

    def require(self, category: str, key: str) -> Any:
        """The artifact at ``category:key``; raises ``KeyError`` if absent."""
        akey = ArtifactKey(category, key)
        if akey not in self._entries:
            raise KeyError(f"no artifact at {akey}")
        return self._entries[akey].value

    def version(self, category: str, key: str) -> int:
        """The artifact's version (0 when absent)."""
        entry = self._entries.get(ArtifactKey(category, key))
        return 0 if entry is None else entry.version

    def contains(self, category: str, key: str) -> bool:
        """Whether an artifact exists at ``category:key``."""
        return ArtifactKey(category, key) in self._entries

    def remove(self, category: str, key: str) -> bool:
        """Delete an artifact; returns whether it existed."""
        akey = ArtifactKey(category, key)
        existed = self._entries.pop(akey, None) is not None
        if existed:
            for listener in self._listeners:
                listener(akey)
        return existed

    def keys(self, category: str | None = None) -> list[ArtifactKey]:
        """All artifact keys, optionally restricted to one category."""
        if category is None:
            return sorted(self._entries)
        return sorted(k for k in self._entries if k.category == category)

    def items(self, category: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs within one category."""
        for akey in self.keys(category):
            yield akey.key, self._entries[akey].value

    def on_change(self, listener: Callable[[ArtifactKey], None]) -> None:
        """Register a callback invoked with the key of every change."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._entries)

    def summary(self) -> dict[str, int]:
        """Artifact counts per category."""
        counts: dict[str, int] = {}
        for akey in self._entries:
            counts[akey.category] = counts.get(akey.category, 0) + 1
        return dict(sorted(counts.items()))

    def table_fingerprints(self) -> dict[str, str]:
        """Content fingerprint of every ``table`` artifact.

        The cross-run identity of the working data: two runs whose
        fingerprints match produced logically identical tables, however
        the process-local record ids happened to be minted.  The crash
        recovery suite asserts a resumed run against an uninterrupted
        one through exactly this view.
        """
        return {
            key: table_fingerprint(value)
            for key, value in self.items("table")
            if isinstance(value, Table)
        }


# -- versioned working-data snapshots ------------------------------------
#
# Tables must leave (and re-enter) the process without losing what makes
# them working data: per-cell dtype, confidence, and the full provenance
# tree.  The codec below is exact — ``decode_table(encode_table(t))``
# reproduces every cell byte-for-byte — and content addressing hashes the
# canonical JSON form, so a snapshot id names the data it stores.

#: Version stamp carried by every encoded snapshot payload; bump on any
#: change to the encoding so old stores are detected, not misread.
SNAPSHOT_VERSION = 1

#: Type tag key for raw payloads JSON cannot express natively.
_TAG = "__repro__"


def tag_raw(raw: Any) -> Any:
    """A JSON-able stand-in for one raw payload (cell or cursor value)."""
    if isinstance(raw, _dt.datetime):
        return {_TAG: "datetime", "value": raw.isoformat()}
    if isinstance(raw, _dt.date):
        return {_TAG: "date", "value": raw.isoformat()}
    if isinstance(raw, tuple):
        return {_TAG: "tuple", "items": [tag_raw(item) for item in raw]}
    if isinstance(raw, dict):
        return {_TAG: "dict", "items": {
            str(key): tag_raw(value) for key, value in raw.items()
        }}
    return raw


def untag_raw(payload: Any) -> Any:
    """Invert :func:`tag_raw`."""
    if isinstance(payload, dict):
        kind = payload.get(_TAG)
        if kind == "datetime":
            return _dt.datetime.fromisoformat(payload["value"])
        if kind == "date":
            return _dt.date.fromisoformat(payload["value"])
        if kind == "tuple":
            return tuple(untag_raw(item) for item in payload["items"])
        if kind == "dict":
            return {
                key: untag_raw(value)
                for key, value in payload["items"].items()
            }
    return payload


def canonical_bytes(payload: Any) -> bytes:
    """The canonical JSON serialisation content addressing hashes.

    Sorted keys, minimal separators, ASCII-only: one byte sequence per
    logical payload, on every platform.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def content_digest(payload: Any) -> str:
    """The sha256 content address of a JSON-able payload."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def row_digest(row: Mapping[str, Any]) -> str:
    """Content identity of one raw row (delta-merge and watermark unit).

    Keyed on the tagged raw payloads only — record ids and provenance
    are process-local and must not enter the identity.
    """
    return content_digest({str(k): tag_raw(v) for k, v in row.items()})


def _encode_provenance(node: Provenance) -> dict[str, Any]:
    return {
        "step": node.step.value,
        "ref": node.ref,
        "inputs": [_encode_provenance(child) for child in node.inputs],
    }


def _decode_provenance(payload: Mapping[str, Any]) -> Provenance:
    return Provenance(
        Step(payload["step"]),
        payload["ref"],
        tuple(_decode_provenance(child) for child in payload["inputs"]),
    )


def _encode_value(value: Value) -> dict[str, Any]:
    return {
        "raw": tag_raw(value.raw),
        "dtype": value.dtype.value,
        "confidence": value.confidence,
        "provenance": _encode_provenance(value.provenance),
    }


def _decode_value(payload: Mapping[str, Any]) -> Value:
    return Value(
        untag_raw(payload["raw"]),
        DataType(payload["dtype"]),
        payload["confidence"],
        _decode_provenance(payload["provenance"]),
    )


def encode_table(table: Table) -> dict[str, Any]:
    """The exact, versioned JSON form of a table.

    Record ids, sources, schema, and every cell annotation are preserved
    verbatim: decoding replays the table byte-for-byte.
    """
    return {
        "kind": "table",
        "version": SNAPSHOT_VERSION,
        "name": table.name,
        "schema": [
            {
                "name": attr.name,
                "dtype": attr.dtype.value,
                "required": attr.required,
                "description": attr.description,
            }
            for attr in table.schema
        ],
        "records": [
            {
                "rid": record.rid,
                "source": record.source,
                # Pairs, not an object: canonical JSON sorts object keys,
                # and cell insertion order must survive the round trip.
                "cells": [
                    [name, _encode_value(value)]
                    for name, value in record.cells.items()
                ],
            }
            for record in table
        ],
    }


def decode_table(payload: Mapping[str, Any]) -> Table:
    """Rebuild a table from :func:`encode_table` output."""
    if payload.get("kind") != "table":
        raise CheckpointError(
            f"snapshot payload is not a table: kind={payload.get('kind')!r}"
        )
    if payload.get("version") != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"table snapshot version {payload.get('version')!r} is not the "
            f"supported version {SNAPSHOT_VERSION}"
        )
    schema = Schema(tuple(
        Attribute(
            attr["name"],
            DataType(attr["dtype"]),
            attr["required"],
            attr["description"],
        )
        for attr in payload["schema"]
    ))
    records = [
        Record(
            entry["rid"],
            entry["source"],
            {name: _decode_value(cell) for name, cell in entry["cells"]},
        )
        for entry in payload["records"]
    ]
    return Table(payload["name"], schema, records)


def _normalised(payload: Any, aliases: dict[str, str]) -> Any:
    """Rewrite process-local ids in an encoded table to stable ordinals.

    Record ids come from a process-global counter and mapping/wrapper ids
    from per-class counters, so two runs of identical logical content
    disagree on them; first-occurrence aliases (``#0``, ``#1``, ...) make
    the encoding order-stable instead.
    """

    def alias(kind: str, token: str) -> str:
        key = f"{kind}:{token}"
        if key not in aliases:
            aliases[key] = f"{kind}#{len(aliases)}"
        return aliases[key]

    if isinstance(payload, dict):
        out = {}
        for key, value in payload.items():
            if key == "rid":
                out[key] = alias("rid", value)
            elif key == "ref" and isinstance(value, str) and (
                value.startswith("mapping-") or value.startswith("wrapper-")
            ):
                out[key] = alias("ref", value)
            else:
                out[key] = _normalised(value, aliases)
        return out
    if isinstance(payload, list):
        return [_normalised(item, aliases) for item in payload]
    return payload


def table_fingerprint(table: Table) -> str:
    """Cross-run content identity of a table.

    The digest of the encoded table with counter-minted ids (record ids,
    ``mapping-N``/``wrapper-N`` provenance refs) replaced by
    first-occurrence ordinals: equal fingerprints mean logically
    identical tables, whatever process minted them.
    """
    return content_digest(_normalised(encode_table(table), {}))
