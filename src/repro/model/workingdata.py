"""The working-data store at the centre of the paper's Figure 1.

All intermediate results of the wrangling process — extracted tables,
matches, mappings, wrappers, fused entities — are stored here "for
on-demand recombination, depending on the user context and the potentially
continually evolving data context" (Section 4.2).  The store is a typed
blackboard: artifacts live under ``category/key`` addresses, carry
versions, and changes are observable so the incremental dataflow engine can
invalidate exactly the dependent computations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.model.annotations import AnnotationStore

__all__ = ["ArtifactKey", "WorkingData"]


@dataclass(frozen=True, order=True)
class ArtifactKey:
    """The address of one artifact in the working data."""

    category: str
    key: str

    def __str__(self) -> str:
        return f"{self.category}:{self.key}"


@dataclass
class _Entry:
    value: Any
    version: int = 1


class WorkingData:
    """A versioned blackboard of wrangling artifacts plus quality annotations.

    Categories used by the framework (others are free for applications):

    * ``table`` — extracted / mapped / fused :class:`~repro.model.records.Table`
    * ``match`` — schema correspondences
    * ``mapping`` — schema mappings
    * ``wrapper`` — induced extraction wrappers
    * ``entity`` — resolved/fused entities
    * ``report`` — quality reports
    """

    def __init__(self) -> None:
        self._entries: dict[ArtifactKey, _Entry] = {}
        self.annotations = AnnotationStore()
        self._listeners: list[Callable[[ArtifactKey], None]] = []

    def put(self, category: str, key: str, value: Any) -> ArtifactKey:
        """Store (or overwrite) an artifact; bumps its version and notifies
        change listeners."""
        akey = ArtifactKey(category, key)
        entry = self._entries.get(akey)
        if entry is None:
            self._entries[akey] = _Entry(value)
        else:
            entry.value = value
            entry.version += 1
        for listener in self._listeners:
            listener(akey)
        return akey

    def get(self, category: str, key: str, default: Any = None) -> Any:
        """The artifact at ``category:key``, or ``default``."""
        entry = self._entries.get(ArtifactKey(category, key))
        return default if entry is None else entry.value

    def require(self, category: str, key: str) -> Any:
        """The artifact at ``category:key``; raises ``KeyError`` if absent."""
        akey = ArtifactKey(category, key)
        if akey not in self._entries:
            raise KeyError(f"no artifact at {akey}")
        return self._entries[akey].value

    def version(self, category: str, key: str) -> int:
        """The artifact's version (0 when absent)."""
        entry = self._entries.get(ArtifactKey(category, key))
        return 0 if entry is None else entry.version

    def contains(self, category: str, key: str) -> bool:
        """Whether an artifact exists at ``category:key``."""
        return ArtifactKey(category, key) in self._entries

    def remove(self, category: str, key: str) -> bool:
        """Delete an artifact; returns whether it existed."""
        akey = ArtifactKey(category, key)
        existed = self._entries.pop(akey, None) is not None
        if existed:
            for listener in self._listeners:
                listener(akey)
        return existed

    def keys(self, category: str | None = None) -> list[ArtifactKey]:
        """All artifact keys, optionally restricted to one category."""
        if category is None:
            return sorted(self._entries)
        return sorted(k for k in self._entries if k.category == category)

    def items(self, category: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs within one category."""
        for akey in self.keys(category):
            yield akey.key, self._entries[akey].value

    def on_change(self, listener: Callable[[ArtifactKey], None]) -> None:
        """Register a callback invoked with the key of every change."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._entries)

    def summary(self) -> dict[str, int]:
        """Artifact counts per category."""
        counts: dict[str, int] = {}
        for akey in self._entries:
            counts[akey.category] = counts.get(akey.category, 0) + 1
        return dict(sorted(counts.items()))
