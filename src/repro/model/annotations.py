"""Quality annotations over wrangling artifacts.

The working data of Figure 1 contains "the results of all Quality analyses
that have been carried out, which may apply to individual data sources, the
results of different extractions and components of relevance to integration
such as matches or mappings".  A :class:`QualityAnnotation` scores one
quality dimension of one artifact; the :class:`AnnotationStore` indexes them
so any component can ask "what do we currently believe about X?".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping

__all__ = ["Dimension", "QualityAnnotation", "AnnotationStore"]

_annotation_counter = itertools.count(1)


class Dimension(str, Enum):
    """Quality dimensions tracked by the framework.

    These are exactly the criteria the paper's user contexts trade off:
    accuracy vs completeness vs timeliness (Example 2), plus consistency,
    relevance, and access cost.
    """

    ACCURACY = "accuracy"
    COMPLETENESS = "completeness"
    CONSISTENCY = "consistency"
    TIMELINESS = "timeliness"
    RELEVANCE = "relevance"
    COST = "cost"


@dataclass(frozen=True)
class QualityAnnotation:
    """A scored quality judgment about one artifact.

    ``target`` is the artifact key (``"source:amazon"``,
    ``"mapping:m3"``, ``"table:wrangled/price"``, ...), ``score`` is in
    ``[0, 1]`` (for COST, a normalised cost where higher means cheaper),
    ``confidence`` says how much evidence backs the score, and ``origin``
    names the analysis or feedback that produced it.
    """

    target: str
    dimension: Dimension
    score: float
    confidence: float = 1.0
    origin: str = "analysis"
    details: str = ""
    aid: int = field(default_factory=lambda: next(_annotation_counter))

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"annotation score must be in [0,1], got {self.score}")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"annotation confidence must be in [0,1], got {self.confidence}"
            )


class AnnotationStore:
    """An indexed, append-only store of quality annotations."""

    def __init__(self) -> None:
        self._by_target: dict[str, list[QualityAnnotation]] = {}

    def add(self, annotation: QualityAnnotation) -> None:
        """Record one annotation."""
        self._by_target.setdefault(annotation.target, []).append(annotation)

    def __len__(self) -> int:
        return sum(len(items) for items in self._by_target.values())

    def __iter__(self) -> Iterator[QualityAnnotation]:
        for items in self._by_target.values():
            yield from items

    def for_target(
        self, target: str, dimension: Dimension | None = None
    ) -> list[QualityAnnotation]:
        """All annotations on ``target``, optionally restricted by dimension."""
        items = self._by_target.get(target, [])
        if dimension is None:
            return list(items)
        return [a for a in items if a.dimension is dimension]

    def score(
        self, target: str, dimension: Dimension, default: float = 0.5
    ) -> float:
        """Confidence-weighted mean score of ``dimension`` on ``target``.

        Later annotations count like any other; disagreement averages out
        by weight.  ``default`` is returned when nothing is known.
        """
        items = self.for_target(target, dimension)
        if not items:
            return default
        total_weight = sum(a.confidence for a in items)
        if total_weight == 0.0:
            return default
        return sum(a.score * a.confidence for a in items) / total_weight

    def profile(self, target: str) -> Mapping[Dimension, float]:
        """Scores per dimension annotated on ``target``."""
        result: dict[Dimension, float] = {}
        for annotation in self._by_target.get(target, []):
            result[annotation.dimension] = self.score(target, annotation.dimension)
        return result

    def targets(self) -> list[str]:
        """All artifact keys that carry at least one annotation."""
        return sorted(self._by_target)
