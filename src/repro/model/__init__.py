"""The uniform working-data representation (paper Section 4.2).

Everything the wrangler manipulates — cell values, records, tables,
schemas, provenance trees, uncertainty, quality annotations — lives in this
package so that extraction, integration, cleaning and feedback components
share one representation.
"""

from repro.model.annotations import AnnotationStore, Dimension, QualityAnnotation
from repro.model.provenance import Provenance, Step
from repro.model.records import Record, Table
from repro.model.schema import (
    Attribute,
    DataType,
    Schema,
    coerce,
    infer_column_type,
    infer_type,
)
from repro.model.uncertainty import (
    BetaReliability,
    Evidence,
    bayes_update,
    clamp,
    log_odds_pool,
    noisy_or,
    pool_evidence,
)
from repro.model.values import MISSING, Value
from repro.model.workingdata import ArtifactKey, WorkingData

__all__ = [
    "AnnotationStore",
    "ArtifactKey",
    "Attribute",
    "BetaReliability",
    "DataType",
    "Dimension",
    "Evidence",
    "MISSING",
    "Provenance",
    "QualityAnnotation",
    "Record",
    "Schema",
    "Step",
    "Table",
    "Value",
    "WorkingData",
    "bayes_update",
    "clamp",
    "coerce",
    "infer_column_type",
    "infer_type",
    "log_odds_pool",
    "noisy_or",
    "pool_evidence",
]
