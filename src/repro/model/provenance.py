"""Provenance trees for every value in the working data.

Section 4.2 of the paper calls for "a uniform representation for ... schema
mappings, user feedback and provenance information".  Here provenance is an
immutable tree: leaves name the originating source, inner nodes record the
wrangling step (extraction, mapping, resolution, fusion, repair, feedback)
that produced a value from its inputs.  Because nodes are frozen and
hashable they can be shared freely between values, so the memory cost is
proportional to the number of *steps*, not the number of cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

__all__ = ["Step", "Provenance"]


class Step(str, Enum):
    """The kind of wrangling step a provenance node records."""

    SOURCE = "source"
    EXTRACTION = "extraction"
    MAPPING = "mapping"
    RESOLUTION = "resolution"
    FUSION = "fusion"
    REPAIR = "repair"
    FEEDBACK = "feedback"
    GENERATED = "generated"


@dataclass(frozen=True)
class Provenance:
    """An immutable provenance tree node.

    ``step`` says what happened, ``ref`` names the responsible artifact
    (source name, wrapper id, mapping id, ...), and ``inputs`` are the
    provenance trees of the values consumed by the step.
    """

    step: Step
    ref: str
    inputs: tuple["Provenance", ...] = field(default_factory=tuple)

    @classmethod
    def source(cls, name: str) -> "Provenance":
        """A leaf node: the value came directly from source ``name``."""
        return cls(Step.SOURCE, name)

    @classmethod
    def generated(cls, ref: str = "synthetic") -> "Provenance":
        """A leaf node for synthetic / ground-truth data."""
        return cls(Step.GENERATED, ref)

    def derive(self, step: Step, ref: str) -> "Provenance":
        """Return a new node recording ``step`` applied to this value."""
        return Provenance(step, ref, (self,))

    @classmethod
    def combine(
        cls, step: Step, ref: str, inputs: tuple["Provenance", ...]
    ) -> "Provenance":
        """Return a node recording ``step`` over several input values."""
        return cls(step, ref, inputs)

    def walk(self) -> Iterator["Provenance"]:
        """Yield this node and all descendants, pre-order."""
        stack: list[Provenance] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.inputs)

    def sources(self) -> frozenset[str]:
        """The set of source names at the leaves of this tree."""
        return frozenset(
            node.ref for node in self.walk() if node.step is Step.SOURCE
        )

    def steps(self) -> tuple[Step, ...]:
        """All step kinds appearing in the tree (with repetition, pre-order)."""
        return tuple(node.step for node in self.walk())

    def depth(self) -> int:
        """The longest step chain from this node to a leaf."""
        if not self.inputs:
            return 1
        return 1 + max(child.depth() for child in self.inputs)

    def why(self, indent: int = 0) -> str:
        """A human-readable multi-line explanation of this value's lineage."""
        pad = "  " * indent
        line = f"{pad}{self.step.value}: {self.ref}"
        if not self.inputs:
            return line
        children = "\n".join(child.why(indent + 1) for child in self.inputs)
        return f"{line}\n{children}"
