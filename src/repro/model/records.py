"""Records and tables — the relational backbone of the working data.

A :class:`Table` is an immutable-schema, append-friendly collection of
:class:`Record` objects whose cells are annotated :class:`Value` instances.
Tables are what sources emit, what extraction produces from documents, what
mappings translate, and what integration fuses; every transformation
preserves per-cell confidence and provenance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.model.provenance import Provenance
from repro.model.schema import Attribute, DataType, Schema, infer_type
from repro.model.values import MISSING, Value

__all__ = ["Record", "Table"]

_record_counter = itertools.count(1)


def _next_rid(prefix: str) -> str:
    return f"{prefix}-{next(_record_counter)}"


@dataclass(frozen=True)
class Record:
    """One row: a record id, the source it came from, and named cells."""

    rid: str
    source: str
    cells: Mapping[str, Value]

    @classmethod
    def of(
        cls,
        fields: Mapping[str, Any],
        source: str = "memory",
        rid: str | None = None,
        provenance: Provenance | None = None,
        confidence: float = 1.0,
    ) -> "Record":
        """Build a record from raw field values.

        Raw values are wrapped into :class:`Value` cells sharing one
        provenance leaf (the record's source) unless they already are
        :class:`Value` instances.
        """
        if provenance is None:
            provenance = Provenance.source(source)
        cells = {
            name: (
                value
                if isinstance(value, Value)
                else Value.of(value, provenance, confidence)
            )
            for name, value in fields.items()
        }
        return cls(rid or _next_rid(source), source, cells)

    def __getitem__(self, name: str) -> Value:
        return self.cells.get(name, MISSING)

    def get(self, name: str) -> Value:
        """The cell named ``name``, or :data:`MISSING`."""
        return self.cells.get(name, MISSING)

    def raw(self, name: str) -> Any:
        """The raw payload of cell ``name`` (``None`` when missing)."""
        return self.cells[name].raw if name in self.cells else None

    def to_dict(self) -> dict[str, Any]:
        """Plain ``{name: raw}`` view of the record."""
        return {name: value.raw for name, value in self.cells.items()}

    def with_cell(self, name: str, value: Value) -> "Record":
        """A copy of the record with one cell replaced or added."""
        cells = dict(self.cells)
        cells[name] = value
        return Record(self.rid, self.source, cells)

    def with_cells(self, updates: Mapping[str, Value]) -> "Record":
        """A copy of the record with several cells replaced or added."""
        cells = dict(self.cells)
        cells.update(updates)
        return Record(self.rid, self.source, cells)

    def project(self, names: Sequence[str]) -> "Record":
        """A copy restricted to the cells in ``names``."""
        return Record(
            self.rid,
            self.source,
            {name: self.cells[name] for name in names if name in self.cells},
        )

    def completeness(self, names: Sequence[str]) -> float:
        """Fraction of ``names`` that carry a non-missing cell."""
        if not names:
            return 1.0
        present = sum(1 for name in names if not self.get(name).is_missing)
        return present / len(names)

    def mean_confidence(self) -> float:
        """Average confidence over non-missing cells (1.0 if all missing)."""
        confs = [v.confidence for v in self.cells.values() if not v.is_missing]
        if not confs:
            return 1.0
        return sum(confs) / len(confs)


@dataclass
class Table:
    """A named collection of records under a shared schema."""

    name: str
    schema: Schema
    records: list[Record] = field(default_factory=list)

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        schema: Schema | None = None,
        source: str | None = None,
        confidence: float = 1.0,
    ) -> "Table":
        """Build a table from dict rows, inferring the schema when absent."""
        if schema is None:
            schema = Schema.from_rows(rows)
        src = source or name
        records = [Record.of(row, source=src, confidence=confidence) for row in rows]
        return cls(name, schema, records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The schema's attribute names."""
        return self.schema.names

    def append(self, record: Record) -> None:
        """Append one record (cells outside the schema are allowed but
        invisible to schema-driven operations)."""
        self.records.append(record)

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records."""
        self.records.extend(records)

    def column(self, name: str) -> list[Value]:
        """All cells of attribute ``name`` in record order."""
        if name not in self.schema:
            raise SchemaError(f"table {self.name!r} has no attribute {name!r}")
        return [record.get(name) for record in self.records]

    def raw_column(self, name: str) -> list[Any]:
        """All raw payloads of attribute ``name`` in record order."""
        return [value.raw for value in self.column(name)]

    def project(self, names: Sequence[str]) -> "Table":
        """A new table restricted to attributes ``names``."""
        return Table(
            self.name,
            self.schema.project(names),
            [record.project(names) for record in self.records],
        )

    def filter(self, predicate: Callable[[Record], bool]) -> "Table":
        """A new table keeping only records where ``predicate`` holds."""
        return Table(
            self.name,
            self.schema,
            [record for record in self.records if predicate(record)],
        )

    def map_records(self, fn: Callable[[Record], Record]) -> "Table":
        """A new table with ``fn`` applied to each record."""
        return Table(self.name, self.schema, [fn(record) for record in self.records])

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` records as a new table."""
        return Table(self.name, self.schema, list(self.records[:n]))

    def union(self, other: "Table", name: str | None = None) -> "Table":
        """Union of two tables under the merged schema."""
        return Table(
            name or self.name,
            self.schema.merge(other.schema),
            list(self.records) + list(other.records),
        )

    def distinct_raw(self, name: str) -> set[Any]:
        """Set of distinct non-null raw values in column ``name``."""
        return {
            value.raw for value in self.column(name) if not value.is_missing
        }

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """A new table sorted by the raw values of column ``name``.

        Missing values sort last regardless of direction.
        """

        def key(record: Record) -> tuple[int, Any]:
            value = record.get(name)
            if value.is_missing:
                return (1, "")
            return (0, value.raw)

        return Table(
            self.name,
            self.schema,
            sorted(self.records, key=key, reverse=reverse),
        )

    def to_rows(self) -> list[dict[str, Any]]:
        """Plain list-of-dicts view (raw payloads only)."""
        return [record.to_dict() for record in self.records]

    def mean_confidence(self) -> float:
        """Average cell confidence across the whole table."""
        confs = [
            value.confidence
            for record in self.records
            for value in record.cells.values()
            if not value.is_missing
        ]
        if not confs:
            return 1.0
        return sum(confs) / len(confs)

    def completeness(self) -> float:
        """Fraction of schema cells that are populated across all records."""
        if not self.records or not self.schema.names:
            return 1.0
        total = len(self.records) * len(self.schema.names)
        present = sum(
            1
            for record in self.records
            for name in self.schema.names
            if not record.get(name).is_missing
        )
        return present / total

    def describe(self) -> str:
        """One-line summary used by logs and examples."""
        return (
            f"Table {self.name!r}: {len(self.records)} records x "
            f"{len(self.schema)} attributes "
            f"(completeness={self.completeness():.2f}, "
            f"confidence={self.mean_confidence():.2f})"
        )

    def render(self, limit: int = 10) -> str:
        """A fixed-width textual rendering of up to ``limit`` records."""
        names = list(self.schema.names)
        rows = [
            [str(record.get(name)) for name in names]
            for record in self.records[:limit]
        ]
        widths = [
            max(len(name), *(len(row[i]) for row in rows)) if rows else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        rule = "-+-".join("-" * width for width in widths)
        body = "\n".join(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        )
        suffix = "" if len(self.records) <= limit else f"\n... ({len(self.records) - limit} more)"
        return f"{header}\n{rule}\n{body}{suffix}"

    def infer_schema(self) -> "Table":
        """Re-infer attribute dtypes from the current records."""
        attrs = []
        for name in self.schema.names:
            raws = [r.raw(name) for r in self.records]
            non_null = [raw for raw in raws if raw is not None]
            declared = self.schema[name]
            if non_null:
                counts: dict[DataType, int] = {}
                for raw in non_null:
                    dtype = infer_type(raw)
                    counts[dtype] = counts.get(dtype, 0) + 1
                best = max(counts, key=lambda d: counts[d])
                attrs.append(Attribute(name, best, declared.required, declared.description))
            else:
                attrs.append(declared)
        return Table(self.name, Schema(tuple(attrs)), list(self.records))
