"""The telemetry bundle and its exported schema.

:class:`Telemetry` is the trio every instrumented component shares — one
clock, one metrics registry, one tracer — so a single ``snapshot()`` is
the complete record of a run.  The snapshot shape is versioned and
validated by :func:`validate_telemetry`; the benchmarks emit it, the
``python -m repro.obs.report`` CLI renders it, and CI's ``bench-smoke``
target rejects a bench whose output drifts from it.

Snapshot schema (version 1)::

    {
      "schema": "repro.obs/telemetry",
      "version": 1,
      "metrics": {"counters": {...}, "gauges": {...},
                  "histograms": {name: {count,total,mean,p50,p95,max}}},
      "spans": [{name,start,end,duration,attributes,children:[...]}],
      "dataflow": {"nodes": {name: {runs,hits,invalidations,seconds,
                                    stage,clean,purity,parallel,cost}}}
    }

``cost`` is the static cost model's predicted seconds for the node (or
null before certification) — a deterministic estimate, so unlike
``seconds`` it survives :func:`scrub_timings`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs.clock import Clock, ManualClock, SystemClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Telemetry",
    "scrub_timings",
    "validate_telemetry",
]

SCHEMA_NAME = "repro.obs/telemetry"
SCHEMA_VERSION = 1


@dataclass
class Telemetry:
    """One run's clock, metrics, and tracer, snapshot together.

    Construct with a :class:`~repro.obs.clock.ManualClock` for
    deterministic timings; the default is the shared system clock.
    """

    clock: Clock = field(default_factory=SystemClock)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.tracer is None:
            self.tracer = Tracer(self.clock)

    @classmethod
    def manual(cls, start: float = 0.0) -> "Telemetry":
        """A bundle on a manual clock — the deterministic test harness."""
        return cls(clock=ManualClock(start=start))

    def snapshot(
        self, dataflow: Mapping[str, Mapping[str, Any]] | None = None
    ) -> dict[str, Any]:
        """The schema-versioned export of everything recorded so far."""
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.to_dicts(),
            "dataflow": {"nodes": dict(dataflow or {})},
        }

    def reset(self) -> None:
        """Clear metrics and finished spans (the clock keeps running)."""
        self.metrics.reset()
        self.tracer.reset()


def scrub_timings(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """A deep copy of ``snapshot`` with every timing field zeroed.

    The comparison form behind the determinism contract: two runs of the
    same pipeline — sequential or fanned out to any worker count — must
    produce *byte-identical* scrubbed snapshots.  Zeroed, never dropped,
    so the scrubbed shape still validates against the schema:

    * span ``start``/``end``/``duration`` (recursively);
    * the value summaries (``total``/``mean``/``p50``/``p95``/``max``)
      of histograms whose name contains ``"seconds"`` — their *counts*
      are observation counts and stay, they are part of the contract;
    * per-node dataflow ``seconds``.
    """
    scrubbed = copy.deepcopy(dict(snapshot))

    metrics = scrubbed.get("metrics")
    if isinstance(metrics, Mapping):
        histograms = metrics.get("histograms")
        if isinstance(histograms, Mapping):
            for name, summary in histograms.items():
                if "seconds" in name and isinstance(summary, dict):
                    for key in ("total", "mean", "p50", "p95", "max"):
                        if key in summary:
                            summary[key] = 0.0

    def scrub_span(span: Any) -> None:
        if not isinstance(span, dict):
            return
        span["start"] = 0.0
        if span.get("end") is not None:
            span["end"] = 0.0
        span["duration"] = 0.0
        for child in span.get("children") or ():
            scrub_span(child)

    for span in scrubbed.get("spans") or ():
        scrub_span(span)

    dataflow = scrubbed.get("dataflow")
    if isinstance(dataflow, Mapping):
        nodes = dataflow.get("nodes")
        if isinstance(nodes, Mapping):
            for stats in nodes.values():
                if isinstance(stats, dict) and "seconds" in stats:
                    stats["seconds"] = 0.0
    return scrubbed


def _check_number(value: Any, where: str, problems: list[str]) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        problems.append(f"{where}: expected a number, got {value!r}")


def _check_span(span: Any, where: str, problems: list[str]) -> None:
    if not isinstance(span, Mapping):
        problems.append(f"{where}: expected a span object, got {span!r}")
        return
    if not isinstance(span.get("name"), str):
        problems.append(f"{where}.name: expected a string")
    _check_number(span.get("start"), f"{where}.start", problems)
    if span.get("end") is not None:
        _check_number(span.get("end"), f"{where}.end", problems)
    _check_number(span.get("duration"), f"{where}.duration", problems)
    if not isinstance(span.get("attributes"), Mapping):
        problems.append(f"{where}.attributes: expected an object")
    children = span.get("children")
    if not isinstance(children, list):
        problems.append(f"{where}.children: expected a list")
        return
    for index, child in enumerate(children):
        _check_span(child, f"{where}.children[{index}]", problems)


_HISTOGRAM_KEYS = ("count", "total", "mean", "p50", "p95", "max")
_NODE_COUNT_KEYS = ("runs", "hits", "invalidations")


def validate_telemetry(payload: Any) -> list[str]:
    """Problems that make ``payload`` fail the telemetry schema (or [])."""
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return [f"telemetry: expected an object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA_NAME:
        problems.append(
            f"schema: expected {SCHEMA_NAME!r}, got {payload.get('schema')!r}"
        )
    if payload.get("version") != SCHEMA_VERSION:
        problems.append(
            f"version: expected {SCHEMA_VERSION}, got {payload.get('version')!r}"
        )

    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping):
        problems.append("metrics: expected an object")
    else:
        for kind in ("counters", "gauges", "histograms"):
            block = metrics.get(kind)
            if not isinstance(block, Mapping):
                problems.append(f"metrics.{kind}: expected an object")
                continue
            for name, value in block.items():
                where = f"metrics.{kind}[{name}]"
                if kind == "histograms":
                    if not isinstance(value, Mapping):
                        problems.append(f"{where}: expected a summary object")
                        continue
                    for key in _HISTOGRAM_KEYS:
                        if key not in value:
                            problems.append(f"{where}.{key}: missing")
                        else:
                            _check_number(value[key], f"{where}.{key}", problems)
                else:
                    _check_number(value, where, problems)

    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("spans: expected a list")
    else:
        for index, span in enumerate(spans):
            _check_span(span, f"spans[{index}]", problems)

    dataflow = payload.get("dataflow")
    if not isinstance(dataflow, Mapping) or not isinstance(
        dataflow.get("nodes"), Mapping
    ):
        problems.append("dataflow.nodes: expected an object")
    else:
        for name, stats in dataflow["nodes"].items():
            where = f"dataflow.nodes[{name}]"
            if not isinstance(stats, Mapping):
                problems.append(f"{where}: expected a stats object")
                continue
            for key in _NODE_COUNT_KEYS:
                value = stats.get(key)
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    problems.append(
                        f"{where}.{key}: expected a non-negative integer"
                    )
            _check_number(stats.get("seconds"), f"{where}.seconds", problems)
            if not isinstance(stats.get("clean"), bool):
                problems.append(f"{where}.clean: expected a boolean")
            stage = stats.get("stage")
            if stage is not None and not isinstance(stage, str):
                problems.append(f"{where}.stage: expected a string or null")
            purity = stats.get("purity")
            if purity is not None and not isinstance(purity, str):
                problems.append(f"{where}.purity: expected a string or null")
            parallel = stats.get("parallel")
            if parallel is not None and not isinstance(parallel, str):
                problems.append(
                    f"{where}.parallel: expected a string or null"
                )
            cost = stats.get("cost")
            if cost is not None and (
                not isinstance(cost, (int, float)) or isinstance(cost, bool)
            ):
                problems.append(
                    f"{where}.cost: expected a number or null"
                )
    return problems
