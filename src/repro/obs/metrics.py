"""Metrics: counters, gauges, and histograms behind one registry.

The measurement substrate every perf claim in this repo rests on.  Three
instrument kinds, chosen for the questions the experiments ask:

* **Counter** — monotone event counts (cache hits, tuple accesses,
  feedback items).  E6's "nodes recomputed per feedback" is a counter.
* **Gauge** — last-written level (budget remaining, registry size).
* **Histogram** — distributions of observations with p50/p95/max
  (per-node compute seconds, accesses per query).

All instruments are thread-safe: the registry serialises creation and
each instrument serialises its own updates, so feedback workers and
concurrent pulls can record without corrupting totals.  Snapshots are
plain dicts; :func:`render_text` / :func:`render_json` mirror the
reporter contract of :mod:`repro.analysis.report` (pure functions from
data to a string — callers own all I/O).
"""

from __future__ import annotations

import json
import threading
from typing import Mapping

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_text",
    "render_json",
]


class Counter:
    """A monotonically increasing event count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A level that can move both ways; reports its last value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the level by ``delta`` (negative allowed)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """The last recorded level."""
        with self._lock:
            return self._value


class Histogram:
    """A distribution of observations with nearest-rank percentiles."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        """How many observations have been recorded."""
        with self._lock:
            return len(self._values)

    def percentile(self, q: float) -> float:
        """The nearest-rank ``q``-th percentile (``0 < q <= 100``)."""
        if not 0 < q <= 100:
            raise TelemetryError(f"percentile must be in (0, 100], got {q}")
        with self._lock:
            if not self._values:
                return 0.0
            ordered = sorted(self._values)
            rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
            return ordered[int(rank) - 1]

    def summary(self) -> dict[str, float]:
        """count/total/mean/p50/p95/max — the exported shape."""
        with self._lock:
            values = list(self._values)
        if not values:
            return {
                "count": 0, "total": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "max": 0.0,
            }
        ordered = sorted(values)

        def rank(q: float) -> float:
            position = max(1, -(-len(ordered) * q // 100))
            return ordered[int(position) - 1]

        return {
            "count": len(values),
            "total": sum(values),
            "mean": sum(values) / len(values),
            "p50": rank(50),
            "p95": rank(95),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by name.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind is a programming error
    and raises, rather than silently splitting the series.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TelemetryError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram)

    def names(self) -> list[str]:
        """Every registered instrument name, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """The exported shape: one sub-dict per instrument kind."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh measurement window)."""
        with self._lock:
            self._instruments.clear()


def render_text(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """One instrument per line, grouped by kind, stable order."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"counter   {name} = {value:g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"gauge     {name} = {value:g}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        lines.append(
            f"histogram {name} n={summary['count']} "
            f"p50={summary['p50']:g} p95={summary['p95']:g} "
            f"max={summary['max']:g}"
        )
    if not lines:
        lines.append("no metrics recorded")
    return "\n".join(lines)


def render_json(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """The machine form (stable key order)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
