"""Span-based tracing: where a run's time actually went.

A :class:`Span` is one timed region with a name, attributes, and child
spans; a :class:`Tracer` hands them out as context managers and keeps the
finished roots.  ``Wrangler.run`` opens one root span per run and the
dataflow engine nests one child per recomputed node, so a single export
answers E6's question — *which* nodes recomputed after feedback, and for
how long — without print statements or profilers.

Spans close even when the body raises (the exception is recorded as the
``error`` attribute and re-raised), so a failing pipeline still exports a
complete trace.

The tracer is thread-compatible for the engine's fan-out shape: the open
-span stack is **thread-local**, so spans opened on a worker thread nest
under that thread's context, never under another thread's.  A worker
thread starts with an empty stack; the coordinator pre-creates one span
per task with :meth:`Tracer.open` (deterministic order) and the task
grafts itself under it with :meth:`Tracer.attach` — finished roots are
appended under a lock.
"""

from __future__ import annotations

import json
import sys
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import TelemetryError
from repro.obs.clock import Clock, system_clock

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region of a run, possibly with nested child regions."""

    def __init__(
        self, name: str, start: float, attributes: dict[str, Any]
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """The JSON-exported shape, children included."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Issues spans, nests them by context, and keeps the finished roots."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or system_clock
        self.spans: list[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created empty on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """A context manager timing one region; nests under any open span."""
        stack = self._stack
        opened = Span(name, self.clock.current_time(), dict(attributes))
        if stack:
            stack[-1].children.append(opened)
        stack.append(opened)
        try:
            yield opened
        finally:
            # Record-and-propagate: a failing body still closes the span,
            # with the in-flight exception noted as the `error` attribute.
            failure = sys.exc_info()[1]
            if failure is not None:
                opened.set_attribute("error", repr(failure))
            opened.end = self.clock.current_time()
            popped = stack.pop()
            if popped is not opened:
                raise TelemetryError(
                    f"span nesting corrupted: closed {opened.name!r} but "
                    f"{popped.name!r} was on top"
                )
            if not stack:
                with self._roots_lock:
                    self.spans.append(opened)

    def open(self, name: str, **attributes: Any) -> Span:
        """Create a span under the current context without entering it.

        The coordinator's half of the fan-out handshake: pre-creating one
        span per task in submission order pins where each task's trace
        lands — deterministically — before any worker thread runs.  The
        caller must :meth:`close` it; a task run on another thread nests
        its own spans under it via :meth:`attach`.
        """
        stack = self._stack
        opened = Span(name, self.clock.current_time(), dict(attributes))
        opened.adopted = bool(stack)
        if stack:
            stack[-1].children.append(opened)
        return opened

    def close(self, span: Span) -> None:
        """Finish a span created with :meth:`open`."""
        if span.end is not None:
            raise TelemetryError(f"span {span.name!r} is already closed")
        span.end = self.clock.current_time()
        if not getattr(span, "adopted", False):
            with self._roots_lock:
                self.spans.append(span)

    @contextmanager
    def attach(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the current context on *this* thread.

        The worker's half of the handshake: everything the body opens
        nests under ``span`` (which the coordinator created and will
        close).  The body must leave the stack balanced.
        """
        stack = self._stack
        stack.append(span)
        try:
            yield span
        finally:
            popped = stack.pop()
            if popped is not span:
                raise TelemetryError(
                    f"span nesting corrupted: detached {span.name!r} but "
                    f"{popped.name!r} was on top"
                )

    @property
    def active(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def find(self, name: str) -> list[Span]:
        """Every finished span (at any depth) with the given name."""

        def walk(span: Span) -> Iterator[Span]:
            if span.name == name:
                yield span
            for child in span.children:
                yield from walk(child)

        return [hit for root in self.spans for hit in walk(root)]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Every finished root span as a plain dict tree."""
        return [span.to_dict() for span in self.spans]

    def export_json(self) -> str:
        """The finished spans as a JSON document."""
        return json.dumps(self.to_dicts(), indent=2, sort_keys=True)

    def reset(self) -> None:
        """Drop finished spans (open spans are unaffected)."""
        self.spans.clear()
