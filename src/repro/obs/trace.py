"""Span-based tracing: where a run's time actually went.

A :class:`Span` is one timed region with a name, attributes, and child
spans; a :class:`Tracer` hands them out as context managers and keeps the
finished roots.  ``Wrangler.run`` opens one root span per run and the
dataflow engine nests one child per recomputed node, so a single export
answers E6's question — *which* nodes recomputed after feedback, and for
how long — without print statements or profilers.

Spans close even when the body raises (the exception is recorded as the
``error`` attribute and re-raised), so a failing pipeline still exports a
complete trace.
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import TelemetryError
from repro.obs.clock import Clock, system_clock

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region of a run, possibly with nested child regions."""

    def __init__(
        self, name: str, start: float, attributes: dict[str, Any]
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """The JSON-exported shape, children included."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Issues spans, nests them by context, and keeps the finished roots."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or system_clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """A context manager timing one region; nests under any open span."""
        opened = Span(name, self.clock.current_time(), dict(attributes))
        if self._stack:
            self._stack[-1].children.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            # Record-and-propagate: a failing body still closes the span,
            # with the in-flight exception noted as the `error` attribute.
            failure = sys.exc_info()[1]
            if failure is not None:
                opened.set_attribute("error", repr(failure))
            opened.end = self.clock.current_time()
            popped = self._stack.pop()
            if popped is not opened:
                raise TelemetryError(
                    f"span nesting corrupted: closed {opened.name!r} but "
                    f"{popped.name!r} was on top"
                )
            if not self._stack:
                self.spans.append(opened)

    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> list[Span]:
        """Every finished span (at any depth) with the given name."""

        def walk(span: Span) -> Iterator[Span]:
            if span.name == name:
                yield span
            for child in span.children:
                yield from walk(child)

        return [hit for root in self.spans for hit in walk(root)]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Every finished root span as a plain dict tree."""
        return [span.to_dict() for span in self.spans]

    def export_json(self) -> str:
        """The finished spans as a JSON document."""
        return json.dumps(self.to_dicts(), indent=2, sort_keys=True)

    def reset(self) -> None:
        """Drop finished spans (open spans are unaffected)."""
        self.spans.clear()
