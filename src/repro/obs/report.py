"""Telemetry reporters and the ``python -m repro.obs.report`` CLI.

Renders a telemetry snapshot (the schema of
:mod:`repro.obs.telemetry`) as a human text report or as validated
JSON, mirroring the reporter contract of :mod:`repro.analysis.report`.

CLI usage::

    python -m repro.obs.report results/E6.telemetry.json         # text
    python -m repro.obs.report results/E6.telemetry.json --json  # JSON
    python -m repro.obs.report results/E6.telemetry.json --validate-only
    python -m repro.obs.report --json          # deterministic demo snapshot

With no input file the CLI exercises the obs primitives themselves on a
manual clock and reports that snapshot — a self-test that always emits
schema-valid output.  Exit codes: ``0`` valid, ``1`` schema violations,
``2`` CLI misuse (unreadable file, bad JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping, Sequence

from repro.obs.metrics import render_text as _render_metrics_text
from repro.obs.telemetry import Telemetry, validate_telemetry

__all__ = ["render_text", "render_json", "demo_snapshot", "main"]


def _span_lines(span: Mapping[str, Any], depth: int) -> list[str]:
    attributes = span.get("attributes") or {}
    noted = ", ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
    suffix = f"  [{noted}]" if noted else ""
    lines = [
        f"{'  ' * depth}{span['name']}  {span.get('duration', 0.0):.6f}s"
        f"{suffix}"
    ]
    for child in span.get("children", ()):
        lines.extend(_span_lines(child, depth + 1))
    return lines


def render_text(snapshot: Mapping[str, Any]) -> str:
    """The human report: metrics, span tree, then per-node dataflow stats."""
    lines = [f"telemetry {snapshot.get('schema')} v{snapshot.get('version')}"]
    lines.append("-- metrics --")
    lines.append(_render_metrics_text(snapshot.get("metrics", {})))
    spans = snapshot.get("spans", [])
    lines.append("-- spans --")
    if spans:
        for span in spans:
            lines.extend(_span_lines(span, 0))
    else:
        lines.append("no spans recorded")
    nodes = snapshot.get("dataflow", {}).get("nodes", {})
    lines.append("-- dataflow --")
    if nodes:
        for name in sorted(nodes):
            stats = nodes[name]
            stage = stats.get("stage") or "-"
            lines.append(
                f"{name}  stage={stage} runs={stats.get('runs', 0)} "
                f"hits={stats.get('hits', 0)} "
                f"invalidations={stats.get('invalidations', 0)} "
                f"seconds={stats.get('seconds', 0.0):.6f}"
            )
    else:
        lines.append("no dataflow nodes recorded")
    return "\n".join(lines)


def render_json(snapshot: Mapping[str, Any]) -> str:
    """The machine report (stable key order)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)


def demo_snapshot() -> dict[str, Any]:
    """A deterministic snapshot exercising every obs primitive.

    Runs on a manual clock, so repeated invocations emit byte-identical
    output — the CLI's no-input self-test.
    """
    telemetry = Telemetry.manual()
    telemetry.metrics.counter("demo.events").increment(3)
    telemetry.metrics.gauge("demo.level").set(0.75)
    histogram = telemetry.metrics.histogram("demo.seconds")
    for value in (0.010, 0.020, 0.030, 0.040):
        histogram.observe(value)
    clock = telemetry.clock
    with telemetry.tracer.span("demo.run", kind="self-test"):
        clock.advance(0.05)
        with telemetry.tracer.span("demo.stage", stage="extraction"):
            clock.advance(0.10)
    return telemetry.snapshot(
        dataflow={
            "demo-node": {
                "runs": 1, "hits": 2, "invalidations": 0,
                "seconds": 0.1, "stage": "extraction", "clean": True,
            }
        }
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="validate and render repro telemetry snapshots",
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="telemetry JSON file (omit for a deterministic demo snapshot)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    parser.add_argument(
        "--validate-only", action="store_true",
        help="report only schema problems (silent when valid)",
    )
    args = parser.parse_args(argv)

    if args.path is None:
        snapshot = demo_snapshot()
    else:
        try:
            with open(args.path, encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except OSError as failure:
            sys.stderr.write(f"error: cannot read {args.path}: {failure}\n")
            return 2
        except json.JSONDecodeError as failure:
            sys.stderr.write(f"error: {args.path} is not JSON: {failure}\n")
            return 2

    problems = validate_telemetry(snapshot)
    if problems:
        for problem in problems:
            sys.stderr.write(f"schema: {problem}\n")
        return 1
    if args.validate_only:
        sys.stdout.write(f"valid: {args.path or '<demo>'}\n")
        return 0
    report = render_json(snapshot) if args.json else render_text(snapshot)
    sys.stdout.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
