"""The clock abstraction: the only place the framework reads real time.

Everything that needs a timestamp — span timing, per-node compute times,
timeliness scoring — asks a :class:`Clock` instead of calling
``time.perf_counter()`` or ``datetime.today()`` directly.  Production code
gets :class:`SystemClock`; tests and experiments get :class:`ManualClock`,
which only moves when told to, so every duration and freshness score is
reproducible to the digit.  Lint rule REP011 enforces the boundary: direct
wall-clock reads are forbidden outside ``repro.obs``.

The method names are deliberately not ``time()``/``now()``/``today()`` —
those are exactly the call shapes REP005/REP011 flag, and a clock call
must be distinguishable from a wall-clock read at the AST level.
"""

from __future__ import annotations

import datetime as _dt
import threading as _threading
import time as _time
from abc import ABC, abstractmethod

from repro.errors import TelemetryError

__all__ = ["Clock", "SystemClock", "ManualClock", "system_clock"]


class Clock(ABC):
    """Source of the current instant, in three granularities."""

    @abstractmethod
    def current_time(self) -> float:
        """Seconds on a monotonic axis — for measuring durations."""

    @abstractmethod
    def current_date(self) -> _dt.date:
        """The current calendar date — for timeliness scoring."""

    @abstractmethod
    def current_datetime(self) -> _dt.datetime:
        """The current wall-clock instant — for timestamps in exports."""

    @abstractmethod
    def wait(self, seconds: float) -> None:
        """Block until ``seconds`` have passed *on this clock*.

        The only sanctioned way to sleep anywhere in the framework (lint
        rule REP013): the system clock really sleeps, the manual clock
        just advances, so retry backoff is instantaneous in tests.
        """


class SystemClock(Clock):
    """The real clock; the framework's single point of wall-clock entry."""

    def current_time(self) -> float:
        """Seconds from :func:`time.perf_counter` (monotonic)."""
        return _time.perf_counter()

    def current_date(self) -> _dt.date:
        """The real calendar date."""
        return _dt.date.today()

    def current_datetime(self) -> _dt.datetime:
        """The real wall-clock instant."""
        return _dt.datetime.now()

    def wait(self, seconds: float) -> None:
        """Really sleep (the framework's single point of ``time.sleep``)."""
        if seconds < 0:
            raise TelemetryError(
                f"cannot wait {seconds} seconds: time is monotonic"
            )
        if seconds:
            _time.sleep(seconds)


class ManualClock(Clock):
    """A clock that moves only when ``advance()`` is called.

    Deterministic by construction: two runs issuing the same sequence of
    advances observe identical timestamps, so telemetry built on a manual
    clock can be asserted exactly in tests.
    """

    def __init__(
        self,
        start: float = 0.0,
        today: _dt.date | None = None,
    ) -> None:
        self._time = float(start)
        self._start_datetime = _dt.datetime.combine(
            today or _dt.date(2016, 3, 15), _dt.time.min
        )
        # Concurrent acquisition waits on this clock from worker threads;
        # the read-modify-write in advance() must not lose updates.
        self._lock = _threading.Lock()

    def current_time(self) -> float:
        """Seconds advanced so far (plus the configured start)."""
        with self._lock:
            return self._time

    def current_date(self) -> _dt.date:
        """The configured date, moved forward by whole advanced days."""
        return self.current_datetime().date()

    def current_datetime(self) -> _dt.datetime:
        """The configured start instant plus every advance."""
        return self._start_datetime + _dt.timedelta(seconds=self._time)

    def wait(self, seconds: float) -> None:
        """Advance instead of sleeping — waits are free and deterministic."""
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new ``current_time()``."""
        if seconds < 0:
            raise TelemetryError(
                f"cannot advance a clock by {seconds} seconds: time is "
                "monotonic"
            )
        with self._lock:
            self._time += float(seconds)
            return self._time


#: The default clock shared by components not handed an explicit one.
system_clock = SystemClock()
