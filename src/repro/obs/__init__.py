"""repro.obs — the observability layer: clocks, metrics, traces.

The measurement substrate under every performance claim in this repo
(ROADMAP: "as fast as the hardware allows" must be *measured*).  Three
pieces, bundled by :class:`Telemetry`:

* :mod:`repro.obs.clock` — the only module allowed to read real time
  (REP011 enforces this); :class:`ManualClock` makes timings
  deterministic in tests.
* :mod:`repro.obs.metrics` — thread-safe counters, gauges, histograms
  (p50/p95/max) behind one :class:`MetricsRegistry`.
* :mod:`repro.obs.trace` — nested, attributed spans recording where a
  run's time went.

``python -m repro.obs.report`` validates and renders the exported
snapshot schema; see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.clock import Clock, ManualClock, SystemClock, system_clock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Telemetry,
    scrub_timings,
    validate_telemetry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Span",
    "SystemClock",
    "Telemetry",
    "Tracer",
    "scrub_timings",
    "system_clock",
    "validate_telemetry",
]
