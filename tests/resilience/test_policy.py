"""RetryPolicy backoff maths, Deadline budgets, CircuitBreaker states.

Everything runs on a ManualClock: no test here (or anywhere) spends real
wall-clock time waiting.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    SourceError,
)
from repro.obs import ManualClock
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0)
        rng = policy.rng_for("s")
        assert policy.backoff(1, rng) == 1.0
        assert policy.backoff(2, rng) == 2.0
        assert policy.backoff(3, rng) == 4.0

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0
        )
        rng = policy.rng_for("s")
        assert policy.backoff(4, rng) == 5.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        first = [policy.backoff(n, policy.rng_for("s")) for n in (1, 2, 3)]
        second = [policy.backoff(n, policy.rng_for("s")) for n in (1, 2, 3)]
        assert first == second  # same seed, same source: same schedule
        for delay in first:
            assert 1.0 <= delay <= 1.5

    def test_different_sources_jitter_differently(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        a = policy.backoff(1, policy.rng_for("a"))
        b = policy.backoff(1, policy.rng_for("b"))
        assert a != b

    def test_zero_failures_means_no_wait(self):
        policy = RetryPolicy()
        assert policy.backoff(0, policy.rng_for("s")) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"breaker_threshold": 0},
            {"fetch_deadline": -1.0},
            {"run_deadline": -0.1},
            {"breaker_cooldown": -1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(SourceError):
            RetryPolicy(**kwargs)


class TestDeadline:
    def test_remaining_tracks_the_clock(self):
        clock = ManualClock()
        deadline = Deadline(clock, 10.0)
        assert deadline.remaining() == 10.0
        clock.advance(4.0)
        assert deadline.remaining() == 6.0
        assert not deadline.expired

    def test_check_raises_once_expired(self):
        clock = ManualClock()
        deadline = Deadline(clock, 1.0, label="fetching flights")
        deadline.check()
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="fetching flights"):
            deadline.check()

    def test_negative_budget_rejected(self):
        with pytest.raises(SourceError):
            Deadline(ManualClock(), -1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=30.0):
        clock = ManualClock()
        return clock, CircuitBreaker(
            clock, failure_threshold=threshold, cooldown=cooldown, name="s"
        )

    def test_opens_at_the_failure_threshold(self):
        _, breaker = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1

    def test_open_circuit_refuses_until_cooldown(self):
        clock, breaker = self.make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.admit()
        clock.advance(29.0)
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_cooldown_admits_one_half_open_trial(self):
        clock, breaker = self.make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        clock.advance(30.0)
        breaker.admit()  # does not raise: the trial is admitted
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        clock, breaker = self.make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        clock.advance(30.0)
        breaker.admit()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.admit()  # closed circuits admit freely

    def test_half_open_failure_reopens_immediately(self):
        clock, breaker = self.make(threshold=5, cooldown=30.0)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.admit()
        breaker.record_failure()  # one trial failure, not five
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_success_resets_the_failure_count(self):
        _, breaker = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_invalid_knobs_rejected(self):
        clock = ManualClock()
        with pytest.raises(SourceError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(SourceError):
            CircuitBreaker(clock, cooldown=-1.0)
